//! Chrome-trace (Trace Event Format) exporter.
//!
//! Emits the JSON object form `{"traceEvents": [...]}` accepted by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`. Every rank becomes a
//! named thread track under one process, so comm stalls line up visually
//! against compute spans on neighbouring ranks. Timestamps are microseconds,
//! the unit the format specifies.

use crate::{names, Kind, TraceEvent, DRIVER_RANK};

/// Exported tid for driver-thread events; ranks use their own number. Kept
/// far above any plausible world size so the driver row sorts last.
const DRIVER_TID: u64 = 1_000_000;

/// Human-meaningful arg key names per event, falling back to `a0`/`a1`.
fn arg_keys(name: &str) -> (&'static str, &'static str) {
    match name {
        names::SEND => ("dest", "bytes"),
        names::RECV | names::HALO_RECV | names::HALO_LOST | names::HALO_PEER_DEAD => {
            ("src", "bytes")
        }
        names::EPOCH | names::BATCH | names::STEP | names::ASSEMBLE => ("index", "a1"),
        names::FWD | names::BWD => ("layer", "a1"),
        names::GEMM => ("flops", "bytes_packed"),
        _ => ("a0", "a1"),
    }
}

fn tid(rank: u32) -> u64 {
    if rank == DRIVER_RANK {
        DRIVER_TID
    } else {
        rank as u64
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serializes events into Chrome-trace JSON. Includes `thread_name` and
/// `thread_sort_index` metadata so ranks appear as ordered "rank N" rows.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();

    // Rough sizing: ~160 bytes per event keeps reallocation negligible.
    let mut out = String::with_capacity(64 + ranks.len() * 128 + events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    for &rank in &ranks {
        let label = if rank == DRIVER_RANK {
            "driver".to_string()
        } else {
            format!("rank {rank}")
        };
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid(rank),
            label
        ));
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
            tid(rank),
            tid(rank)
        ));
    }

    for ev in events {
        sep(&mut out, &mut first);
        let (k0, k1) = arg_keys(ev.name);
        out.push_str("{\"name\":\"");
        push_escaped(&mut out, ev.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(ev.cat.as_str());
        out.push_str("\",\"ph\":\"");
        match ev.kind {
            Kind::Span => {
                out.push_str(&format!("X\",\"ts\":{},\"dur\":{}", ev.ts_us, ev.dur_us));
            }
            Kind::Instant => {
                out.push_str(&format!("i\",\"s\":\"t\",\"ts\":{}", ev.ts_us));
            }
        }
        out.push_str(&format!(
            ",\"pid\":0,\"tid\":{},\"args\":{{\"{}\":{},\"{}\":{}}}}}",
            tid(ev.rank),
            k0,
            ev.a0,
            k1,
            ev.a1
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    fn ev(rank: u32, kind: Kind, name: &'static str) -> TraceEvent {
        TraceEvent {
            rank,
            cat: Category::Comm,
            kind,
            name,
            ts_us: 10,
            dur_us: 5,
            a0: 1,
            a1: 64,
        }
    }

    #[test]
    fn exports_span_instant_and_metadata_rows() {
        let events = [
            ev(0, Kind::Span, names::RECV),
            ev(1, Kind::Instant, names::HALO_LOST),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"ph\":\"X\",\"ts\":10,\"dur\":5"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":10"));
        assert!(json.contains("\"src\":1,\"bytes\":64"));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces — cheap structural sanity without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn driver_rank_gets_its_own_track() {
        let json = chrome_trace_json(&[ev(DRIVER_RANK, Kind::Span, "setup")]);
        assert!(json.contains("\"tid\":1000000"));
        assert!(json.contains("\"name\":\"driver\""));
    }
}
