//! Chrome-trace (Trace Event Format) exporter.
//!
//! Emits the JSON object form `{"traceEvents": [...]}` accepted by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`. Every rank becomes a
//! named thread track under one process, so comm stalls line up visually
//! against compute spans on neighbouring ranks. Timestamps are microseconds,
//! the unit the format specifies.
//!
//! A multi-process world exports one *shard* per process via
//! [`chrome_trace_json_for_pid`] (every event under that process's `pid`),
//! and [`merge_chrome_shards`] splices the shards into a single file whose
//! `pid` field keeps the processes apart — a 4-process rollout opens in
//! Perfetto as four process groups on one shared time axis.

use crate::{names, Kind, TraceEvent, DRIVER_RANK};

/// Exported tid for driver-thread events; ranks use their own number. Kept
/// far above any plausible world size so the driver row sorts last.
const DRIVER_TID: u64 = 1_000_000;

/// Human-meaningful arg key names per event, falling back to `a0`/`a1`.
fn arg_keys(name: &str) -> (&'static str, &'static str) {
    match name {
        names::SEND => ("dest", "bytes"),
        names::RECV | names::HALO_RECV | names::HALO_LOST | names::HALO_PEER_DEAD => {
            ("src", "bytes")
        }
        names::EPOCH | names::BATCH | names::STEP | names::ASSEMBLE => ("index", "a1"),
        names::FWD | names::BWD => ("layer", "a1"),
        names::GEMM => ("flops", "bytes_packed"),
        _ => ("a0", "a1"),
    }
}

fn tid(rank: u32) -> u64 {
    if rank == DRIVER_RANK {
        DRIVER_TID
    } else {
        rank as u64
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serializes events into Chrome-trace JSON under `pid` 0. Includes
/// `thread_name` and `thread_sort_index` metadata so ranks appear as
/// ordered "rank N" rows. See [`chrome_trace_json_for_pid`] for the
/// multi-process shard form.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_for_pid(events, 0)
}

/// Serializes events into Chrome-trace JSON with every row under process
/// id `pid` — one shard of a multi-process world (the convention: a
/// process's shard pid is its world rank). A `process_name` metadata row
/// labels the process group in Perfetto; events recorded under a serving
/// request carry a `"req"` arg so a merged trace greps by request id.
pub fn chrome_trace_json_for_pid(events: &[TraceEvent], pid: u64) -> String {
    let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();

    // Rough sizing: ~160 bytes per event keeps reallocation negligible.
    let mut out = String::with_capacity(64 + ranks.len() * 128 + events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    sep(&mut out, &mut first);
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"pdeml proc {pid}\"}}}}",
    ));
    sep(&mut out, &mut first);
    out.push_str(&format!(
        "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}",
    ));
    for &rank in &ranks {
        let label = if rank == DRIVER_RANK {
            "driver".to_string()
        } else {
            format!("rank {rank}")
        };
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid(rank),
            label
        ));
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
            tid(rank),
            tid(rank)
        ));
    }

    for ev in events {
        sep(&mut out, &mut first);
        let (k0, k1) = arg_keys(ev.name);
        out.push_str("{\"name\":\"");
        push_escaped(&mut out, ev.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(ev.cat.as_str());
        out.push_str("\",\"ph\":\"");
        match ev.kind {
            Kind::Span => {
                out.push_str(&format!("X\",\"ts\":{},\"dur\":{}", ev.ts_us, ev.dur_us));
            }
            Kind::Instant => {
                out.push_str(&format!("i\",\"s\":\"t\",\"ts\":{}", ev.ts_us));
            }
        }
        out.push_str(&format!(
            ",\"pid\":{pid},\"tid\":{},\"args\":{{\"{}\":{},\"{}\":{}",
            tid(ev.rank),
            k0,
            ev.a0,
            k1,
            ev.a1
        ));
        if ev.req != 0 {
            out.push_str(&format!(",\"req\":{}", ev.req));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Merges per-process Chrome-trace shards — each produced by
/// [`chrome_trace_json_for_pid`] with a distinct pid — into one Chrome
/// Trace Event file. Shards already share a time axis (each process stamps
/// microseconds from its own trace epoch, which for a lockstep world start
/// within the rendezvous window), so the merge is a pure splice of each
/// shard's `traceEvents` array: no event is re-parsed, re-stamped, or
/// dropped, and merged event count == the sum of shard event counts.
///
/// Shards that are empty or not in the exporter's format are skipped
/// rather than corrupting the output.
pub fn merge_chrome_shards<S: AsRef<str>>(shards: &[S]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for shard in shards {
        let shard = shard.as_ref();
        // The exporter's envelope is fixed: everything between the first
        // '[' and the last ']' is the comma-separated event list.
        let Some(open) = shard.find('[') else {
            continue;
        };
        let Some(close) = shard.rfind(']') else {
            continue;
        };
        if close <= open {
            continue;
        }
        let inner = shard[open + 1..close].trim();
        if inner.is_empty() {
            continue;
        }
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
        out.push_str(inner);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    fn ev(rank: u32, kind: Kind, name: &'static str) -> TraceEvent {
        TraceEvent {
            rank,
            cat: Category::Comm,
            kind,
            name,
            ts_us: 10,
            dur_us: 5,
            a0: 1,
            a1: 64,
            req: 0,
        }
    }

    #[test]
    fn exports_span_instant_and_metadata_rows() {
        let events = [
            ev(0, Kind::Span, names::RECV),
            ev(1, Kind::Instant, names::HALO_LOST),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"ph\":\"X\",\"ts\":10,\"dur\":5"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":10"));
        assert!(json.contains("\"src\":1,\"bytes\":64"));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces — cheap structural sanity without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn driver_rank_gets_its_own_track() {
        let json = chrome_trace_json(&[ev(DRIVER_RANK, Kind::Span, "setup")]);
        assert!(json.contains("\"tid\":1000000"));
        assert!(json.contains("\"name\":\"driver\""));
    }

    #[test]
    fn pid_parameter_reaches_every_row_and_req_is_an_arg() {
        let mut tagged = ev(0, Kind::Span, names::STEP);
        tagged.req = 7;
        let json = chrome_trace_json_for_pid(&[tagged, ev(1, Kind::Span, names::RECV)], 3);
        assert!(!json.contains("\"pid\":0"), "no row escapes the pid");
        assert_eq!(
            json.matches("\"pid\":3").count(),
            8,
            "process meta (2) + per-rank meta (2x2) + events (2)"
        );
        assert!(json.contains("\"name\":\"pdeml proc 3\""));
        assert!(json.contains("\"req\":7"), "request id exported as an arg");
        // Untagged events stay req-free (the common case stays compact).
        assert_eq!(json.matches("\"req\":").count(), 1);
    }

    #[test]
    fn merged_shards_keep_every_event_under_its_source_pid() {
        let shard0 = chrome_trace_json_for_pid(&[ev(0, Kind::Span, names::RECV)], 0);
        let shard1 = chrome_trace_json_for_pid(
            &[
                ev(0, Kind::Span, names::RECV),
                ev(0, Kind::Instant, names::HALO_LOST),
            ],
            1,
        );
        let merged = merge_chrome_shards(&[shard0.as_str(), shard1.as_str()]);
        assert!(merged.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(merged.trim_end().ends_with("]}"));
        // Spans + instants survive the splice, still under their pids.
        assert_eq!(merged.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(merged.matches("\"ph\":\"i\"").count(), 1);
        let shard0_rows = shard0.matches("\"pid\":0").count();
        let shard1_rows = shard1.matches("\"pid\":1").count();
        assert_eq!(merged.matches("\"pid\":0").count(), shard0_rows);
        assert_eq!(merged.matches("\"pid\":1").count(), shard1_rows);
        // Structural validity: balanced braces, no trailing comma.
        assert_eq!(merged.matches('{').count(), merged.matches('}').count());
        assert!(!merged.contains(",\n]"));
    }

    #[test]
    fn merge_skips_empty_and_malformed_shards() {
        let good = chrome_trace_json_for_pid(&[ev(0, Kind::Span, names::RECV)], 2);
        let empty = chrome_trace_json_for_pid(&[], 5);
        let merged = merge_chrome_shards(&[good.as_str(), "not json at all", "", empty.as_str()]);
        assert!(merged.contains("\"ph\":\"X\""));
        // The empty shard still contributes its process metadata rows.
        assert!(merged.contains("\"pdeml proc 5\""));
        assert_eq!(merged.matches('{').count(), merged.matches('}').count());
    }
}
