//! Per-rank structured tracing for the one-OS-thread-per-rank runtime.
//!
//! The design mirrors `pde_tensor::perf`: every rank is an OS thread, so a
//! thread-local ring buffer gives exact per-rank attribution with no
//! synchronization on the hot path. Recording is *session-scoped and
//! thread-inherited* rather than gated on a process-global flag: a driving
//! thread calls [`begin`], the commsim `World` propagates the session id into
//! each rank thread via [`adopt`], and every span/event lands in that thread's
//! ring tagged with its rank. When no session is active on the current thread
//! (the default), [`span`] and [`instant`] are a single thread-local `Cell`
//! read and an early return — no clock read, no allocation, no atomics — so
//! instrumented hot paths cost nothing in normal runs. Two concurrent test
//! harnesses tracing different `World`s never see each other's events.
//!
//! Events carry a `&'static str` name plus two `u64` args, so recording never
//! allocates; the ring itself is allocated once per thread on first use and
//! drops its *oldest* events on overflow (the drop count is reported, and the
//! zero-loss tests assert it stays zero). [`TraceHandle::finish`] collects
//! every flushed ring into a [`Trace`], which exports Chrome-trace JSON
//! ([`Trace::chrome_json`], openable in Perfetto / `chrome://tracing` with one
//! track row per rank) and aggregates into per-rank [`RankMetrics`]
//! ([`Trace::summarize`]).

mod chrome;
pub mod metrics;

pub use chrome::{chrome_trace_json, chrome_trace_json_for_pid, merge_chrome_shards};
pub use metrics::RankMetrics;

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Rank value used for events recorded on a thread that never called
/// [`adopt`] — typically the driving thread that owns the [`TraceHandle`].
pub const DRIVER_RANK: u32 = u32::MAX;

/// Default per-thread ring capacity (events retained between flushes).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Well-known event names, shared by instrumentation sites, the exporter and
/// the metrics registry so aggregation never string-matches ad hoc literals.
pub mod names {
    pub const SEND: &str = "send";
    pub const RECV: &str = "recv";
    pub const BARRIER: &str = "barrier";
    pub const HALO_RECV: &str = "halo_recv";
    pub const HALO_LOST: &str = "halo_lost";
    pub const HALO_PEER_DEAD: &str = "halo_peer_dead";
    pub const EPOCH: &str = "epoch";
    pub const BATCH: &str = "batch";
    pub const FWD: &str = "fwd";
    pub const BWD: &str = "bwd";
    pub const STEP: &str = "step";
    pub const ASSEMBLE: &str = "halo_assemble";
    pub const GEMM: &str = "gemm";
}

/// Coarse event category; one timeline color / metrics bucket each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Category {
    /// Training driver: epochs, batches.
    Train,
    /// Inference rollout: steps, halo assembly.
    Infer,
    /// Network internals: per-layer forward/backward.
    Nn,
    /// Message passing: send/recv/barrier/halo exchange.
    Comm,
    /// Numeric kernels (GEMM dispatches).
    Kernel,
}

impl Category {
    pub const COUNT: usize = 5;
    pub const ALL: [Category; Self::COUNT] = [
        Category::Train,
        Category::Infer,
        Category::Nn,
        Category::Comm,
        Category::Kernel,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Category::Train => "train",
            Category::Infer => "infer",
            Category::Nn => "nn",
            Category::Comm => "comm",
            Category::Kernel => "kernel",
        }
    }

    pub fn index(self) -> usize {
        self as usize
    }
}

/// Whether an event is a timed span or a zero-duration marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Closed interval with a duration (`ph: "X"` in Chrome trace).
    Span,
    /// Point event (`ph: "i"`).
    Instant,
}

/// One recorded event. `ts_us`/`dur_us` are microseconds since the process
/// trace epoch (first [`begin`] call), shared by every thread so rank tracks
/// line up on one timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub rank: u32,
    pub cat: Category,
    pub kind: Kind,
    pub name: &'static str,
    pub ts_us: u64,
    pub dur_us: u64,
    pub a0: u64,
    pub a1: u64,
    /// Serving request id active on the recording thread (0 = none). A
    /// field rather than a distinct event type: every existing span keeps
    /// its name/category/args and merely gains attribution, so one grep
    /// for `"req":N` pulls a request's whole cross-rank story out of a
    /// flight dump (DESIGN.md §4k).
    pub req: u64,
}

// ---------------------------------------------------------------------------
// Global + thread-local state
// ---------------------------------------------------------------------------

/// Session ids start at 1; 0 means "no session" everywhere.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);
/// Ring capacity for rings created after the most recent [`begin`].
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
/// Process-lifetime total of ring-overflow drops across all sessions — the
/// live counterpart of the per-session `dropped_by_rank` accounting, so a
/// metrics scrape can watch drops accumulate while a trace is still armed.
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Spans dropped to ring overflow since process start (all sessions).
/// Monotonic; exported as the `pdeml_trace_dropped_spans_total` metric.
pub fn dropped_spans_total() -> u64 {
    DROPPED_TOTAL.load(Ordering::Relaxed)
}
/// Shared time origin so all threads report on one comparable axis.
static EPOCH: OnceLock<Instant> = OnceLock::new();

struct SessionSink {
    events: Vec<TraceEvent>,
    dropped_by_rank: HashMap<u32, u64>,
}

fn collector() -> &'static Mutex<HashMap<u64, SessionSink>> {
    static COLLECTOR: OnceLock<Mutex<HashMap<u64, SessionSink>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(HashMap::new()))
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Next overwrite position once `buf.len() == cap`.
    head: usize,
    cap: usize,
    dropped: u64,
    /// Session the buffered events belong to (for the TLS-teardown flush).
    session: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(cap.max(1)),
            head: 0,
            cap: cap.max(1),
            dropped: 0,
            session: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
            DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains events in record order plus the overflow count.
    fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let head = self.head;
        self.head = 0;
        let dropped = self.dropped;
        self.dropped = 0;
        let mut out = std::mem::take(&mut self.buf);
        out.rotate_left(head);
        (out, dropped)
    }
}

impl Drop for Ring {
    // Safety net: a rank thread that exits without `leave()` still delivers
    // its events via the TLS destructor.
    fn drop(&mut self) {
        flush_ring(self);
    }
}

thread_local! {
    static CTX: Cell<u64> = const { Cell::new(0) };
    static RANK: Cell<u32> = const { Cell::new(DRIVER_RANK) };
    static REQ: Cell<u64> = const { Cell::new(0) };
    static RING: RefCell<Option<Ring>> = const { RefCell::new(None) };
}

fn flush_ring(ring: &mut Ring) {
    if ring.session == 0 || (ring.buf.is_empty() && ring.dropped == 0) {
        return;
    }
    let session = ring.session;
    let rank = ring.buf.first().map(|e| e.rank).unwrap_or(DRIVER_RANK);
    let (events, dropped) = ring.drain();
    let mut sink = collector().lock().unwrap();
    if let Some(s) = sink.get_mut(&session) {
        s.events.extend(events);
        if dropped > 0 {
            *s.dropped_by_rank.entry(rank).or_insert(0) += dropped;
        }
    }
    // A finished/abandoned session silently discards stragglers.
}

fn now_us() -> u64 {
    match EPOCH.get() {
        Some(t0) => t0.elapsed().as_micros() as u64,
        None => 0,
    }
}

fn record(mut ev: TraceEvent) {
    let session = CTX.with(|c| c.get());
    if session == 0 {
        return;
    }
    ev.req = REQ.with(|r| r.get());
    RING.with(|r| {
        let mut r = r.borrow_mut();
        let ring = r.get_or_insert_with(|| Ring::new(RING_CAPACITY.load(Ordering::Relaxed)));
        if ring.session != session {
            // First event after a session switch: deliver leftovers, rebind.
            flush_ring(ring);
            ring.session = session;
        }
        ring.push(ev);
    });
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// Handle owning a trace session. Dropping it without [`finish`] discards the
/// session's events.
#[must_use = "finish() the handle to collect the trace"]
pub struct TraceHandle {
    session: u64,
    prev_ctx: u64,
}

/// Starts a trace session on the current thread with the default ring
/// capacity. See [`begin_with_capacity`].
pub fn begin() -> TraceHandle {
    begin_with_capacity(DEFAULT_RING_CAPACITY)
}

/// Starts a trace session on the current thread. Spans and events recorded on
/// this thread — and on any thread that [`adopt`]s the session id — are
/// collected until [`TraceHandle::finish`].
pub fn begin_with_capacity(ring_capacity: usize) -> TraceHandle {
    EPOCH.get_or_init(Instant::now);
    RING_CAPACITY.store(ring_capacity.max(1), Ordering::Relaxed);
    let session = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
    collector().lock().unwrap().insert(
        session,
        SessionSink {
            events: Vec::new(),
            dropped_by_rank: HashMap::new(),
        },
    );
    let prev_ctx = CTX.with(|c| c.replace(session));
    TraceHandle { session, prev_ctx }
}

impl TraceHandle {
    /// The id rank threads must [`adopt`] to record into this session.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Flushes the current thread and collects every event delivered to this
    /// session, sorted by (rank, start time).
    pub fn finish(self) -> Trace {
        flush_current_thread();
        CTX.with(|c| c.set(self.prev_ctx));
        let sink = collector().lock().unwrap().remove(&self.session);
        let mut trace = match sink {
            Some(s) => Trace {
                events: s.events,
                dropped_by_rank: s.dropped_by_rank,
            },
            None => Trace {
                events: Vec::new(),
                dropped_by_rank: HashMap::new(),
            },
        };
        trace.events.sort_by_key(|a| (a.rank, a.ts_us));
        trace
    }
}

impl Drop for TraceHandle {
    // Also runs at the end of `finish` (which already removed the sink and
    // restored the context) — both actions are idempotent.
    fn drop(&mut self) {
        collector().lock().unwrap().remove(&self.session);
        CTX.with(|c| {
            if c.get() == self.session {
                c.set(self.prev_ctx);
            }
        });
    }
}

/// The session id active on the current thread, or 0 if tracing is off here.
pub fn session() -> u64 {
    CTX.with(|c| c.get())
}

/// True when the current thread records into some session. Use to skip
/// argument computation that would itself cost something.
pub fn enabled() -> bool {
    session() != 0
}

/// Joins `session` on the current thread, tagging subsequent events with
/// `rank`. A no-op when `session` is 0, so call sites can propagate
/// unconditionally. Pending events for a previous session are flushed first.
pub fn adopt(session: u64, rank: u32) {
    if session == 0 {
        return;
    }
    flush_current_thread();
    CTX.with(|c| c.set(session));
    RANK.with(|r| r.set(rank));
}

/// Leaves the current thread's session, flushing its ring to the collector.
/// No-op if no session is active.
pub fn leave() {
    if session() == 0 {
        return;
    }
    flush_current_thread();
    CTX.with(|c| c.set(0));
    RANK.with(|r| r.set(DRIVER_RANK));
    REQ.with(|r| r.set(0));
}

/// Tags subsequent events on this thread with a serving request id
/// (0 clears the tag). The serving engine brackets each request's rank
/// work with this, so every span a request causes — steps, halo waits,
/// GEMMs — carries its [`TraceEvent::req`] and a trace or flight dump can
/// be grepped down to one request. Cost: one thread-local write.
#[inline]
pub fn set_request(id: u64) {
    REQ.with(|r| r.set(id));
}

/// The serving request id tagged on the current thread (0 = none).
pub fn current_request() -> u64 {
    REQ.with(|r| r.get())
}

/// Tags the current thread with a rank, independent of any trace session.
/// Live telemetry ([`pde-telemetry`]-backed gauges) shards per rank even
/// when tracing is off, so rank worker threads call this once at spawn.
/// [`adopt`] also sets the tag; [`leave`] resets it to [`DRIVER_RANK`].
pub fn set_thread_rank(rank: u32) {
    RANK.with(|r| r.set(rank));
}

/// The rank tag of the current thread ([`DRIVER_RANK`] when untagged).
pub fn thread_rank() -> u32 {
    RANK.with(|r| r.get())
}

/// Delivers the current thread's buffered events to the collector without
/// leaving the session.
pub fn flush_current_thread() {
    RING.with(|r| {
        if let Some(ring) = r.borrow_mut().as_mut() {
            flush_ring(ring);
        }
    });
}

/// RAII span: records a complete event from construction to drop. Inert (and
/// free beyond one thread-local read) when the thread has no active session.
pub struct Span {
    start_us: u64,
    cat: Category,
    name: &'static str,
    a0: u64,
    a1: u64,
    armed: bool,
}

impl Span {
    /// Updates the span's args before it closes (e.g. bytes actually
    /// received, status discovered mid-span).
    pub fn set_args(&mut self, a0: u64, a1: u64) {
        self.a0 = a0;
        self.a1 = a1;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_us();
        record(TraceEvent {
            rank: RANK.with(|r| r.get()),
            cat: self.cat,
            kind: Kind::Span,
            name: self.name,
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            a0: self.a0,
            a1: self.a1,
            req: 0, // stamped from the thread-local in `record`
        });
    }
}

/// Opens a span with no args. See [`span_args`].
#[inline]
pub fn span(cat: Category, name: &'static str) -> Span {
    span_args(cat, name, 0, 0)
}

/// Opens a span carrying two numeric args (exported under event-specific key
/// names, see [`chrome_trace_json`]). The hot-path cost when tracing is off
/// on this thread is one `Cell` read.
#[inline]
pub fn span_args(cat: Category, name: &'static str, a0: u64, a1: u64) -> Span {
    let armed = session() != 0;
    Span {
        start_us: if armed { now_us() } else { 0 },
        cat,
        name,
        a0,
        a1,
        armed,
    }
}

/// Records a point event (zero duration).
#[inline]
pub fn instant(cat: Category, name: &'static str, a0: u64, a1: u64) {
    if session() == 0 {
        return;
    }
    let ts = now_us();
    record(TraceEvent {
        rank: RANK.with(|r| r.get()),
        cat,
        kind: Kind::Instant,
        name,
        ts_us: ts,
        dur_us: 0,
        a0,
        a1,
        req: 0, // stamped from the thread-local in `record`
    });
}

// ---------------------------------------------------------------------------
// Collected trace
// ---------------------------------------------------------------------------

/// Everything a finished session captured.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All events, sorted by (rank, start time).
    pub events: Vec<TraceEvent>,
    /// Ring-overflow counts per rank (0 everywhere in a lossless capture).
    pub dropped_by_rank: HashMap<u32, u64>,
}

impl Trace {
    /// Total events dropped to ring overflow across all ranks.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_by_rank.values().sum()
    }

    /// Ranks (excluding [`DRIVER_RANK`]) that recorded at least one event.
    pub fn ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self
            .events
            .iter()
            .map(|e| e.rank)
            .filter(|&r| r != DRIVER_RANK)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Chrome-trace / Perfetto JSON (one timeline track per rank).
    pub fn chrome_json(&self) -> String {
        chrome::chrome_trace_json(&self.events)
    }

    /// Chrome-trace JSON with every event under process id `pid` — the
    /// per-process shard format of a multi-process world. Shards from
    /// different processes (distinct pids) merge into one timeline with
    /// [`merge_chrome_shards`].
    pub fn chrome_json_for_pid(&self, pid: u64) -> String {
        chrome::chrome_trace_json_for_pid(&self.events, pid)
    }

    /// Aggregates events into per-rank metrics (span time per category,
    /// traced send bytes, comm wait time, halo outcomes).
    pub fn summarize(&self) -> Vec<RankMetrics> {
        metrics::summarize(&self.events, &self.dropped_by_rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing_and_span_is_inert() {
        assert_eq!(session(), 0);
        let s = span(Category::Train, "noop");
        drop(s);
        instant(Category::Comm, names::SEND, 1, 8);
        // No session to collect — nothing to assert beyond "did not panic",
        // but make sure no ring was bound to a session.
        RING.with(|r| {
            if let Some(ring) = r.borrow().as_ref() {
                assert_eq!(ring.session, 0);
            }
        });
    }

    #[test]
    fn session_captures_spans_and_instants_with_ranks() {
        let h = begin();
        let sid = h.session();
        {
            let _s = span_args(Category::Train, names::EPOCH, 3, 0);
            instant(Category::Comm, names::SEND, 1, 48);
        }
        let joiner = std::thread::spawn(move || {
            adopt(sid, 7);
            {
                let _s = span(Category::Comm, names::BARRIER);
            }
            instant(Category::Comm, names::HALO_LOST, 2, 0);
            leave();
        });
        joiner.join().unwrap();
        let trace = h.finish();
        assert_eq!(trace.total_dropped(), 0);
        assert_eq!(trace.ranks(), vec![7]);
        let on_driver: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.rank == DRIVER_RANK)
            .collect();
        assert_eq!(on_driver.len(), 2);
        let epoch = on_driver.iter().find(|e| e.name == names::EPOCH).unwrap();
        assert_eq!(epoch.kind, Kind::Span);
        assert_eq!(epoch.a0, 3);
        let rank7: Vec<_> = trace.events.iter().filter(|e| e.rank == 7).collect();
        assert_eq!(rank7.len(), 2);
        assert!(rank7.iter().any(|e| e.name == names::HALO_LOST));
    }

    #[test]
    fn concurrent_sessions_do_not_mix() {
        let h1 = begin();
        let sid1 = h1.session();
        let t1 = std::thread::spawn(move || {
            adopt(sid1, 0);
            instant(Category::Comm, names::SEND, 1, 100);
            leave();
        });
        let t2 = std::thread::spawn(|| {
            let h2 = begin();
            let sid2 = h2.session();
            adopt(sid2, 0);
            instant(Category::Comm, names::SEND, 1, 999);
            let tr = h2.finish();
            assert_eq!(tr.events.len(), 1);
            assert_eq!(tr.events[0].a1, 999);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let tr1 = h1.finish();
        assert_eq!(tr1.events.len(), 1);
        assert_eq!(tr1.events[0].a1, 100);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let h = begin_with_capacity(4);
        let sid = h.session();
        let t = std::thread::spawn(move || {
            adopt(sid, 0);
            for i in 0..10u64 {
                instant(Category::Kernel, names::GEMM, i, 0);
            }
            leave();
        });
        t.join().unwrap();
        let trace = h.finish();
        assert_eq!(trace.total_dropped(), 6);
        let kept: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.rank == 0)
            .map(|e| e.a0)
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest events are evicted first");
    }

    #[test]
    fn request_tag_stamps_events_and_clears() {
        let h = begin();
        let sid = h.session();
        let t = std::thread::spawn(move || {
            adopt(sid, 3);
            set_request(41);
            {
                let _s = span_args(Category::Infer, names::STEP, 0, 0);
            }
            set_request(0);
            instant(Category::Comm, names::SEND, 1, 8);
            leave();
            assert_eq!(current_request(), 0, "leave() clears the request tag");
        });
        t.join().unwrap();
        let trace = h.finish();
        let step = trace.events.iter().find(|e| e.name == names::STEP).unwrap();
        assert_eq!(step.req, 41, "span recorded under the request tag");
        assert_eq!(step.rank, 3);
        let send = trace.events.iter().find(|e| e.name == names::SEND).unwrap();
        assert_eq!(send.req, 0, "untagged events carry req 0");
    }

    #[test]
    fn finish_restores_previous_context() {
        let outer = begin();
        let outer_sid = outer.session();
        let inner = begin();
        assert_ne!(inner.session(), outer_sid);
        let _ = inner.finish();
        assert_eq!(session(), outer_sid);
        let _ = outer.finish();
        assert_eq!(session(), 0);
    }
}
