//! Metrics registry: per-rank aggregation of trace events, merged with the
//! counters other crates already maintain (`pde_tensor::perf::PerfCounters`,
//! commsim's `TrafficReport`). This crate stays dependency-free, so the
//! merged fields are plain `u64`s and the glue that copies them in lives
//! where both sides are visible (`pde-ml-core`).

use crate::{names, Category, Kind, TraceEvent, DRIVER_RANK};
use std::collections::HashMap;

/// One rank's merged observability record: span timings derived from the
/// trace plus externally merged perf/traffic counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankMetrics {
    pub rank: u32,
    /// Events captured for this rank.
    pub events: u64,
    /// Events lost to ring overflow (0 in a lossless capture).
    pub dropped: u64,
    /// Total span microseconds per [`Category`] (indexed by `Category::index`).
    /// Nested spans each contribute their own duration, so this can exceed
    /// wall clock (an `epoch` span contains its `batch` spans).
    pub span_us: [u64; Category::COUNT],
    /// Wall-clock microseconds with at least one open span of the category
    /// (interval union, indexed by `Category::index`): nested spans do not
    /// double-count, so this never exceeds the rank's wall time. This is
    /// what the summary table prints.
    pub busy_us: [u64; Category::COUNT],
    /// `send` events counted from the trace.
    pub traced_sends: u64,
    /// Payload bytes summed over traced `send` events. Satellite invariant:
    /// must equal the runtime's own `bytes_sent` accounting per rank.
    pub traced_bytes_sent: u64,
    /// Microseconds spent blocked inside `recv`/`halo_recv` spans (interval
    /// union — a timed `halo_recv` wrapping an inner `recv` counts once).
    pub recv_wait_us: u64,
    /// Microseconds spent inside `barrier` spans.
    pub barrier_wait_us: u64,
    /// `halo_lost` point events observed in the trace.
    pub traced_halos_lost: u64,
    /// `halo_peer_dead` point events observed in the trace.
    pub traced_peer_dead: u64,

    // --- merged from pde_tensor::perf::PerfCounters ---
    pub flops: u64,
    pub gemm_calls: u64,
    pub bytes_packed: u64,
    pub allocs: u64,

    // --- merged from commsim's TrafficReport / RankResult ---
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_received: u64,
    pub halos_lost: u64,
    pub halos_zero_filled: u64,
    pub halos_stale: u64,
}

impl RankMetrics {
    /// Copies in the per-rank compute counters (field order matches
    /// `PerfCounters`: flops, gemm_calls, bytes_packed, allocs).
    pub fn merge_perf(&mut self, flops: u64, gemm_calls: u64, bytes_packed: u64, allocs: u64) {
        self.flops = flops;
        self.gemm_calls = gemm_calls;
        self.bytes_packed = bytes_packed;
        self.allocs = allocs;
    }

    /// Copies in the per-rank traffic counters (field order matches
    /// `TrafficReport`).
    #[allow(clippy::too_many_arguments)]
    pub fn merge_traffic(
        &mut self,
        msgs_sent: u64,
        bytes_sent: u64,
        msgs_received: u64,
        halos_lost: u64,
        halos_zero_filled: u64,
        halos_stale: u64,
    ) {
        self.msgs_sent = msgs_sent;
        self.bytes_sent = bytes_sent;
        self.msgs_received = msgs_received;
        self.halos_lost = halos_lost;
        self.halos_zero_filled = halos_zero_filled;
        self.halos_stale = halos_stale;
    }

    /// Wall-clock time with at least one open span of the category, in
    /// seconds (see [`RankMetrics::busy_us`]; nesting does not double-count).
    pub fn seconds_in(&self, cat: Category) -> f64 {
        self.busy_us[cat.index()] as f64 / 1e6
    }
}

/// Total covered microseconds of a set of `[start, end)` intervals
/// (classic sort-and-sweep union).
fn union_us(mut ivals: Vec<(u64, u64)>) -> u64 {
    ivals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in ivals {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Aggregates raw events into per-rank metrics, sorted by rank with the
/// driver row (if any) last.
pub fn summarize(events: &[TraceEvent], dropped_by_rank: &HashMap<u32, u64>) -> Vec<RankMetrics> {
    let mut by_rank: HashMap<u32, RankMetrics> = HashMap::new();
    let mut cat_ivals: HashMap<(u32, usize), Vec<(u64, u64)>> = HashMap::new();
    let mut wait_ivals: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for ev in events {
        let m = by_rank.entry(ev.rank).or_insert_with(|| RankMetrics {
            rank: ev.rank,
            ..RankMetrics::default()
        });
        m.events += 1;
        match ev.kind {
            Kind::Span => {
                m.span_us[ev.cat.index()] += ev.dur_us;
                let ival = (ev.ts_us, ev.ts_us + ev.dur_us);
                cat_ivals
                    .entry((ev.rank, ev.cat.index()))
                    .or_default()
                    .push(ival);
                match ev.name {
                    names::RECV | names::HALO_RECV => {
                        wait_ivals.entry(ev.rank).or_default().push(ival)
                    }
                    names::BARRIER => m.barrier_wait_us += ev.dur_us,
                    _ => {}
                }
            }
            Kind::Instant => match ev.name {
                names::SEND => {
                    m.traced_sends += 1;
                    m.traced_bytes_sent += ev.a1;
                }
                names::HALO_LOST => m.traced_halos_lost += 1,
                names::HALO_PEER_DEAD => m.traced_peer_dead += 1,
                _ => {}
            },
        }
    }
    for ((rank, cat), ivals) in cat_ivals {
        by_rank.get_mut(&rank).expect("rank seen above").busy_us[cat] = union_us(ivals);
    }
    for (rank, ivals) in wait_ivals {
        by_rank
            .get_mut(&rank)
            .expect("rank seen above")
            .recv_wait_us = union_us(ivals);
    }
    for (&rank, &dropped) in dropped_by_rank {
        by_rank
            .entry(rank)
            .or_insert_with(|| RankMetrics {
                rank,
                ..RankMetrics::default()
            })
            .dropped = dropped;
    }
    let mut out: Vec<RankMetrics> = by_rank.into_values().collect();
    out.sort_by_key(|m| {
        if m.rank == DRIVER_RANK {
            u64::MAX
        } else {
            m.rank as u64
        }
    });
    out
}

/// Renders a fixed-width summary table, one row per rank (driver row last).
pub fn format_table(rows: &[RankMetrics]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6} {:>9} {:>10} {:>10} {:>10} {:>10} {:>11} {:>6} {:>6}\n",
        "rank", "events", "train_ms", "infer_ms", "nn_ms", "comm_ms", "sent_bytes", "lost", "drop"
    ));
    for m in rows {
        let rank = if m.rank == DRIVER_RANK {
            "drv".to_string()
        } else {
            m.rank.to_string()
        };
        out.push_str(&format!(
            "{:>6} {:>9} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>11} {:>6} {:>6}\n",
            rank,
            m.events,
            m.seconds_in(Category::Train) * 1e3,
            m.seconds_in(Category::Infer) * 1e3,
            m.seconds_in(Category::Nn) * 1e3,
            m.seconds_in(Category::Comm) * 1e3,
            m.traced_bytes_sent,
            m.traced_halos_lost,
            m.dropped,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_ev(rank: u32, cat: Category, name: &'static str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            rank,
            cat,
            kind: Kind::Span,
            name,
            ts_us: ts,
            dur_us: dur,
            a0: 0,
            a1: 0,
            req: 0,
        }
    }

    fn inst_ev(rank: u32, name: &'static str, a0: u64, a1: u64) -> TraceEvent {
        TraceEvent {
            rank,
            cat: Category::Comm,
            kind: Kind::Instant,
            name,
            ts_us: 0,
            dur_us: 0,
            a0,
            a1,
            req: 0,
        }
    }

    #[test]
    fn sums_bytes_waits_and_halo_outcomes_per_rank() {
        let events = [
            inst_ev(0, names::SEND, 1, 48),
            inst_ev(0, names::SEND, 1, 16),
            span_ev(0, Category::Comm, names::RECV, 0, 250),
            span_ev(0, Category::Comm, names::BARRIER, 300, 100),
            span_ev(0, Category::Train, names::EPOCH, 500, 900),
            inst_ev(1, names::HALO_LOST, 0, 0),
            span_ev(1, Category::Comm, names::HALO_RECV, 0, 40),
        ];
        let rows = summarize(&events, &HashMap::new());
        assert_eq!(rows.len(), 2);
        let r0 = &rows[0];
        assert_eq!(r0.rank, 0);
        assert_eq!(r0.traced_sends, 2);
        assert_eq!(r0.traced_bytes_sent, 64);
        assert_eq!(r0.recv_wait_us, 250);
        assert_eq!(r0.barrier_wait_us, 100);
        assert_eq!(r0.span_us[Category::Comm.index()], 350);
        assert_eq!(r0.busy_us[Category::Comm.index()], 350);
        assert_eq!(r0.span_us[Category::Train.index()], 900);
        let r1 = &rows[1];
        assert_eq!(r1.traced_halos_lost, 1);
        assert_eq!(r1.recv_wait_us, 40);
    }

    #[test]
    fn nested_spans_do_not_double_count_busy_time() {
        // An epoch [0, 1000) containing two batches, and a timed halo_recv
        // [0, 60) wrapping its inner recv [5, 45): `span_us` keeps the raw
        // per-span sums, `busy_us` / `recv_wait_us` report wall coverage.
        let events = [
            span_ev(0, Category::Train, names::EPOCH, 0, 1000),
            span_ev(0, Category::Train, names::BATCH, 10, 400),
            span_ev(0, Category::Train, names::BATCH, 450, 500),
            span_ev(0, Category::Comm, names::HALO_RECV, 0, 60),
            span_ev(0, Category::Comm, names::RECV, 5, 40),
        ];
        let rows = summarize(&events, &HashMap::new());
        let m = &rows[0];
        assert_eq!(m.span_us[Category::Train.index()], 1900);
        assert_eq!(m.busy_us[Category::Train.index()], 1000);
        assert_eq!(m.seconds_in(Category::Train), 1e-3);
        assert_eq!(m.busy_us[Category::Comm.index()], 60);
        assert_eq!(m.recv_wait_us, 60);
        // Disjoint intervals still sum exactly.
        assert_eq!(union_us(vec![(10, 20), (30, 40)]), 20);
        // Touching intervals merge without a gap or overlap error.
        assert_eq!(union_us(vec![(0, 10), (10, 25)]), 25);
    }

    #[test]
    fn driver_row_sorts_last_and_dropped_counts_surface() {
        let events = [
            span_ev(DRIVER_RANK, Category::Train, "setup", 0, 5),
            span_ev(2, Category::Train, names::EPOCH, 0, 5),
        ];
        let mut dropped = HashMap::new();
        dropped.insert(2u32, 9u64);
        let rows = summarize(&events, &dropped);
        assert_eq!(rows[0].rank, 2);
        assert_eq!(rows[0].dropped, 9);
        assert_eq!(rows[1].rank, DRIVER_RANK);
        let table = format_table(&rows);
        assert!(table.contains("drv"));
    }
}
