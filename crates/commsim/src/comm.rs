//! The per-rank communicator handle: point-to-point + collectives.
//!
//! `Comm` is pure protocol: tag/generation matching, the pending queue,
//! fault injection, traffic counters and collectives. The mechanism that
//! actually moves bytes lives below the [`Transport`] trait
//! ([`crate::ChannelTransport`] in-process, [`crate::TcpTransport`] across
//! processes) — every implementation inherits this entire layer untouched.

use crate::transport::{Poll, Transport};
use crate::world::FaultAction;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often a waiting receive re-checks peer aliveness. Purely a
/// detection-latency bound for dead peers — delivered messages wake the
/// receiver immediately regardless.
const ALIVENESS_SLICE: Duration = Duration::from_millis(10);

/// Message tag (same role as an MPI tag: disambiguates concurrent streams).
pub type Tag = u32;

/// A point-to-point message.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sender rank.
    pub src: usize,
    /// Tag it was sent with.
    pub tag: Tag,
    /// Generation (job epoch) it was sent in. Receives only match messages
    /// of their own generation, so a message lingering from an earlier job
    /// on a persistent world — a delayed delivery, or a halo strip that
    /// arrived after its receive timed out — can never be mistaken for this
    /// job's traffic, even though jobs reuse the same tag values.
    pub gen: u32,
    /// Payload.
    pub data: Vec<f64>,
}

/// Why a receive failed.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the timeout (possible message
    /// loss under fault injection, or a deadlock in user code).
    Timeout,
    /// All senders disconnected; no matching message can ever arrive.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "all senders disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Aggregate traffic counters of one rank (monotonic, thread-safe).
#[derive(Debug, Default)]
pub struct CommStats {
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Payload f64 values sent (multiply by 8 for bytes).
    pub values_sent: AtomicU64,
    /// Messages received (matched by a recv call).
    pub msgs_received: AtomicU64,
    /// Halo receives that timed out (message presumed lost).
    pub halos_lost: AtomicU64,
    /// Lost halos this rank replaced with zeros.
    pub halos_zero_filled: AtomicU64,
    /// Lost halos this rank replaced with the previous step's strip.
    pub halos_stale: AtomicU64,
}

impl CommStats {
    /// Bytes sent, assuming 8-byte payload values.
    pub fn bytes_sent(&self) -> u64 {
        self.values_sent.load(Ordering::Relaxed) * 8
    }

    /// Messages sent.
    pub fn sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Messages received.
    pub fn received(&self) -> u64 {
        self.msgs_received.load(Ordering::Relaxed)
    }

    /// Records one halo receive that timed out.
    pub fn note_halo_lost(&self) {
        self.halos_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one lost halo that was replaced with zeros.
    pub fn note_halo_zero_filled(&self) {
        self.halos_zero_filled.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one lost halo that reused the previous step's strip.
    pub fn note_halo_stale(&self) {
        self.halos_stale.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value snapshot of all counters.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            msgs_sent: self.sent(),
            bytes_sent: self.bytes_sent(),
            msgs_received: self.received(),
            halos_lost: self.halos_lost.load(Ordering::Relaxed),
            halos_zero_filled: self.halos_zero_filled.load(Ordering::Relaxed),
            halos_stale: self.halos_stale.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value snapshot of one rank's traffic and halo-resilience
/// counters — the named replacement for the old `(sent, bytes, received)`
/// tuple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Messages sent (dropped messages still count: the sender paid for
    /// them).
    pub msgs_sent: u64,
    /// Payload bytes sent (8 per f64 value).
    pub bytes_sent: u64,
    /// Messages received (matched by a recv call).
    pub msgs_received: u64,
    /// Halo receives that timed out (message presumed lost).
    pub halos_lost: u64,
    /// Lost halos replaced with zeros.
    pub halos_zero_filled: u64,
    /// Lost halos replaced with the previous step's (stale) strip.
    pub halos_stale: u64,
}

impl TrafficReport {
    /// Counter increments since an `earlier` snapshot of the same rank —
    /// how a persistent world attributes traffic to individual requests.
    pub fn since(&self, earlier: &TrafficReport) -> TrafficReport {
        TrafficReport {
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            msgs_received: self.msgs_received - earlier.msgs_received,
            halos_lost: self.halos_lost - earlier.halos_lost,
            halos_zero_filled: self.halos_zero_filled - earlier.halos_zero_filled,
            halos_stale: self.halos_stale - earlier.halos_stale,
        }
    }

    /// Total fallback substitutions (zero-filled + stale-reused).
    pub fn fallbacks(&self) -> u64 {
        self.halos_zero_filled + self.halos_stale
    }

    /// True when this rank observed any halo loss or substituted any
    /// fallback data.
    pub fn degraded(&self) -> bool {
        self.halos_lost > 0 || self.fallbacks() > 0
    }
}

/// Decides the fate of a message on edge `(src, dst, tag)`.
pub(crate) type FaultFn = dyn Fn(usize, usize, Tag) -> FaultAction + Send + Sync;

/// The communicator handle owned by one rank.
///
/// Cheap to pass by reference into library code; not clonable (one handle
/// per rank, like an MPI rank's view of `MPI_COMM_WORLD`).
pub struct Comm {
    rank: usize,
    size: usize,
    /// The mechanism moving messages: in-process channels or TCP sockets.
    /// Its `peer_alive` view is what distinguishes
    /// [`RecvError::Disconnected`] (a dead peer) from
    /// [`RecvError::Timeout`] (a lost message).
    transport: Box<dyn Transport>,
    pending: Vec<Message>,
    stats: Arc<Vec<CommStats>>,
    /// Decides delivery, loss or delay per message.
    fault_fn: Option<Arc<FaultFn>>,
    /// Current job generation. Sends stamp it onto every [`Message`];
    /// receives only match messages of the same generation. A one-shot
    /// [`crate::World::run`] never moves past generation 0, so this field is
    /// invisible to existing callers; persistent worlds bump it between jobs
    /// via [`Comm::set_generation`]. The generation is deliberately NOT part
    /// of the fault-plan edge `(src, dst, tag)`, so a seeded loss pattern is
    /// identical whether a job runs on a fresh world or as the N-th job of a
    /// persistent one.
    gen: u32,
}

impl Drop for Comm {
    fn drop(&mut self) {
        // Announce this rank's death: after shutdown, peers may observe
        // `peer_alive == false` and are guaranteed (by the transport
        // contract) that every send this rank made is already drainable —
        // so a post-observation drain misses nothing.
        self.transport.shutdown();
    }
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        transport: Box<dyn Transport>,
        stats: Arc<Vec<CommStats>>,
        fault_fn: Option<Arc<FaultFn>>,
    ) -> Self {
        Self {
            rank,
            size,
            transport,
            pending: Vec::new(),
            stats,
            fault_fn,
            gen: 0,
        }
    }

    /// Wraps an externally built transport (e.g. a
    /// [`crate::TcpTransport`] rendezvoused across processes) in a full
    /// protocol handle with its own stats block and optional fault plan.
    /// Collective-internal tags are fault-exempt, exactly as in
    /// [`crate::World`]-built comms.
    pub fn over_transport(
        rank: usize,
        size: usize,
        transport: Box<dyn Transport>,
        fault_plan: Option<&crate::world::FaultPlan>,
    ) -> Self {
        let stats: Arc<Vec<CommStats>> =
            Arc::new((0..size).map(|_| CommStats::default()).collect());
        Self::new(
            rank,
            size,
            transport,
            stats,
            fault_plan.map(crate::world::collective_exempt),
        )
    }

    /// Current job generation (0 on a fresh world).
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// Enters job generation `gen`: subsequent sends are stamped with it and
    /// receives only match it. Messages parked from generations older than
    /// `gen` are discarded — they can never match again — while messages
    /// from future generations (a peer already past its own bump) stay
    /// parked until this rank catches up.
    ///
    /// # Panics
    /// If `gen` moves backwards: re-entering an old generation would let its
    /// leftover traffic alias the new job's.
    pub fn set_generation(&mut self, gen: u32) {
        assert!(
            gen >= self.gen,
            "set_generation: cannot rewind from {} to {gen} (rank {})",
            self.gen,
            self.rank
        );
        self.gen = gen;
        self.pending.retain(|m| m.gen >= gen);
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's traffic counters.
    pub fn stats(&self) -> &CommStats {
        &self.stats[self.rank]
    }

    /// True while `rank` can still send to this rank (its communicator has
    /// not shut down). A rank counts itself alive.
    pub fn peer_alive(&self, rank: usize) -> bool {
        assert!(
            rank < self.size,
            "peer_alive: rank {rank} out of range (size {})",
            self.size
        );
        rank == self.rank || self.transport.peer_alive(rank)
    }

    /// Ranks whose communicators have shut down, as observed from this
    /// rank — the supervisor's failure-detection input.
    pub fn dead_peers(&self) -> Vec<usize> {
        (0..self.size)
            .filter(|&r| r != self.rank && !self.transport.peer_alive(r))
            .collect()
    }

    /// Buffered (eager) send: enqueues and returns immediately.
    ///
    /// # Panics
    /// If `dest` is out of range or is this rank (self-sends are almost
    /// always a bug in SPMD code; loop back through memory instead).
    pub fn send(&self, dest: usize, tag: Tag, data: Vec<f64>) {
        assert!(
            dest < self.size,
            "send: dest {dest} out of range (size {})",
            self.size
        );
        assert_ne!(dest, self.rank, "send: self-send (rank {})", self.rank);
        let s = &self.stats[self.rank];
        s.msgs_sent.fetch_add(1, Ordering::Relaxed);
        s.values_sent
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        crate::live::sends().inc(self.rank);
        crate::live::send_bytes().add(self.rank, data.len() as u64 * 8);
        // Traced bytes must mirror `values_sent` exactly (×8): the metrics
        // registry asserts the two accountings agree per rank.
        pde_trace::instant(
            pde_trace::Category::Comm,
            pde_trace::names::SEND,
            dest as u64,
            data.len() as u64 * 8,
        );
        let action = self
            .fault_fn
            .as_ref()
            .map_or(FaultAction::Deliver, |f| f(self.rank, dest, tag));
        let msg = Message {
            src: self.rank,
            tag,
            gen: self.gen,
            data,
        };
        match action {
            FaultAction::Drop => (), // silently dropped by the fault plan
            // Delivering to a rank that already died is a no-op inside the
            // transport: the peer can never read the message anyway, and
            // the death is surfaced on the *receive* side as
            // `RecvError::Disconnected` (which resilient protocols must
            // treat as fatal).
            FaultAction::Deliver => self.transport.deliver(dest, msg),
            FaultAction::Delay(delay) => self.transport.deliver_delayed(dest, msg, delay),
        }
    }

    /// Counts one matched receive on both the per-rank [`CommStats`] and
    /// the live telemetry series.
    #[inline]
    fn note_received(&self) {
        self.stats[self.rank]
            .msgs_received
            .fetch_add(1, Ordering::Relaxed);
        crate::live::recvs().inc(self.rank);
    }

    fn take_pending(&mut self, src: usize, tag: Tag) -> Option<Message> {
        let idx = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag && m.gen == self.gen)?;
        // Order-preserving removal, NOT `swap_remove`: the queue must stay in
        // arrival order, or two same-(src, tag) messages parked behind an
        // earlier removal would swap — a FIFO violation that (for example)
        // crossed the payloads of two back-to-back gathers. The queue is
        // small and transient, so O(n) removal is irrelevant.
        Some(self.pending.remove(idx))
    }

    /// True when `msg` matches what this receive is waiting for. Stale
    /// generations never match; the caller routes non-matching messages
    /// through [`Comm::park`].
    fn matches(&self, msg: &Message, src: usize, tag: Tag) -> bool {
        msg.src == src && msg.tag == tag && msg.gen == self.gen
    }

    /// Parks a non-matching arrival for a later receive — unless it belongs
    /// to a past generation, in which case it is dropped on the floor: no
    /// receive can ever match it again, and keeping it would let leftovers
    /// of finished jobs accumulate for the lifetime of a persistent world.
    fn park(&mut self, msg: Message) {
        if msg.gen >= self.gen {
            self.pending.push(msg);
        }
    }

    /// Blocking receive matching `(src, tag)`; out-of-order arrivals are
    /// parked in a pending queue.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Vec<f64> {
        match self.recv_impl(src, tag, None) {
            Ok(m) => m,
            Err(e) => panic!("recv(src={src}, tag={tag}) on rank {}: {e}", self.rank),
        }
    }

    /// Like [`Comm::recv`] but gives up after `timeout` — the building block
    /// for loss-tolerant protocols under fault injection.
    pub fn recv_timeout(
        &mut self,
        src: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Vec<f64>, RecvError> {
        self.recv_impl(src, tag, Some(timeout))
    }

    fn recv_impl(
        &mut self,
        src: usize,
        tag: Tag,
        timeout: Option<Duration>,
    ) -> Result<Vec<f64>, RecvError> {
        assert!(
            src < self.size,
            "recv: src {src} out of range (size {})",
            self.size
        );
        // Span covers the whole matching wait — its duration IS the comm
        // stall this receive caused. Bytes are filled in on success.
        let mut span = pde_trace::span_args(
            pde_trace::Category::Comm,
            pde_trace::names::RECV,
            src as u64,
            0,
        );
        if let Some(m) = self.take_pending(src, tag) {
            self.note_received();
            span.set_args(src as u64, m.data.len() as u64 * 8);
            return Ok(m.data);
        }
        // Drain already-delivered messages non-blockingly BEFORE any
        // deadline arithmetic: a zero (or already expired) timeout must
        // still return a message that is sitting in the inbox. Declaring
        // `Timeout` without polling would turn delivered data into a
        // phantom loss.
        if let Some(data) = self.drain_inbox(src, tag)? {
            span.set_args(src as u64, data.len() as u64 * 8);
            return Ok(data);
        }
        // A single `Instant` deadline computed ONCE: every retry iteration
        // below waits only the *remaining* budget, so a receive can never
        // wait multiples of the configured timeout no matter how many
        // aliveness slices or non-matching arrivals it cycles through.
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            // A dead peer can never send again. The transport guarantees
            // every send that rank ever made is drainable before
            // `peer_alive` reads false, so one more drain after observing
            // death is guaranteed to see any matching message — only then
            // is `Disconnected` the truth, not a race.
            if !self.transport.peer_alive(src) {
                if let Some(data) = self.drain_inbox(src, tag)? {
                    span.set_args(src as u64, data.len() as u64 * 8);
                    return Ok(data);
                }
                return Err(RecvError::Disconnected);
            }
            let wait = match deadline {
                None => ALIVENESS_SLICE,
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        return Err(RecvError::Timeout);
                    }
                    (d - now).min(ALIVENESS_SLICE)
                }
            };
            match self.transport.recv_timeout(wait) {
                Poll::Msg(msg) if self.matches(&msg, src, tag) => {
                    self.note_received();
                    span.set_args(src as u64, msg.data.len() as u64 * 8);
                    return Ok(msg.data);
                }
                Poll::Msg(msg) => self.park(msg),
                // Slice expired: loop back to re-check aliveness/deadline.
                Poll::Empty => (),
                Poll::Closed => return Err(RecvError::Disconnected),
            }
        }
    }

    /// Drains every already-delivered message without blocking; returns the
    /// payload if one matches `(src, tag)`, parking the rest in the pending
    /// queue. `Err(Disconnected)` only when every peer's handle is gone.
    fn drain_inbox(&mut self, src: usize, tag: Tag) -> Result<Option<Vec<f64>>, RecvError> {
        loop {
            match self.transport.try_recv() {
                Poll::Msg(msg) if self.matches(&msg, src, tag) => {
                    self.note_received();
                    return Ok(Some(msg.data));
                }
                Poll::Msg(msg) => self.park(msg),
                Poll::Empty => return Ok(None),
                Poll::Closed => return Err(RecvError::Disconnected),
            }
        }
    }

    /// Non-blocking probe-and-receive.
    pub fn try_recv(&mut self, src: usize, tag: Tag) -> Option<Vec<f64>> {
        if let Some(m) = self.take_pending(src, tag) {
            self.note_received();
            return Some(m.data);
        }
        while let Poll::Msg(msg) = self.transport.try_recv() {
            if self.matches(&msg, src, tag) {
                self.note_received();
                return Some(msg.data);
            }
            self.park(msg);
        }
        None
    }

    // ------------------------------------------------------------------
    // Collectives (tag space 0xFFFF_0000.. reserved).
    // ------------------------------------------------------------------

    const TAG_BARRIER: Tag = 0xFFFF_0001;
    const TAG_BCAST: Tag = 0xFFFF_0002;
    const TAG_REDUCE: Tag = 0xFFFF_0003;
    const TAG_GATHER: Tag = 0xFFFF_0004;

    /// Synchronizes all ranks (dissemination barrier: ⌈log₂ n⌉ rounds).
    ///
    /// Dead-tolerant: a check-in expected from a dead rank is skipped —
    /// the dead can never arrive, every live rank still sends all of its
    /// own rounds (so no *survivor* ever blocks on another survivor), and
    /// the dissemination pattern does no relaying, so survivors cannot
    /// depend on the dead transitively. Wedging every collective on a rank
    /// that is already being respawned would make recovery impossible; the
    /// fate of the dead rank's *data* is decided at the halo layer (fatal
    /// under `Strict`, degradable when recovery is underway). With no
    /// timeout the only error the receive can return is `Disconnected`, so
    /// fully-alive worlds behave exactly as before.
    pub fn barrier(&mut self) {
        let n = self.size;
        if n == 1 {
            return;
        }
        crate::live::barriers().inc(self.rank);
        let _span = pde_trace::span(pde_trace::Category::Comm, pde_trace::names::BARRIER);
        let mut round = 1usize;
        let mut round_idx = 0u32;
        while round < n {
            let dest = (self.rank + round) % n;
            let src = (self.rank + n - round % n) % n;
            self.send(dest, Self::TAG_BARRIER + (round_idx << 8), Vec::new());
            let _ = self.recv_impl(src, Self::TAG_BARRIER + (round_idx << 8), None);
            round <<= 1;
            round_idx += 1;
        }
    }

    /// Broadcasts `data` from `root` to every rank; returns the received
    /// (or, on the root, the original) buffer.
    pub fn broadcast(&mut self, root: usize, data: Vec<f64>) -> Vec<f64> {
        assert!(root < self.size, "broadcast: root out of range");
        if self.size == 1 {
            return data;
        }
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send(r, Self::TAG_BCAST, data.clone());
                }
            }
            data
        } else {
            self.recv(root, Self::TAG_BCAST)
        }
    }

    /// Elementwise-sum reduction to `root`; non-root ranks get `None`.
    pub fn reduce_sum(&mut self, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        assert!(root < self.size, "reduce_sum: root out of range");
        if self.rank == root {
            let mut acc = data.to_vec();
            for r in 0..self.size {
                if r == root {
                    continue;
                }
                let part = self.recv(r, Self::TAG_REDUCE);
                assert_eq!(
                    part.len(),
                    acc.len(),
                    "reduce_sum: length mismatch from rank {r}"
                );
                for (a, b) in acc.iter_mut().zip(part) {
                    *a += b;
                }
            }
            Some(acc)
        } else {
            self.send(root, Self::TAG_REDUCE, data.to_vec());
            None
        }
    }

    /// Elementwise-sum allreduce (reduce to rank 0, then broadcast) — the
    /// communication pattern of the Viviani-style weight-averaging baseline.
    pub fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64> {
        let reduced = self.reduce_sum(0, data);
        match reduced {
            Some(v) => self.broadcast(0, v),
            None => self.broadcast(0, Vec::new()),
        }
    }

    /// Gathers each rank's buffer at `root` (ordered by rank); non-root
    /// ranks get `None`.
    pub fn gather(&mut self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert!(root < self.size, "gather: root out of range");
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size];
            out[root] = data.to_vec();
            for r in (0..self.size).filter(|&r| r != root) {
                out[r] = self.recv(r, Self::TAG_GATHER);
            }
            Some(out)
        } else {
            self.send(root, Self::TAG_GATHER, data.to_vec());
            None
        }
    }

    /// Gathers every rank's buffer on every rank.
    pub fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>> {
        let gathered = self.gather(0, data);
        // Flatten with a length header so a single broadcast suffices.
        if self.rank == 0 {
            let parts = gathered.expect("gather on root");
            let mut flat =
                Vec::with_capacity(1 + parts.len() + parts.iter().map(Vec::len).sum::<usize>());
            flat.push(parts.len() as f64);
            for p in &parts {
                flat.push(p.len() as f64);
            }
            for p in &parts {
                flat.extend_from_slice(p);
            }
            let flat = self.broadcast(0, flat);
            unflatten(&flat)
        } else {
            let flat = self.broadcast(0, Vec::new());
            unflatten(&flat)
        }
    }
}

fn unflatten(flat: &[f64]) -> Vec<Vec<f64>> {
    let n = flat[0] as usize;
    let lens: Vec<usize> = (0..n).map(|i| flat[1 + i] as usize).collect();
    let mut out = Vec::with_capacity(n);
    let mut offset = 1 + n;
    for len in lens {
        out.push(flat[offset..offset + len].to_vec());
        offset += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::world::World;
    use std::time::Duration;

    #[test]
    fn rank_and_size_are_assigned() {
        let out = World::new(4).run(|comm| {
            assert_eq!(comm.size(), 4);
            comm.rank()
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_pass_point_to_point() {
        let n = 5;
        let out = World::new(n).run(move |mut comm| {
            let next = (comm.rank() + 1) % n;
            let prev = (comm.rank() + n - 1) % n;
            comm.send(next, 7, vec![comm.rank() as f64]);
            let got = comm.recv(prev, 7);
            got[0] as usize
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let out = World::new(2).run(|mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1.0]);
                comm.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        World::new(8).run(move |mut comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(c2.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = World::new(4).run(|mut comm| {
            let data = if comm.rank() == 2 {
                vec![3.25, 2.5]
            } else {
                Vec::new()
            };
            comm.broadcast(2, data)
        });
        for r in out {
            assert_eq!(r, vec![3.25, 2.5]);
        }
    }

    #[test]
    fn reduce_and_allreduce_sum() {
        let out = World::new(4).run(|mut comm| {
            let mine = vec![comm.rank() as f64, 1.0];

            comm.allreduce_sum(&mine)
        });
        for r in out {
            assert_eq!(r, vec![6.0, 4.0]); // 0+1+2+3, 1×4
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = World::new(3).run(|mut comm| comm.gather(0, &[comm.rank() as f64 * 2.0]));
        let root = out[0].as_ref().unwrap();
        assert_eq!(root, &vec![vec![0.0], vec![2.0], vec![4.0]]);
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn parked_messages_keep_per_edge_fifo_across_tag_matches() {
        // Regression: `take_pending` used `swap_remove`, which moved the
        // LAST parked message into the removed slot — so taking an earlier
        // entry swapped two same-(src, tag) messages parked behind it, and
        // back-to-back gathers could cross payloads. The receive order here
        // forces exactly that shape: recv(tag 8) parks [9, 7a, 7b] in
        // arrival order, recv(tag 9) removes index 0, and the two tag-7
        // receives must still come back in send order on every transport.
        for kind in [crate::TransportKind::Channel, crate::TransportKind::Tcp] {
            let out = World::new(2).with_transport(kind).run(|mut comm| {
                if comm.rank() == 1 {
                    comm.send(0, 9, vec![9.0]);
                    comm.send(0, 7, vec![1.0]);
                    comm.send(0, 7, vec![2.0]);
                    comm.send(0, 8, vec![8.0]);
                    comm.barrier();
                    Vec::new()
                } else {
                    assert_eq!(comm.recv(1, 8), vec![8.0]);
                    assert_eq!(comm.recv(1, 9), vec![9.0]);
                    let first = comm.recv(1, 7);
                    let second = comm.recv(1, 7);
                    comm.barrier();
                    vec![first[0], second[0]]
                }
            });
            assert_eq!(
                out[0],
                vec![1.0, 2.0],
                "{kind:?}: same-(src, tag) messages must stay FIFO"
            );
        }
    }

    #[test]
    fn allgather_everywhere() {
        let out = World::new(3).run(|mut comm| comm.allgather(&[comm.rank() as f64; 2]));
        for r in &out {
            assert_eq!(r, &vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        }
    }

    #[test]
    fn allgather_handles_unequal_lengths() {
        let out = World::new(3).run(|mut comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.allgather(&mine)
        });
        for r in &out {
            assert_eq!(r[0].len(), 1);
            assert_eq!(r[1].len(), 2);
            assert_eq!(r[2].len(), 3);
        }
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = World::new(2).run(|mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0.0; 10]);
                (comm.stats().sent(), comm.stats().bytes_sent())
            } else {
                let _ = comm.recv(0, 0);
                (comm.stats().received(), 0)
            }
        });
        assert_eq!(out[0], (1, 80));
        assert_eq!(out[1].0, 1);
    }

    #[test]
    fn try_recv_returns_none_without_message() {
        World::new(2).run(|mut comm| {
            if comm.rank() == 0 {
                assert!(comm.try_recv(1, 9).is_none());
                comm.barrier();
            } else {
                comm.barrier();
            }
        });
    }

    #[test]
    fn recv_timeout_expires() {
        World::new(2).run(|mut comm| {
            if comm.rank() == 0 {
                let r = comm.recv_timeout(1, 42, Duration::from_millis(20));
                assert!(r.is_err());
            }
            comm.barrier();
        });
    }

    #[test]
    fn recv_timeout_zero_deadline_returns_delivered_message() {
        // Regression: an expired/zero deadline used to report `Timeout`
        // without ever polling the inbox, losing a message that had already
        // been delivered. The std Barrier guarantees the payload is in rank
        // 1's channel (sends enqueue synchronously) before the zero-timeout
        // receive runs — no sleeps, no races.
        use std::sync::{Arc, Barrier};
        let gate = Arc::new(Barrier::new(2));
        World::new(2).run(|mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![42.0, 43.0]);
                gate.wait();
            } else {
                gate.wait();
                let got = comm.recv_timeout(0, 9, Duration::ZERO);
                assert_eq!(got, Ok(vec![42.0, 43.0]));
            }
        });
    }

    #[test]
    fn recv_timeout_zero_deadline_finds_pending_message() {
        // Same regression via the pending queue: a non-matching receive
        // parks the message; the zero-timeout receive must still find it.
        use std::sync::{Arc, Barrier};
        let gate = Arc::new(Barrier::new(2));
        World::new(2).run(|mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1.0]);
                comm.send(1, 6, vec![2.0]);
                gate.wait();
            } else {
                gate.wait();
                // Receiving tag 6 first parks tag 5 in pending.
                assert_eq!(comm.recv(0, 6), vec![2.0]);
                assert_eq!(comm.recv_timeout(0, 5, Duration::ZERO), Ok(vec![1.0]));
            }
        });
    }

    #[test]
    fn dead_peer_is_disconnected_not_timeout() {
        // Rank 0 exits immediately; rank 1's wait must resolve to
        // `Disconnected` (peer death), never be mistaken for a `Timeout`
        // (message loss). A generous timeout proves we do not simply expire.
        use crate::comm::RecvError;
        World::new(2).run(|mut comm| {
            if comm.rank() == 1 {
                let r = comm.recv_timeout(0, 3, Duration::from_secs(30));
                assert_eq!(r, Err(RecvError::Disconnected));
            }
        });
    }

    #[test]
    fn message_sent_before_peer_death_is_still_received() {
        // Buffered messages outlive their sender: death is only reported
        // once nothing matching can ever arrive.
        World::new(2).run(|mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, vec![7.0]);
            } else {
                assert_eq!(comm.recv(0, 4), vec![7.0]);
            }
        });
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let out = World::new(1).run(|mut comm| {
            comm.barrier();
            let b = comm.broadcast(0, vec![5.0]);

            comm.allreduce_sum(&b)
        });
        assert_eq!(out[0], vec![5.0]);
    }
}
