//! World construction: spawn ranks, wire channels, collect results.
//!
//! Two execution models share one wiring:
//!
//! * [`World::run`] — the classic one-shot SPMD call: spawn a thread per
//!   rank, run the closure, join, return. Internally this is now a
//!   single-job [`PersistentWorld`], so both models exercise the same code.
//! * [`World::spawn_persistent`] — rank threads stay up between jobs, each
//!   driven by a job mailbox. `Comm`s (and any rank-resident state) survive
//!   across jobs; cross-job message bleed is prevented by generation
//!   tagging ([`Comm::set_generation`]).

use crate::comm::{Comm, CommStats, FaultFn, Message, Tag, TrafficReport};
use crate::transport::ChannelTransport;
use crossbeam::channel::{unbounded, Sender};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// What the fault plan does to a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the sender still counts it as sent).
    Drop,
    /// Deliver after sitting in flight for the given duration — a slow
    /// link. A delay longer than the receiver's timeout is observed as a
    /// loss by that receive (the message still arrives and lingers in the
    /// inbox afterwards, exactly like a late datagram).
    Delay(Duration),
}

/// A deterministic fault-injection plan: maps message edges to actions.
///
/// Collective-internal tags (`0xFFFF_0000` and above) are never subjected
/// to faults — dropping a barrier message would wedge the whole world and
/// test nothing interesting.
#[derive(Clone)]
pub struct FaultPlan {
    f: Arc<dyn Fn(usize, usize, Tag) -> FaultAction + Send + Sync>,
}

impl FaultPlan {
    /// Builds a plan from a `(src, dst, tag) → action` function.
    pub fn new(f: impl Fn(usize, usize, Tag) -> FaultAction + Send + Sync + 'static) -> Self {
        Self { f: Arc::new(f) }
    }

    /// Drops every message from `src` to `dst` (any user tag).
    pub fn drop_edge(src: usize, dst: usize) -> Self {
        Self::new(move |s, d, _| {
            if s == src && d == dst {
                FaultAction::Drop
            } else {
                FaultAction::Deliver
            }
        })
    }

    /// Drops each user message independently with probability `rate`,
    /// decided by a pure hash of `(seed, src, dst, tag)` — no shared RNG
    /// state, so the SAME messages are lost on every run regardless of
    /// thread scheduling. That determinism is what makes degraded rollouts
    /// reproducible and testable.
    ///
    /// # Panics
    /// If `rate` is outside `[0, 1]`.
    pub fn loss_rate(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "FaultPlan::loss_rate: rate {rate} outside [0, 1]"
        );
        Self::new(move |s, d, t| {
            if edge_uniform(seed, s, d, t) < rate {
                FaultAction::Drop
            } else {
                FaultAction::Deliver
            }
        })
    }

    /// Delays every message from `src` to `dst` by `delay`.
    pub fn delay_edge(src: usize, dst: usize, delay: Duration) -> Self {
        Self::new(move |s, d, _| {
            if s == src && d == dst {
                FaultAction::Delay(delay)
            } else {
                FaultAction::Deliver
            }
        })
    }

    /// Parses the CLI fault grammar:
    ///
    /// * `drop:SRC-DST` — drop every message on one edge;
    /// * `loss:RATE:SEED` — seeded per-message loss (`RATE` in `[0, 1]`);
    /// * `delay:SRC-DST:MS` — delay one edge by `MS` milliseconds.
    pub fn parse(spec: &str) -> Result<Self, String> {
        Self::parse_impl(spec).map(|(plan, _)| plan)
    }

    /// Like [`FaultPlan::parse`], additionally validating every rank the
    /// spec names against `world_size` — the entry point for callers that
    /// know the world's shape. Without this check, a typo like `drop:0-9`
    /// in a 4-rank world parses fine and then silently never fires.
    pub fn parse_for(spec: &str, world_size: usize) -> Result<Self, String> {
        let (plan, ranks) = Self::parse_impl(spec)?;
        if let Some(&bad) = ranks.iter().find(|&&r| r >= world_size) {
            return Err(format!(
                "fault spec '{spec}': rank {bad} does not exist in a {world_size}-rank \
                 world (ranks are 0..={})",
                world_size - 1
            ));
        }
        Ok(plan)
    }

    /// Shared parser body: the plan plus every rank the spec mentioned
    /// (for [`FaultPlan::parse_for`]'s range check).
    fn parse_impl(spec: &str) -> Result<(Self, Vec<usize>), String> {
        let parse_edge = |edge: &str| -> Result<(usize, usize), String> {
            let (s, d) = edge
                .split_once('-')
                .ok_or_else(|| format!("fault edge '{edge}' is not SRC-DST"))?;
            let s = s
                .parse()
                .map_err(|_| format!("fault edge src '{s}' is not a rank"))?;
            let d = d
                .parse()
                .map_err(|_| format!("fault edge dst '{d}' is not a rank"))?;
            Ok((s, d))
        };
        match spec.split(':').collect::<Vec<_>>().as_slice() {
            ["drop", edge] => {
                let (s, d) = parse_edge(edge)?;
                Ok((Self::drop_edge(s, d), vec![s, d]))
            }
            ["loss", rate, seed] => {
                let rate: f64 = rate
                    .parse()
                    .map_err(|_| format!("loss rate '{rate}' is not a number"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("loss rate {rate} outside [0, 1]"));
                }
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("loss seed '{seed}' is not an integer"))?;
                Ok((Self::loss_rate(rate, seed), Vec::new()))
            }
            ["delay", edge, ms] => {
                let (s, d) = parse_edge(edge)?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("delay '{ms}' is not milliseconds"))?;
                Ok((
                    Self::delay_edge(s, d, Duration::from_millis(ms)),
                    vec![s, d],
                ))
            }
            ["drop", ..] => Err(format!(
                "fault spec '{spec}': drop takes exactly one edge (drop:SRC-DST)"
            )),
            ["loss", ..] => Err(format!(
                "fault spec '{spec}': loss takes a rate and a seed (loss:RATE:SEED)"
            )),
            ["delay", ..] => Err(format!(
                "fault spec '{spec}': delay takes an edge and milliseconds (delay:SRC-DST:MS)"
            )),
            [other, ..] if !other.is_empty() => Err(format!(
                "unknown fault directive '{other}' (known: drop, loss, delay; \
                 e.g. drop:0-1, loss:0.1:42, delay:0-1:20)"
            )),
            _ => Err(
                "empty fault spec (expected drop:SRC-DST, loss:RATE:SEED or delay:SRC-DST:MS)"
                    .to_string(),
            ),
        }
    }
}

/// Wraps a plan's edge function with the collective exemption (tags
/// `0xFFFF_0000` and above always deliver) — the filter every world-built
/// and every standalone [`Comm`] applies identically.
pub(crate) fn collective_exempt(plan: &FaultPlan) -> Arc<FaultFn> {
    let pf = plan.f.clone();
    Arc::new(move |s: usize, d: usize, t: Tag| {
        if t >= 0xFFFF_0000 {
            FaultAction::Deliver // collectives are exempt
        } else {
            pf(s, d, t)
        }
    }) as Arc<FaultFn>
}

/// One round of the splitmix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `[0, 1)` as a pure function of the message edge.
fn edge_uniform(seed: u64, src: usize, dst: usize, tag: Tag) -> f64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for v in [src as u64, dst as u64, tag as u64] {
        h = splitmix64(h ^ v);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Which mechanism a world's ranks use to move messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channel mesh (the original, default mechanism).
    #[default]
    Channel,
    /// Loopback TCP sockets: each rank gets a real `TcpTransport`
    /// rendezvoused over `127.0.0.1`, exercising the exact framing,
    /// handshake and liveness machinery a multi-process world uses —
    /// while still running every rank in this process.
    Tcp,
}

impl TransportKind {
    /// Parses the CLI grammar: `channel` | `tcp`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "channel" => Ok(Self::Channel),
            "tcp" => Ok(Self::Tcp),
            other => Err(format!("unknown transport '{other}' (channel or tcp)")),
        }
    }

    /// The CLI-grammar name (inverse of [`TransportKind::parse`]).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Channel => "channel",
            Self::Tcp => "tcp",
        }
    }
}

/// A fixed-size collection of ranks executing one SPMD closure.
///
/// Clonable because a [`PersistentWorld`] keeps its originating spec: a
/// respawn rebuilds the communicator mesh from the same size, fault plan
/// and transport the world was born with.
#[derive(Clone)]
pub struct World {
    size: usize,
    fault_plan: Option<FaultPlan>,
    transport: TransportKind,
}

impl World {
    /// A world with `size` ranks.
    ///
    /// # Panics
    /// If `size` is 0.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "World: need at least one rank");
        Self {
            size,
            fault_plan: None,
            transport: TransportKind::Channel,
        }
    }

    /// Attaches a fault-injection plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Selects the transport mechanism (builder style; default channel).
    pub fn with_transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f` once per rank on its own OS thread and returns the per-rank
    /// results ordered by rank. Panics in any rank propagate (after all
    /// other ranks have been joined or have panicked themselves).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        self.run_with_stats(f).0
    }

    /// Runs and additionally returns the per-rank [`TrafficReport`]s
    /// observed during the run.
    ///
    /// This is a thin one-job wrapper over [`World::spawn_persistent`]: the
    /// world is spawned, the closure runs once per rank as the single job
    /// (each rank's `Comm` is taken out of its slot, so it drops — and its
    /// aliveness flag clears — the moment `f` returns, exactly like the
    /// original thread-per-run model), and the world is torn down. All
    /// fault-injection and tracing machinery rides along unchanged.
    pub fn run_with_stats<T, F>(&self, f: F) -> (Vec<T>, Vec<TrafficReport>)
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let mut pw = self.clone().spawn_persistent();
        let out = pw.run(|mut ctx| {
            let comm = ctx.take_comm().expect("fresh world has a resident comm");
            f(comm)
        });
        let traffic = pw.traffic();
        (out, traffic)
    }

    /// Builds the per-rank communicators (channel mesh, stats, aliveness
    /// flags, fault filter) without running anything — the wiring shared by
    /// the one-shot and persistent execution models, and re-entered by
    /// [`PersistentWorld::respawn`] to rebuild the mesh after rank deaths.
    ///
    /// `stats` and `alive` are owned by the caller so they stay stable
    /// across mesh rebuilds: traffic counters keep accumulating
    /// monotonically, and health checks holding the `alive` Arc observe
    /// recovery instead of a latched dead-rank view. Every aliveness flag
    /// is re-armed true here — the mesh being built is, by construction,
    /// fully alive.
    fn build_comms(&self, stats: &Arc<Vec<CommStats>>, alive: &Arc<Vec<AtomicBool>>) -> Vec<Comm> {
        let n = self.size;
        assert_eq!(stats.len(), n, "stats block per rank");
        assert_eq!(alive.len(), n, "aliveness flag per rank");
        let fault_fn: Option<Arc<FaultFn>> = self.fault_plan.as_ref().map(collective_exempt);
        // One aliveness flag per rank, cleared when its Comm drops (normal
        // completion or panic-unwind alike): "this rank will never send
        // again". The channel transport doubles it as the receive-side
        // death signal; the TCP transport keeps its own per-connection
        // view and only clears this world-level flag (for health checks)
        // on its own shutdown.
        for flag in alive.iter() {
            flag.store(true, Ordering::Release);
        }
        match self.transport {
            TransportKind::Channel => {
                // One inbox per rank; every rank holds a sender clone to
                // every OTHER inbox (no self-sender — self-sends are
                // forbidden, and the gap is what lets an inbox disconnect
                // once all peers are gone, so a dead peer is
                // distinguishable from a lost message).
                let (senders, inboxes): (Vec<_>, Vec<_>) =
                    (0..n).map(|_| unbounded::<Message>()).unzip();
                let comms: Vec<Comm> = inboxes
                    .into_iter()
                    .enumerate()
                    .map(|(rank, inbox)| {
                        let peer_senders: Vec<Option<Sender<Message>>> = senders
                            .iter()
                            .enumerate()
                            .map(|(r, s)| if r == rank { None } else { Some(s.clone()) })
                            .collect();
                        let transport =
                            ChannelTransport::new(rank, peer_senders, inbox, alive.clone());
                        Comm::new(
                            rank,
                            n,
                            Box::new(transport),
                            stats.clone(),
                            fault_fn.clone(),
                        )
                    })
                    .collect();
                // Drop the original senders so channels close when all
                // ranks finish.
                drop(senders);
                comms
            }
            TransportKind::Tcp => crate::tcp::loopback_mesh(n, alive)
                .into_iter()
                .enumerate()
                .map(|(rank, transport)| {
                    Comm::new(
                        rank,
                        n,
                        Box::new(transport),
                        stats.clone(),
                        fault_fn.clone(),
                    )
                })
                .collect(),
        }
    }

    /// Spawns the world's rank threads once and keeps them alive: each rank
    /// worker owns its `Comm` in a [`RankSlot`] and executes jobs from a
    /// mailbox until the [`PersistentWorld`] is dropped. Use this when the
    /// same world serves many requests — per-rank state (networks, caches,
    /// scratch buffers) survives between jobs instead of being rebuilt.
    pub fn spawn_persistent(self) -> PersistentWorld {
        let labels = (0..self.size).collect();
        self.spawn_persistent_labeled(labels)
    }

    /// Partitions this world into disjoint rank groups and spawns one
    /// independent [`PersistentWorld`] per group. `groups[g]` lists the
    /// *global* rank ids served by sub-world `g`; within each sub-world,
    /// comm ranks are group-local `0..groups[g].len()` (so a 2-rank
    /// sub-world is indistinguishable — tags, fault decisions, arithmetic —
    /// from a freshly spawned 2-rank world), while thread names and live
    /// telemetry keep the global labels.
    ///
    /// Every sub-world inherits the parent's fault plan and transport but
    /// owns its own mesh, traffic stats, aliveness flags and generation
    /// counter: jobs on different sub-worlds share nothing and can run
    /// concurrently with zero cross-talk.
    ///
    /// Errors when the groups are not a partition of `0..size` (a rank
    /// missing, duplicated, or out of range) — a sub-world layout typo
    /// would otherwise strand ranks silently.
    pub fn split(self, groups: &[Vec<usize>]) -> Result<Vec<PersistentWorld>, String> {
        let n = self.size;
        if groups.is_empty() {
            return Err("split: need at least one rank group".to_string());
        }
        let mut seen = vec![false; n];
        for (g, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(format!("split: group {g} is empty"));
            }
            for &r in group {
                if r >= n {
                    return Err(format!(
                        "split: group {g} names rank {r} but the world has ranks 0..={}",
                        n - 1
                    ));
                }
                if seen[r] {
                    return Err(format!("split: rank {r} appears in more than one group"));
                }
                seen[r] = true;
            }
        }
        if let Some(orphan) = seen.iter().position(|covered| !covered) {
            return Err(format!(
                "split: rank {orphan} belongs to no group (groups must cover every rank)"
            ));
        }
        Ok(groups
            .iter()
            .map(|group| {
                World {
                    size: group.len(),
                    fault_plan: self.fault_plan.clone(),
                    transport: self.transport,
                }
                .spawn_persistent_labeled(group.clone())
            })
            .collect())
    }

    /// [`World::split`] into `parts` contiguous equal-sized groups — the
    /// common serving shape (`--sub-worlds N`). Errors unless `parts`
    /// divides the rank count evenly.
    pub fn split_even(self, parts: usize) -> Result<Vec<PersistentWorld>, String> {
        if parts == 0 {
            return Err("split_even: need at least one part".to_string());
        }
        if !self.size.is_multiple_of(parts) {
            return Err(format!(
                "split_even: {} ranks do not divide into {parts} equal groups",
                self.size
            ));
        }
        let per = self.size / parts;
        let groups: Vec<Vec<usize>> = (0..parts)
            .map(|p| (p * per..(p + 1) * per).collect())
            .collect();
        self.split(&groups)
    }

    /// Shared spawn body: `labels[local_rank]` is the global rank id used
    /// for thread names and live telemetry attribution, while the `Comm`s
    /// (and everything built on them) see only local ranks `0..size`.
    fn spawn_persistent_labeled(self, labels: Vec<usize>) -> PersistentWorld {
        let n = self.size;
        assert_eq!(labels.len(), n, "one label per rank");
        let stats: Arc<Vec<CommStats>> = Arc::new((0..n).map(|_| CommStats::default()).collect());
        let alive: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(true)).collect());
        let comms = self.build_comms(&stats, &alive);
        let mut mailboxes = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for comm in comms {
            let (tx, rx) = mpsc::channel::<Job>();
            let rank = comm.rank();
            workers.push(spawn_rank_worker(rank, n, labels[rank], Some(comm), rx));
            mailboxes.push(tx);
        }
        PersistentWorld {
            spec: self,
            size: n,
            labels,
            mailboxes,
            workers,
            stats,
            alive,
            next_gen: 0,
            poisoned: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// Spawns one persistent rank worker thread around a fresh [`RankSlot`].
/// Used at world birth (with the rank's comm resident) and by
/// [`PersistentWorld::respawn`] (with an empty slot — the replacement comm
/// arrives via the reinit job).
fn spawn_rank_worker(
    rank: usize,
    size: usize,
    label: usize,
    comm: Option<Comm>,
    rx: mpsc::Receiver<Job>,
) -> std::thread::JoinHandle<()> {
    let mut slot = RankSlot {
        rank,
        size,
        comm,
        state: None,
    };
    std::thread::Builder::new()
        .name(format!("pdeml-rank-{label}"))
        .spawn(move || {
            // Tag the thread so live telemetry (kernel gauges)
            // shards per rank even when no trace session is active.
            // Sub-worlds tag with the GLOBAL rank label so two sub-worlds
            // never collide on one telemetry shard.
            pde_trace::set_thread_rank(label as u32);
            while let Ok(job) = rx.recv() {
                job(&mut slot);
            }
            // Mailbox disconnected: shutdown. Dropping the slot
            // drops the resident Comm (and any user state holding
            // one), clearing this rank's aliveness flag and closing
            // its share of the channel mesh.
        })
        .expect("spawn persistent rank worker")
}

/// A job shipped to one rank worker. Lifetime-erased: see the safety
/// argument in [`PersistentWorld::run_at`].
type Job = Box<dyn FnOnce(&mut RankSlot) + Send + 'static>;

/// One rank worker's residency: its communicator (until a job takes it —
/// e.g. to move it into a `CartComm` kept in `state`) and an arbitrary
/// user-owned state that survives across jobs.
pub(crate) struct RankSlot {
    rank: usize,
    size: usize,
    comm: Option<Comm>,
    state: Option<Box<dyn Any + Send>>,
}

/// A job's view of its rank worker, passed to every closure run through
/// [`PersistentWorld::run`].
pub struct RankContext<'a> {
    slot: &'a mut RankSlot,
    gen: u32,
}

impl RankContext<'_> {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.slot.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.slot.size
    }

    /// The generation this job runs at. When a job owns its communicator
    /// inside [`RankContext::state`] (so the automatic per-job bump cannot
    /// reach it), it must forward this value via [`Comm::set_generation`]
    /// before communicating.
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// The slot-resident communicator.
    ///
    /// # Panics
    /// If a previous job moved the comm out with [`RankContext::take_comm`]
    /// and never put it back.
    pub fn comm(&mut self) -> &mut Comm {
        self.slot
            .comm
            .as_mut()
            .expect("comm was taken out of the rank slot")
    }

    /// Moves the communicator out of the slot — to consume it by value
    /// (one-shot jobs) or embed it in a structure kept in
    /// [`RankContext::state`]. Once taken, the job owns generation
    /// management for it.
    pub fn take_comm(&mut self) -> Option<Comm> {
        self.slot.comm.take()
    }

    /// Returns a previously taken communicator to the slot.
    pub fn put_comm(&mut self, comm: Comm) {
        self.slot.comm = Some(comm);
    }

    /// Rank-resident user state: survives across jobs, dropped on worker
    /// shutdown (or when a job on this rank panics).
    pub fn state(&mut self) -> &mut Option<Box<dyn Any + Send>> {
        &mut self.slot.state
    }
}

/// A world whose rank threads outlive individual jobs.
///
/// Created by [`World::spawn_persistent`]. Each [`PersistentWorld::run`]
/// submits one closure invocation per rank and blocks until every rank has
/// reported back; ranks keep their `Comm`s and any [`RankContext::state`]
/// between jobs. Jobs are generation-tagged so a message left over from job
/// N (a delayed delivery, a halo strip that outlived its receive timeout)
/// can never be matched by job N+1 even though both use the same tags.
pub struct PersistentWorld {
    /// The spec this world was spawned from; [`PersistentWorld::respawn`]
    /// rebuilds the communicator mesh from it.
    spec: World,
    size: usize,
    /// `labels[local_rank]` = global rank id (identity unless this world
    /// came out of [`World::split`]); used for thread names and telemetry.
    labels: Vec<usize>,
    mailboxes: Vec<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<Vec<CommStats>>,
    alive: Arc<Vec<AtomicBool>>,
    next_gen: u32,
    /// Shared so health checks can watch the world die from another thread
    /// (e.g. the metrics exporter) without borrowing the world itself.
    poisoned: Arc<AtomicBool>,
}

impl PersistentWorld {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The global rank id behind each local rank: identity for a directly
    /// spawned world, the group's rank list for a [`World::split`]
    /// sub-world.
    pub fn global_ranks(&self) -> &[usize] {
        &self.labels
    }

    /// Reserves `n` consecutive job generations and returns the first.
    /// [`PersistentWorld::run`] reserves its own; reserve extra only when a
    /// single job internally serves several requests (e.g. a batched
    /// rollout) and needs one generation per request.
    pub fn alloc_generations(&mut self, n: u32) -> u32 {
        let first = self.next_gen;
        self.next_gen = self
            .next_gen
            .checked_add(n)
            .expect("generation counter overflow");
        crate::live::generations().add(pde_telemetry::DRIVER, n as u64);
        first
    }

    /// True once any job has panicked (the world refuses further jobs).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// A shared handle on the poisoned flag, for health checks that outlive
    /// borrows of the world (e.g. a metrics exporter thread).
    pub fn poisoned_flag(&self) -> Arc<AtomicBool> {
        self.poisoned.clone()
    }

    /// The per-rank aliveness flags (cleared when a rank's `Comm` drops —
    /// worker shutdown or job panic alike), shared for health checks.
    pub fn alive_flags(&self) -> Arc<Vec<AtomicBool>> {
        self.alive.clone()
    }

    /// Runs `f` once per rank as one job at a freshly reserved generation;
    /// blocks until every rank finishes and returns the per-rank results
    /// ordered by rank. Panics in any rank propagate (after all ranks have
    /// reported), and a panicked job kills its rank — comm and state are
    /// dropped so peers observe `Disconnected` — leaving the world unusable
    /// (subsequent runs panic).
    pub fn run<T, F>(&mut self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankContext<'_>) -> T + Send + Sync,
    {
        let gen = self.alloc_generations(1);
        self.run_at(gen, f)
    }

    /// Like [`PersistentWorld::run`] but at an explicitly reserved
    /// generation (from [`PersistentWorld::alloc_generations`]) — the entry
    /// point for jobs that manage a range of generations internally.
    pub fn run_at<T, F>(&mut self, gen: u32, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankContext<'_>) -> T + Send + Sync,
    {
        let results = self.run_collect(gen, f);
        let mut out = Vec::with_capacity(self.size);
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    self.poisoned.store(true, Ordering::Release);
                    first_panic.get_or_insert(e);
                }
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        out
    }

    /// The non-poisoning job primitive: runs `f` once per rank at `gen` and
    /// returns every rank's outcome — `Err` carries the rank's caught panic
    /// payload instead of resuming it on the driver. A panicked rank is
    /// still a *dead* rank (its comm and state are dropped, peers observe
    /// `Disconnected`), but the world stays usable so a supervisor can
    /// inspect [`PersistentWorld::dead_ranks`] and
    /// [`PersistentWorld::respawn`] it instead of tearing everything down.
    /// [`PersistentWorld::run_at`] is this plus poison-and-propagate.
    pub fn run_collect<T, F>(&mut self, gen: u32, f: F) -> Vec<std::thread::Result<T>>
    where
        T: Send,
        F: Fn(RankContext<'_>) -> T + Send + Sync,
    {
        assert!(
            !self.is_poisoned(),
            "PersistentWorld: a previous job panicked; the world is dead"
        );
        assert!(
            gen < self.next_gen,
            "run_at: generation {gen} was never reserved (next is {})",
            self.next_gen
        );
        // Propagate the submitting thread's trace session (if any) into
        // each rank worker for the duration of the job, so spans land on
        // that rank's timeline track. No-ops when tracing is off.
        let session = pde_trace::session();
        let (done_tx, done_rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let f = &f;
            for (rank, mailbox) in self.mailboxes.iter().enumerate() {
                let label = self.labels[rank];
                let done = done_tx.clone();
                let job: Box<dyn FnOnce(&mut RankSlot) + Send + '_> =
                    Box::new(move |slot: &mut RankSlot| {
                        // Enter this job's generation. If a previous job
                        // moved the comm into `state`, the job itself must
                        // forward `RankContext::generation` instead.
                        if let Some(c) = slot.comm.as_mut() {
                            c.set_generation(gen);
                        }
                        pde_trace::adopt(session, label as u32);
                        let out = catch_unwind(AssertUnwindSafe(|| f(RankContext { slot, gen })));
                        pde_trace::leave();
                        // `leave` resets the thread's rank tag to the driver;
                        // restore it so live telemetry between jobs (and in
                        // sessions without tracing) stays rank-attributed.
                        pde_trace::set_thread_rank(label as u32);
                        if out.is_err() {
                            // A panicked job means a dead rank: dropping the
                            // comm AND the state (which may hold a comm of
                            // its own, e.g. inside a CartComm) clears the
                            // aliveness flag so blocked peers observe
                            // `Disconnected` instead of hanging.
                            crate::live::rank_panics().inc(label);
                            slot.comm = None;
                            slot.state = None;
                        }
                        crate::live::mailbox_depth().add(label, -1);
                        let _ = done.send((rank, out));
                    });
                // SAFETY: the job borrows `f` (and `done_tx` clones), which
                // live on this stack frame, yet is shipped to a 'static
                // worker thread. This is sound because the loop below blocks
                // until every rank has sent its completion message — a send
                // that each job performs unconditionally, on success and on
                // caught panic alike — so no job (and hence no borrow of
                // `f`) can outlive this call. The transmute only erases the
                // closure's lifetime bound; the fat-pointer layout of
                // `Box<dyn FnOnce>` is unchanged.
                let job: Job = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce(&mut RankSlot) + Send + '_>, Job>(job)
                };
                crate::live::mailbox_depth().add(label, 1);
                mailbox
                    .send(job)
                    .expect("persistent rank worker is running");
            }
        }
        drop(done_tx);
        let mut results: Vec<Option<std::thread::Result<T>>> =
            (0..self.size).map(|_| None).collect();
        for _ in 0..self.size {
            let (rank, out) = done_rx
                .recv()
                .expect("every submitted job reports completion");
            results[rank] = Some(out);
        }
        // From here on no job references `f` anymore.
        results
            .into_iter()
            .map(|r| r.expect("all ranks reported"))
            .collect()
    }

    /// Ranks whose world-level aliveness flag is down: their communicator
    /// shut down (job panic, process death over TCP) and they will never
    /// send again until respawned.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, flag)| !flag.load(Ordering::Acquire))
            .map(|(rank, _)| rank)
            .collect()
    }

    /// Rebuilds a world with dead ranks back to full strength and returns
    /// the ranks that were respawned (empty when nothing was dead).
    ///
    /// The sequence, per the membership-recovery protocol (DESIGN §4i):
    ///
    /// 1. every dead rank gets a **new thread slot**: its mailbox is
    ///    replaced (the old worker — which survived the job panic; only its
    ///    slot contents were cleared — falls out of its receive loop and is
    ///    joined) and a fresh worker thread takes the rank with an empty
    ///    slot;
    /// 2. a **fresh full mesh** is built from the world's original spec
    ///    (same stats block, same aliveness flags — so traffic counters
    ///    stay monotonic and health checks watch the same Arc);
    /// 3. `reinit` runs once per rank as a normal job, receiving the
    ///    rank's brand-new [`Comm`] and whether the rank `was_dead` (its
    ///    state is gone and must be restored from checkpoints) or survived
    ///    (state intact, but any structure embedding the old comm must be
    ///    rebuilt around the new one);
    /// 4. aliveness flags are re-armed and the poison flag cleared.
    ///
    /// `reinit` must install the comm (via [`RankContext::put_comm`] or
    /// inside [`RankContext::state`]) and must **not** communicate: the
    /// new mesh is only guaranteed consistent after every rank has dropped
    /// its old communicator, which is certain only once all reinit jobs
    /// completed (survivors dropping old comms momentarily re-clears their
    /// shared aliveness flags — step 4 is what settles them).
    pub fn respawn<F>(&mut self, reinit: F) -> Vec<usize>
    where
        F: Fn(RankContext<'_>, Comm, bool) + Send + Sync,
    {
        let dead = self.dead_ranks();
        if dead.is_empty() {
            return dead;
        }
        for &r in &dead {
            let (tx, rx) = mpsc::channel::<Job>();
            self.mailboxes[r] = tx; // old sender drops: old worker exits
            let fresh = spawn_rank_worker(r, self.size, self.labels[r], None, rx);
            let old = std::mem::replace(&mut self.workers[r], fresh);
            let _ = old.join();
        }
        let comms = self.spec.build_comms(&self.stats, &self.alive);
        let handoff: Vec<std::sync::Mutex<Option<Comm>>> = comms
            .into_iter()
            .map(|c| std::sync::Mutex::new(Some(c)))
            .collect();
        let was_dead: Vec<bool> = (0..self.size).map(|r| dead.contains(&r)).collect();
        // A respawning world is by definition recovering from a failure;
        // lift the poison so the reinit job may run.
        self.poisoned.store(false, Ordering::Release);
        let gen = self.alloc_generations(1);
        let results = self.run_collect(gen, |ctx| {
            let rank = ctx.rank();
            let comm = handoff[rank]
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .expect("each rank takes its fresh comm exactly once");
            reinit(ctx, comm, was_dead[rank]);
        });
        // Survivors dropped their previous-mesh comms inside reinit, which
        // re-cleared their flags; every old communicator is gone now, so
        // the whole world is alive again.
        for flag in self.alive.iter() {
            flag.store(true, Ordering::Release);
        }
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for r in results {
            if let Err(e) = r {
                self.poisoned.store(true, Ordering::Release);
                first_panic.get_or_insert(e);
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        dead
    }

    /// Cumulative per-rank traffic snapshots since the world was spawned.
    /// Per-job deltas are the difference of two snapshots.
    pub fn traffic(&self) -> Vec<TrafficReport> {
        self.stats.iter().map(|s| s.report()).collect()
    }
}

impl Drop for PersistentWorld {
    fn drop(&mut self) {
        // Disconnect the mailboxes: workers fall out of their receive
        // loops, drop their slots (comm + state) and exit.
        self.mailboxes.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_ordered_by_rank() {
        let out = World::new(6).run(|c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn stats_are_collected_per_rank() {
        let (_, traffic) = World::new(3).run_with_stats(|mut c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1.0, 2.0, 3.0]);
            } else if c.rank() == 1 {
                let _ = c.recv(0, 0);
            }
            c.barrier();
        });
        // Payload bytes + barrier messages (which are empty).
        assert_eq!(traffic[0].bytes_sent, 24);
        // Rank 1 received the payload message plus barrier messages.
        assert!(traffic[1].msgs_received >= 1);
        // No halo machinery ran: resilience counters stay zero.
        assert!(!traffic.iter().any(|t| t.degraded()));
    }

    #[test]
    fn fault_plan_drops_selected_edge() {
        let plan = FaultPlan::drop_edge(0, 1);
        let out = World::new(2).with_fault_plan(plan).run(|mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0]);
                true
            } else {
                c.recv_timeout(0, 5, Duration::from_millis(30)).is_err()
            }
        });
        assert!(out[1], "dropped message should time out");
    }

    #[test]
    fn fault_plan_spares_collectives() {
        // Dropping everything 0→1 must not wedge the barrier.
        let plan = FaultPlan::new(|_, _, _| FaultAction::Drop);
        World::new(4).with_fault_plan(plan).run(|mut c| {
            c.barrier();
            let v = c.allreduce_sum(&[1.0]);
            assert_eq!(v, vec![4.0]);
        });
    }

    #[test]
    fn seeded_loss_is_deterministic_across_runs() {
        // The same (seed, src, dst, tag) triples are lost every run.
        let survivors = |seed: u64| -> Vec<u32> {
            let plan = FaultPlan::loss_rate(0.5, seed);
            let out = World::new(2).with_fault_plan(plan).run(|mut c| {
                if c.rank() == 0 {
                    for tag in 0..32 {
                        c.send(1, tag, vec![tag as f64]);
                    }
                    Vec::new()
                } else {
                    (0..32)
                        .filter(|&tag| c.recv_timeout(0, tag, Duration::from_millis(40)).is_ok())
                        .collect()
                }
            });
            out[1].clone()
        };
        let a = survivors(7);
        let b = survivors(7);
        assert_eq!(a, b, "same seed ⇒ identical loss pattern");
        assert!(
            !a.is_empty() && a.len() < 32,
            "rate 0.5 loses some, not all"
        );
        let c = survivors(8);
        assert_ne!(a, c, "different seed ⇒ different loss pattern");
    }

    #[test]
    fn loss_rate_extremes_drop_nothing_or_everything() {
        for (rate, expect_ok) in [(0.0, true), (1.0, false)] {
            let plan = FaultPlan::loss_rate(rate, 1);
            let out = World::new(2).with_fault_plan(plan).run(move |mut c| {
                if c.rank() == 0 {
                    c.send(1, 2, vec![1.0]);
                    true
                } else {
                    c.recv_timeout(0, 2, Duration::from_millis(30)).is_ok()
                }
            });
            assert_eq!(out[1], expect_ok, "rate {rate}");
        }
    }

    #[test]
    fn delayed_message_arrives_late_but_intact() {
        // A delayed message is not lost — a blocking receive still gets it
        // (a receive with a timeout shorter than the delay would observe a
        // loss instead; that interplay is asserted at the halo layer where
        // the synchronization makes it deterministic).
        let plan = FaultPlan::delay_edge(0, 1, Duration::from_millis(30));
        let out = World::new(2).with_fault_plan(plan).run(|mut c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![5.0]);
                // Stay alive until the delayed message lands: a sender that
                // exits while its message is still in flight reads as a dead
                // peer to a blocking receive.
                c.barrier();
                Vec::new()
            } else {
                let got = c.recv(0, 1);
                c.barrier();
                got
            }
        });
        assert_eq!(out[1], vec![5.0]);
    }

    #[test]
    fn parse_accepts_the_cli_grammar() {
        assert!(FaultPlan::parse("drop:0-1").is_ok());
        assert!(FaultPlan::parse("loss:0.1:42").is_ok());
        assert!(FaultPlan::parse("delay:1-0:20").is_ok());
        for bad in [
            "drop:01",
            "loss:1.5:42",
            "loss:0.1",
            "delay:0-1:fast",
            "jam:0-1",
            "",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn test_timeout_parses_override_and_defaults_generously() {
        // The pure parser is tested directly — mutating the real env var
        // would race with concurrently running fault tests.
        use crate::timeout_from;
        assert_eq!(timeout_from(Some("123")), Duration::from_millis(123));
        assert_eq!(timeout_from(Some("garbage")), timeout_from(None));
        assert!(timeout_from(None) >= Duration::from_millis(1000));
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn persistent_world_reuses_comms_across_jobs() {
        let mut pw = World::new(3).spawn_persistent();
        for round in 0..4u32 {
            let out = pw.run(move |mut ctx| {
                let n = ctx.size();
                let next = (ctx.rank() + 1) % n;
                let prev = (ctx.rank() + n - 1) % n;
                let payload = (ctx.rank() as f64) + 100.0 * round as f64;
                let comm = ctx.comm();
                comm.send(next, 7, vec![payload]);
                comm.recv(prev, 7)[0]
            });
            for (rank, got) in out.iter().enumerate() {
                let prev = (rank + 2) % 3;
                assert_eq!(*got, prev as f64 + 100.0 * round as f64, "round {round}");
            }
        }
        // Traffic accumulated over all four jobs.
        let traffic = pw.traffic();
        assert!(traffic.iter().all(|t| t.msgs_sent >= 4));
    }

    #[test]
    fn persistent_state_survives_between_jobs() {
        let mut pw = World::new(2).spawn_persistent();
        for expected in 1..=3u64 {
            let out = pw.run(move |mut ctx| {
                let state = ctx.state();
                let counter = match state.as_mut().and_then(|s| s.downcast_mut::<u64>()) {
                    Some(c) => c,
                    None => {
                        *state = Some(Box::new(0u64));
                        state.as_mut().unwrap().downcast_mut::<u64>().unwrap()
                    }
                };
                *counter += 1;
                *counter
            });
            assert_eq!(out, vec![expected; 2]);
        }
    }

    #[test]
    fn generations_prevent_cross_job_message_bleed() {
        // Job 1 sends on tag 7 but rank 1 never receives it: the message
        // lingers in rank 1's inbox. Job 2 reuses the SAME tag — without
        // generation tagging, rank 1 would match job 1's stale payload.
        let mut pw = World::new(2).spawn_persistent();
        pw.run(|mut ctx| {
            if ctx.rank() == 0 {
                ctx.comm().send(1, 7, vec![1.0]);
            }
            // Barrier so the send is complete before the job ends (and so
            // rank 0's worker does not race ahead into job 2).
            ctx.comm().barrier();
        });
        let out = pw.run(|mut ctx| {
            if ctx.rank() == 0 {
                ctx.comm().send(1, 7, vec![2.0]);
                ctx.comm().barrier();
                0.0
            } else {
                let got = ctx.comm().recv(0, 7)[0];
                ctx.comm().barrier();
                got
            }
        });
        assert_eq!(out[1], 2.0, "job 2 must see its own payload, not job 1's");
    }

    #[test]
    fn stale_generation_pending_is_purged() {
        // A stale message parked in `pending` (because a same-job receive on
        // another tag drained it first) must not match after the bump.
        let mut pw = World::new(2).spawn_persistent();
        pw.run(|mut ctx| {
            if ctx.rank() == 0 {
                ctx.comm().send(1, 7, vec![1.0]);
                ctx.comm().send(1, 8, vec![8.0]);
                ctx.comm().barrier();
            } else {
                // Receiving tag 8 parks tag 7 in the pending queue.
                assert_eq!(ctx.comm().recv(0, 8), vec![8.0]);
                ctx.comm().barrier();
            }
        });
        let out = pw.run(|mut ctx| {
            if ctx.rank() == 0 {
                ctx.comm().barrier();
                true
            } else {
                let stale = ctx
                    .comm()
                    .recv_timeout(0, 7, Duration::from_millis(30))
                    .is_err();
                ctx.comm().barrier();
                stale
            }
        });
        assert!(out[1], "job 1's parked tag-7 message must not match job 2");
    }

    #[test]
    fn run_at_serves_multiple_generations_in_one_job() {
        // A batched job: K requests back-to-back inside one submission,
        // each at its own generation (the engine's batching pattern).
        let k = 3u32;
        let mut pw = World::new(2).spawn_persistent();
        let base = pw.alloc_generations(k);
        let out = pw.run_at(base, move |mut ctx| {
            let mut sum = 0.0;
            for i in 0..k {
                ctx.comm().set_generation(base + i);
                if ctx.rank() == 0 {
                    ctx.comm().send(1, 5, vec![i as f64]);
                    ctx.comm().barrier();
                } else {
                    sum += ctx.comm().recv(0, 5)[0];
                    ctx.comm().barrier();
                }
            }
            sum
        });
        assert_eq!(out[1], 3.0); // 0 + 1 + 2
    }

    #[test]
    fn persistent_rank_panic_propagates_and_poisons() {
        let mut pw = World::new(2).spawn_persistent();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pw.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "rank panic must propagate to the driver");
        let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pw.run(|_ctx| ());
        }));
        assert!(again.is_err(), "a poisoned world must refuse further jobs");
    }

    #[test]
    fn tcp_world_runs_p2p_and_collectives() {
        let n = 4;
        let out = World::new(n)
            .with_transport(TransportKind::Tcp)
            .run(move |mut comm| {
                let next = (comm.rank() + 1) % n;
                let prev = (comm.rank() + n - 1) % n;
                comm.send(next, 7, vec![comm.rank() as f64 + 0.5]);
                let got = comm.recv(prev, 7)[0];
                comm.barrier();
                let sum = comm.allreduce_sum(&[got]);
                (got, sum[0])
            });
        for (rank, (got, sum)) in out.iter().enumerate() {
            assert_eq!(*got, ((rank + n - 1) % n) as f64 + 0.5);
            assert_eq!(*sum, 0.5 + 1.5 + 2.5 + 3.5);
        }
    }

    #[test]
    fn tcp_world_seeded_loss_counters_match_channel() {
        // The same seeded plan over both transports must drop exactly the
        // same messages: fault decisions are made above the transport.
        let run = |kind: TransportKind| {
            let plan = FaultPlan::loss_rate(0.5, 0xBEEF);
            World::new(2)
                .with_transport(kind)
                .with_fault_plan(plan)
                .run_with_stats(|mut c| {
                    if c.rank() == 0 {
                        for tag in 0..16 {
                            c.send(1, tag, vec![tag as f64; 3]);
                        }
                        c.barrier();
                        Vec::new()
                    } else {
                        let survivors: Vec<u32> = (0..16)
                            .filter(|&tag| {
                                c.recv_timeout(0, tag, Duration::from_millis(200)).is_ok()
                            })
                            .collect();
                        c.barrier();
                        survivors
                    }
                })
        };
        let (out_ch, traffic_ch) = run(TransportKind::Channel);
        let (out_tcp, traffic_tcp) = run(TransportKind::Tcp);
        assert_eq!(out_ch[1], out_tcp[1], "identical seeded loss pattern");
        assert_eq!(traffic_ch, traffic_tcp, "identical traffic counters");
    }

    #[test]
    fn tcp_world_dead_peer_reads_as_disconnected() {
        use crate::comm::RecvError;
        World::new(2)
            .with_transport(TransportKind::Tcp)
            .run(|mut comm| {
                if comm.rank() == 1 {
                    let r = comm.recv_timeout(0, 3, Duration::from_secs(30));
                    assert_eq!(r, Err(RecvError::Disconnected));
                }
            });
    }

    #[test]
    fn tcp_world_message_sent_before_death_is_received() {
        // The write-side FIN must flush the in-flight frame: buffered
        // messages outlive their sender over sockets too.
        World::new(2)
            .with_transport(TransportKind::Tcp)
            .run(|mut comm| {
                if comm.rank() == 0 {
                    comm.send(1, 4, vec![7.0]);
                } else {
                    assert_eq!(comm.recv(0, 4), vec![7.0]);
                }
            });
    }

    #[test]
    fn parse_rejects_with_actionable_hints() {
        for (bad, hint) in [
            ("jam:0-1", "unknown fault directive 'jam'"),
            ("", "empty fault spec"),
            ("drop:01", "fault edge '01' is not SRC-DST"),
            ("loss:0.1", "loss takes a rate and a seed (loss:RATE:SEED)"),
            ("loss:1.5:42", "loss rate 1.5 outside [0, 1]"),
            ("delay:0-1:fast", "delay 'fast' is not milliseconds"),
        ] {
            let err = FaultPlan::parse(bad).err().expect("spec must be rejected");
            assert!(err.contains(hint), "'{bad}': got '{err}', wanted '{hint}'");
        }
    }

    #[test]
    fn parse_for_rejects_out_of_range_ranks() {
        assert!(FaultPlan::parse_for("drop:0-3", 4).is_ok());
        let err = FaultPlan::parse_for("drop:0-4", 4)
            .err()
            .expect("rank 4 must be rejected");
        assert!(
            err.contains("rank 4 does not exist in a 4-rank world (ranks are 0..=3)"),
            "got '{err}'"
        );
        let err = FaultPlan::parse_for("delay:9-0:20", 4)
            .err()
            .expect("rank 9 must be rejected");
        assert!(err.contains("rank 9 does not exist"), "got '{err}'");
    }

    #[test]
    fn respawn_revives_a_panicked_rank_and_world_serves_again() {
        let mut pw = World::new(3).spawn_persistent();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pw.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("chaos");
                }
                // Survivors must not wedge on the dead rank's barrier slot.
            });
        }));
        assert!(boom.is_err(), "the kill must propagate to the driver");
        assert_eq!(pw.dead_ranks(), vec![1], "rank 1 must read as dead");

        let revived = pw.respawn(|mut ctx, comm, was_dead| {
            assert_eq!(was_dead, ctx.rank() == 1, "only rank 1 was dead");
            let _old = ctx.take_comm(); // survivors drop their old-mesh comm
            ctx.put_comm(comm);
        });
        assert_eq!(revived, vec![1]);
        assert!(pw.dead_ranks().is_empty(), "alive flags must be re-armed");

        // The healed world serves a normal ring job again.
        let out = pw.run(|mut ctx| {
            let n = ctx.size();
            let rank = ctx.rank();
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            let comm = ctx.comm();
            comm.send(next, 9, vec![rank as f64]);
            let got = comm.recv(prev, 9)[0];
            comm.barrier();
            got
        });
        assert_eq!(out, vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn respawn_on_a_healthy_world_is_a_no_op() {
        let mut pw = World::new(2).spawn_persistent();
        pw.run(|mut ctx| ctx.comm().barrier());
        let revived = pw.respawn(|_ctx, _comm, _was_dead| {
            panic!("reinit must not run when nothing is dead");
        });
        assert!(revived.is_empty());
    }

    #[test]
    fn split_validates_partitions() {
        let groups = |gs: &[&[usize]]| gs.iter().map(|g| g.to_vec()).collect::<Vec<_>>();
        for (bad, hint) in [
            (groups(&[]), "at least one rank group"),
            (groups(&[&[0, 1], &[]]), "group 1 is empty"),
            (groups(&[&[0, 1], &[2, 4]]), "names rank 4"),
            (groups(&[&[0, 1], &[1, 2, 3]]), "rank 1 appears in more"),
            (groups(&[&[0, 1], &[3]]), "rank 2 belongs to no group"),
        ] {
            let err = World::new(4).split(&bad).err().expect("must be rejected");
            assert!(err.contains(hint), "got '{err}', wanted '{hint}'");
        }
        assert!(World::new(4).split_even(3).is_err(), "4 % 3 != 0");
        assert!(World::new(4).split_even(0).is_err());
    }

    #[test]
    fn split_sub_worlds_serve_independently_with_global_labels() {
        let subs = World::new(4).split(&[vec![0, 1], vec![2, 3]]).unwrap();
        let mut subs = subs.into_iter();
        let (mut a, mut b) = (subs.next().unwrap(), subs.next().unwrap());
        assert_eq!(a.global_ranks(), &[0, 1]);
        assert_eq!(b.global_ranks(), &[2, 3]);
        // Each sub-world runs its own 2-rank exchange; ranks are LOCAL.
        let run_pair = |pw: &mut PersistentWorld, seed: f64| {
            pw.run(move |mut ctx| {
                assert_eq!(ctx.size(), 2);
                let peer = 1 - ctx.rank();
                let payload = seed + ctx.rank() as f64;
                let comm = ctx.comm();
                comm.send(peer, 7, vec![payload]);
                comm.recv(peer, 7)[0]
            })
        };
        let out_a = run_pair(&mut a, 10.0);
        let out_b = run_pair(&mut b, 20.0);
        assert_eq!(out_a, vec![11.0, 10.0]);
        assert_eq!(out_b, vec![21.0, 20.0]);
        // Traffic is scoped per group: each sub-world saw only its own
        // two messages, and generations advanced independently from 0.
        for pw in [&a, &b] {
            let t = pw.traffic();
            assert_eq!(t.len(), 2);
            assert_eq!(t.iter().map(|r| r.msgs_sent).sum::<u64>(), 2);
        }
    }

    #[test]
    fn split_sub_worlds_run_jobs_concurrently() {
        // A barrier spanning BOTH sub-worlds' ranks can only release if
        // jobs on the two sub-worlds are in flight at the same time.
        let subs = World::new(4).split_even(2).unwrap();
        let rendezvous = Arc::new(std::sync::Barrier::new(4));
        std::thread::scope(|s| {
            let handles: Vec<_> = subs
                .into_iter()
                .map(|mut pw| {
                    let gate = rendezvous.clone();
                    s.spawn(move || {
                        pw.run(|ctx| {
                            gate.wait();
                            ctx.rank()
                        })
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![0, 1]);
            }
        });
    }

    #[test]
    fn split_sub_world_is_bitwise_a_serial_world_of_group_size() {
        // Same seeded fault plan, same job: a 2-rank sub-world (of a split
        // 4-rank world) must observe exactly the loss pattern of a plain
        // 2-rank world — fault decisions hash group-LOCAL ranks.
        let job = |mut c: Comm| {
            if c.rank() == 0 {
                for tag in 0..16 {
                    c.send(1, tag, vec![tag as f64; 3]);
                }
                c.barrier();
                Vec::new()
            } else {
                let got: Vec<u32> = (0..16)
                    .filter(|&tag| c.recv_timeout(0, tag, Duration::from_millis(200)).is_ok())
                    .collect();
                c.barrier();
                got
            }
        };
        let plan = FaultPlan::loss_rate(0.5, 0xD1CE);
        let (serial, serial_traffic) = World::new(2)
            .with_fault_plan(plan.clone())
            .run_with_stats(job);
        let mut subs = World::new(4).with_fault_plan(plan).split_even(2).unwrap();
        for pw in &mut subs {
            let out = pw.run(|mut ctx| {
                let comm = ctx.take_comm().expect("fresh sub-world comm");
                job(comm)
            });
            assert_eq!(out[1], serial[1], "sub-world loss pattern == serial");
            let traffic = pw.traffic();
            assert_eq!(traffic, serial_traffic, "identical traffic counters");
        }
    }

    #[test]
    fn split_works_over_tcp() {
        let subs = World::new(4)
            .with_transport(TransportKind::Tcp)
            .split_even(2)
            .unwrap();
        for mut pw in subs {
            let out = pw.run(|mut ctx| {
                let peer = 1 - ctx.rank();
                let rank = ctx.rank();
                let comm = ctx.comm();
                comm.send(peer, 3, vec![rank as f64]);
                let got = comm.recv(peer, 3)[0];
                comm.barrier();
                got
            });
            assert_eq!(out, vec![1.0, 0.0]);
        }
    }

    #[test]
    fn split_sub_world_respawns_after_a_rank_death() {
        // Self-healing composes with splitting: a sub-world heals itself
        // without disturbing its sibling.
        let subs = World::new(4).split_even(2).unwrap();
        let mut subs = subs.into_iter();
        let (mut a, mut b) = (subs.next().unwrap(), subs.next().unwrap());
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("chaos");
                }
            });
        }));
        assert!(boom.is_err());
        assert_eq!(a.dead_ranks(), vec![1]);
        assert!(b.dead_ranks().is_empty(), "sibling untouched by the death");
        let revived = a.respawn(|mut ctx, comm, _was_dead| {
            let _old = ctx.take_comm();
            ctx.put_comm(comm);
        });
        assert_eq!(revived, vec![1]);
        let out = a.run(|mut ctx| {
            let peer = 1 - ctx.rank();
            let rank = ctx.rank();
            let comm = ctx.comm();
            comm.send(peer, 9, vec![rank as f64]);
            comm.recv(peer, 9)[0]
        });
        assert_eq!(out, vec![1.0, 0.0]);
        // The sibling still serves.
        let out = b.run(|ctx| ctx.rank());
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn fault_plan_applies_to_persistent_jobs() {
        let mut pw = World::new(2)
            .with_fault_plan(FaultPlan::drop_edge(0, 1))
            .spawn_persistent();
        for _ in 0..2 {
            let out = pw.run(|mut ctx| {
                if ctx.rank() == 0 {
                    ctx.comm().send(1, 5, vec![1.0]);
                    true
                } else {
                    ctx.comm()
                        .recv_timeout(0, 5, Duration::from_millis(30))
                        .is_err()
                }
            });
            assert!(out[1], "dropped message should time out in every job");
        }
    }
}
