//! World construction: spawn ranks, wire channels, collect results.

use crate::comm::{Comm, CommStats, FaultFn, Message, Tag, TrafficReport};
use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// What the fault plan does to a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the sender still counts it as sent).
    Drop,
    /// Deliver after sitting in flight for the given duration — a slow
    /// link. A delay longer than the receiver's timeout is observed as a
    /// loss by that receive (the message still arrives and lingers in the
    /// inbox afterwards, exactly like a late datagram).
    Delay(Duration),
}

/// A deterministic fault-injection plan: maps message edges to actions.
///
/// Collective-internal tags (`0xFFFF_0000` and above) are never subjected
/// to faults — dropping a barrier message would wedge the whole world and
/// test nothing interesting.
#[derive(Clone)]
pub struct FaultPlan {
    f: Arc<dyn Fn(usize, usize, Tag) -> FaultAction + Send + Sync>,
}

impl FaultPlan {
    /// Builds a plan from a `(src, dst, tag) → action` function.
    pub fn new(f: impl Fn(usize, usize, Tag) -> FaultAction + Send + Sync + 'static) -> Self {
        Self { f: Arc::new(f) }
    }

    /// Drops every message from `src` to `dst` (any user tag).
    pub fn drop_edge(src: usize, dst: usize) -> Self {
        Self::new(move |s, d, _| {
            if s == src && d == dst {
                FaultAction::Drop
            } else {
                FaultAction::Deliver
            }
        })
    }

    /// Drops each user message independently with probability `rate`,
    /// decided by a pure hash of `(seed, src, dst, tag)` — no shared RNG
    /// state, so the SAME messages are lost on every run regardless of
    /// thread scheduling. That determinism is what makes degraded rollouts
    /// reproducible and testable.
    ///
    /// # Panics
    /// If `rate` is outside `[0, 1]`.
    pub fn loss_rate(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "FaultPlan::loss_rate: rate {rate} outside [0, 1]"
        );
        Self::new(move |s, d, t| {
            if edge_uniform(seed, s, d, t) < rate {
                FaultAction::Drop
            } else {
                FaultAction::Deliver
            }
        })
    }

    /// Delays every message from `src` to `dst` by `delay`.
    pub fn delay_edge(src: usize, dst: usize, delay: Duration) -> Self {
        Self::new(move |s, d, _| {
            if s == src && d == dst {
                FaultAction::Delay(delay)
            } else {
                FaultAction::Deliver
            }
        })
    }

    /// Parses the CLI fault grammar:
    ///
    /// * `drop:SRC-DST` — drop every message on one edge;
    /// * `loss:RATE:SEED` — seeded per-message loss (`RATE` in `[0, 1]`);
    /// * `delay:SRC-DST:MS` — delay one edge by `MS` milliseconds.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parse_edge = |edge: &str| -> Result<(usize, usize), String> {
            let (s, d) = edge
                .split_once('-')
                .ok_or_else(|| format!("fault edge '{edge}' is not SRC-DST"))?;
            let s = s
                .parse()
                .map_err(|_| format!("fault edge src '{s}' is not a rank"))?;
            let d = d
                .parse()
                .map_err(|_| format!("fault edge dst '{d}' is not a rank"))?;
            Ok((s, d))
        };
        match spec.split(':').collect::<Vec<_>>().as_slice() {
            ["drop", edge] => {
                let (s, d) = parse_edge(edge)?;
                Ok(Self::drop_edge(s, d))
            }
            ["loss", rate, seed] => {
                let rate: f64 = rate
                    .parse()
                    .map_err(|_| format!("loss rate '{rate}' is not a number"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("loss rate {rate} outside [0, 1]"));
                }
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("loss seed '{seed}' is not an integer"))?;
                Ok(Self::loss_rate(rate, seed))
            }
            ["delay", edge, ms] => {
                let (s, d) = parse_edge(edge)?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("delay '{ms}' is not milliseconds"))?;
                Ok(Self::delay_edge(s, d, Duration::from_millis(ms)))
            }
            _ => Err(format!(
                "unknown fault spec '{spec}' (expected drop:SRC-DST, loss:RATE:SEED \
                 or delay:SRC-DST:MS)"
            )),
        }
    }
}

/// One round of the splitmix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `[0, 1)` as a pure function of the message edge.
fn edge_uniform(seed: u64, src: usize, dst: usize, tag: Tag) -> f64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for v in [src as u64, dst as u64, tag as u64] {
        h = splitmix64(h ^ v);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A fixed-size collection of ranks executing one SPMD closure.
pub struct World {
    size: usize,
    fault_plan: Option<FaultPlan>,
}

impl World {
    /// A world with `size` ranks.
    ///
    /// # Panics
    /// If `size` is 0.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "World: need at least one rank");
        Self {
            size,
            fault_plan: None,
        }
    }

    /// Attaches a fault-injection plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f` once per rank on its own OS thread and returns the per-rank
    /// results ordered by rank. Panics in any rank propagate (after all
    /// other ranks have been joined or have panicked themselves).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        self.run_with_stats(f).0
    }

    /// Runs and additionally returns the per-rank [`TrafficReport`]s
    /// observed during the run.
    pub fn run_with_stats<T, F>(&self, f: F) -> (Vec<T>, Vec<TrafficReport>)
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let n = self.size;
        let stats: Arc<Vec<CommStats>> = Arc::new((0..n).map(|_| CommStats::default()).collect());
        let fault_fn: Option<Arc<FaultFn>> = self.fault_plan.as_ref().map(|p| {
            let pf = p.f.clone();
            Arc::new(move |s: usize, d: usize, t: Tag| {
                if t >= 0xFFFF_0000 {
                    FaultAction::Deliver // collectives are exempt
                } else {
                    pf(s, d, t)
                }
            }) as Arc<FaultFn>
        });

        // One inbox per rank; every rank holds a sender clone to every
        // OTHER inbox (no self-sender — self-sends are forbidden, and the
        // gap is what lets an inbox disconnect once all peers are gone, so
        // a dead peer is distinguishable from a lost message).
        let (senders, inboxes): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded::<Message>()).unzip();
        // One aliveness flag per rank, cleared when its Comm drops (normal
        // completion or panic-unwind alike): "this rank will never send
        // again", the signal receivers use to classify a wait as
        // `Disconnected` in worlds of any size.
        let alive: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(true)).collect());

        let comms: Vec<Comm> = inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                let peer_senders: Vec<Option<Sender<Message>>> = senders
                    .iter()
                    .enumerate()
                    .map(|(r, s)| if r == rank { None } else { Some(s.clone()) })
                    .collect();
                Comm::new(
                    rank,
                    n,
                    peer_senders,
                    inbox,
                    stats.clone(),
                    alive.clone(),
                    fault_fn.clone(),
                )
            })
            .collect();
        // Drop the original senders so channels close when all ranks finish.
        drop(senders);

        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        // Propagate the driving thread's trace session (if any) into each
        // rank thread, so spans recorded inside `f` land on that rank's
        // timeline track. `adopt`/`leave` are no-ops when tracing is off.
        let trace_session = pde_trace::session();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    let rank = comm.rank() as u32;
                    scope.spawn(move |_| {
                        pde_trace::adopt(trace_session, rank);
                        let out = f(comm);
                        pde_trace::leave();
                        out
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        })
        .expect("World::run: a rank panicked");
        let traffic = stats.iter().map(|s| s.report()).collect();
        (
            results
                .into_iter()
                .map(|r| r.expect("rank produced no result"))
                .collect(),
            traffic,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_ordered_by_rank() {
        let out = World::new(6).run(|c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn stats_are_collected_per_rank() {
        let (_, traffic) = World::new(3).run_with_stats(|mut c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1.0, 2.0, 3.0]);
            } else if c.rank() == 1 {
                let _ = c.recv(0, 0);
            }
            c.barrier();
        });
        // Payload bytes + barrier messages (which are empty).
        assert_eq!(traffic[0].bytes_sent, 24);
        // Rank 1 received the payload message plus barrier messages.
        assert!(traffic[1].msgs_received >= 1);
        // No halo machinery ran: resilience counters stay zero.
        assert!(!traffic.iter().any(|t| t.degraded()));
    }

    #[test]
    fn fault_plan_drops_selected_edge() {
        let plan = FaultPlan::drop_edge(0, 1);
        let out = World::new(2).with_fault_plan(plan).run(|mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0]);
                true
            } else {
                c.recv_timeout(0, 5, Duration::from_millis(30)).is_err()
            }
        });
        assert!(out[1], "dropped message should time out");
    }

    #[test]
    fn fault_plan_spares_collectives() {
        // Dropping everything 0→1 must not wedge the barrier.
        let plan = FaultPlan::new(|_, _, _| FaultAction::Drop);
        World::new(4).with_fault_plan(plan).run(|mut c| {
            c.barrier();
            let v = c.allreduce_sum(&[1.0]);
            assert_eq!(v, vec![4.0]);
        });
    }

    #[test]
    fn seeded_loss_is_deterministic_across_runs() {
        // The same (seed, src, dst, tag) triples are lost every run.
        let survivors = |seed: u64| -> Vec<u32> {
            let plan = FaultPlan::loss_rate(0.5, seed);
            let out = World::new(2).with_fault_plan(plan).run(|mut c| {
                if c.rank() == 0 {
                    for tag in 0..32 {
                        c.send(1, tag, vec![tag as f64]);
                    }
                    Vec::new()
                } else {
                    (0..32)
                        .filter(|&tag| c.recv_timeout(0, tag, Duration::from_millis(40)).is_ok())
                        .collect()
                }
            });
            out[1].clone()
        };
        let a = survivors(7);
        let b = survivors(7);
        assert_eq!(a, b, "same seed ⇒ identical loss pattern");
        assert!(
            !a.is_empty() && a.len() < 32,
            "rate 0.5 loses some, not all"
        );
        let c = survivors(8);
        assert_ne!(a, c, "different seed ⇒ different loss pattern");
    }

    #[test]
    fn loss_rate_extremes_drop_nothing_or_everything() {
        for (rate, expect_ok) in [(0.0, true), (1.0, false)] {
            let plan = FaultPlan::loss_rate(rate, 1);
            let out = World::new(2).with_fault_plan(plan).run(move |mut c| {
                if c.rank() == 0 {
                    c.send(1, 2, vec![1.0]);
                    true
                } else {
                    c.recv_timeout(0, 2, Duration::from_millis(30)).is_ok()
                }
            });
            assert_eq!(out[1], expect_ok, "rate {rate}");
        }
    }

    #[test]
    fn delayed_message_arrives_late_but_intact() {
        // A delayed message is not lost — a blocking receive still gets it
        // (a receive with a timeout shorter than the delay would observe a
        // loss instead; that interplay is asserted at the halo layer where
        // the synchronization makes it deterministic).
        let plan = FaultPlan::delay_edge(0, 1, Duration::from_millis(30));
        let out = World::new(2).with_fault_plan(plan).run(|mut c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![5.0]);
                // Stay alive until the delayed message lands: a sender that
                // exits while its message is still in flight reads as a dead
                // peer to a blocking receive.
                c.barrier();
                Vec::new()
            } else {
                let got = c.recv(0, 1);
                c.barrier();
                got
            }
        });
        assert_eq!(out[1], vec![5.0]);
    }

    #[test]
    fn parse_accepts_the_cli_grammar() {
        assert!(FaultPlan::parse("drop:0-1").is_ok());
        assert!(FaultPlan::parse("loss:0.1:42").is_ok());
        assert!(FaultPlan::parse("delay:1-0:20").is_ok());
        for bad in [
            "drop:01",
            "loss:1.5:42",
            "loss:0.1",
            "delay:0-1:fast",
            "jam:0-1",
            "",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn test_timeout_parses_override_and_defaults_generously() {
        // The pure parser is tested directly — mutating the real env var
        // would race with concurrently running fault tests.
        use crate::timeout_from;
        assert_eq!(timeout_from(Some("123")), Duration::from_millis(123));
        assert_eq!(timeout_from(Some("garbage")), timeout_from(None));
        assert!(timeout_from(None) >= Duration::from_millis(1000));
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
