//! World construction: spawn ranks, wire channels, collect results.

use crate::comm::{Comm, CommStats, FaultFn, Message, Tag};
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// What the fault plan does to a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the sender still counts it as sent).
    Drop,
}

/// A deterministic fault-injection plan: maps message edges to actions.
///
/// Collective-internal tags (`0xFFFF_0000` and above) are never subjected
/// to faults — dropping a barrier message would wedge the whole world and
/// test nothing interesting.
#[derive(Clone)]
pub struct FaultPlan {
    f: Arc<dyn Fn(usize, usize, Tag) -> FaultAction + Send + Sync>,
}

impl FaultPlan {
    /// Builds a plan from a `(src, dst, tag) → action` function.
    pub fn new(f: impl Fn(usize, usize, Tag) -> FaultAction + Send + Sync + 'static) -> Self {
        Self { f: Arc::new(f) }
    }

    /// Drops every message from `src` to `dst` (any user tag).
    pub fn drop_edge(src: usize, dst: usize) -> Self {
        Self::new(move |s, d, _| {
            if s == src && d == dst {
                FaultAction::Drop
            } else {
                FaultAction::Deliver
            }
        })
    }
}

/// A fixed-size collection of ranks executing one SPMD closure.
pub struct World {
    size: usize,
    fault_plan: Option<FaultPlan>,
}

impl World {
    /// A world with `size` ranks.
    ///
    /// # Panics
    /// If `size` is 0.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "World: need at least one rank");
        Self {
            size,
            fault_plan: None,
        }
    }

    /// Attaches a fault-injection plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f` once per rank on its own OS thread and returns the per-rank
    /// results ordered by rank. Panics in any rank propagate (after all
    /// other ranks have been joined or have panicked themselves).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let n = self.size;
        let stats: Arc<Vec<CommStats>> = Arc::new((0..n).map(|_| CommStats::default()).collect());
        let drop_fn: Option<Arc<FaultFn>> = self.fault_plan.as_ref().map(|p| {
            let pf = p.f.clone();
            Arc::new(move |s: usize, d: usize, t: Tag| {
                t < 0xFFFF_0000 && pf(s, d, t) == FaultAction::Drop
            }) as Arc<FaultFn>
        });

        // One inbox per rank; every rank holds a sender clone to every inbox.
        let (senders, inboxes): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded::<Message>()).unzip();

        let comms: Vec<Comm> = inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                Comm::new(
                    rank,
                    n,
                    senders.clone(),
                    inbox,
                    stats.clone(),
                    drop_fn.clone(),
                )
            })
            .collect();
        // Drop the original senders so channels close when all ranks finish.
        drop(senders);

        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    scope.spawn(move |_| f(comm))
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        })
        .expect("World::run: a rank panicked");
        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }

    /// Runs and additionally returns the per-rank `(sent, bytes_sent,
    /// received)` traffic totals observed during the run.
    pub fn run_with_stats<T, F>(&self, f: F) -> (Vec<T>, Vec<(u64, u64, u64)>)
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let n = self.size;
        let stats: Arc<Vec<CommStats>> = Arc::new((0..n).map(|_| CommStats::default()).collect());
        let stats_out = stats.clone();
        let drop_fn: Option<Arc<FaultFn>> = self.fault_plan.as_ref().map(|p| {
            let pf = p.f.clone();
            Arc::new(move |s: usize, d: usize, t: Tag| {
                t < 0xFFFF_0000 && pf(s, d, t) == FaultAction::Drop
            }) as Arc<FaultFn>
        });
        let (senders, inboxes): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded::<Message>()).unzip();
        let comms: Vec<Comm> = inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                Comm::new(
                    rank,
                    n,
                    senders.clone(),
                    inbox,
                    stats.clone(),
                    drop_fn.clone(),
                )
            })
            .collect();
        drop(senders);

        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    scope.spawn(move |_| f(comm))
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        })
        .expect("World::run_with_stats: a rank panicked");
        let traffic = stats_out
            .iter()
            .map(|s| (s.sent(), s.bytes_sent(), s.received()))
            .collect();
        (
            results
                .into_iter()
                .map(|r| r.expect("rank produced no result"))
                .collect(),
            traffic,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn results_ordered_by_rank() {
        let out = World::new(6).run(|c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn stats_are_collected_per_rank() {
        let (_, traffic) = World::new(3).run_with_stats(|mut c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1.0, 2.0, 3.0]);
            } else if c.rank() == 1 {
                let _ = c.recv(0, 0);
            }
            c.barrier();
        });
        assert_eq!(traffic[0].1, 24 + barrier_bytes()); // payload + barrier empties
                                                        // Rank 1 received the payload message plus barrier messages.
        assert!(traffic[1].2 >= 1);
    }

    fn barrier_bytes() -> u64 {
        0 // barrier messages are empty
    }

    #[test]
    fn fault_plan_drops_selected_edge() {
        let plan = FaultPlan::drop_edge(0, 1);
        let out = World::new(2).with_fault_plan(plan).run(|mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0]);
                true
            } else {
                c.recv_timeout(0, 5, Duration::from_millis(30)).is_err()
            }
        });
        assert!(out[1], "dropped message should time out");
    }

    #[test]
    fn fault_plan_spares_collectives() {
        // Dropping everything 0→1 must not wedge the barrier.
        let plan = FaultPlan::new(|_, _, _| FaultAction::Drop);
        World::new(4).with_fault_plan(plan).run(|mut c| {
            c.barrier();
            let v = c.allreduce_sum(&[1.0]);
            assert_eq!(v, vec![4.0]);
        });
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
