//! The transport boundary: how framed [`Message`]s move between ranks.
//!
//! Everything *protocol* — tag matching, generation purging, fault
//! injection, traffic counters, halo policies — lives above this trait in
//! [`crate::Comm`] and is shared verbatim by every implementation.
//! Everything *mechanism* — channels, sockets, liveness signaling — lives
//! below it:
//!
//! * [`ChannelTransport`] — the original in-process channel mesh (default;
//!   bitwise-unchanged behavior).
//! * [`crate::TcpTransport`] — length-prefixed frames over `std::net`
//!   sockets, so ranks can live in separate OS processes (or machines).
//!
//! The contract mirrors what the channel mesh always guaranteed, because
//! the dead-peer/lost-message distinction depends on it:
//!
//! 1. **Flush-before-death.** Once [`Transport::peer_alive`] returns
//!    `false` for a rank, every message that rank ever sent is already
//!    observable through [`Transport::try_recv`] — so one non-blocking
//!    drain after observing death is guaranteed to find any matching
//!    message, and only then is `Disconnected` the truth.
//! 2. **Closed = all peers gone.** [`Poll::Closed`] means no peer can ever
//!    deliver again (every channel sender dropped / every socket at EOF).
//! 3. **Send to the dead is a no-op.** Delivering to a rank that already
//!    shut down silently discards the message; death is surfaced on the
//!    *receive* side.

use crate::comm::Message;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Outcome of one receive attempt against a transport's inbox.
#[derive(Debug)]
pub enum Poll {
    /// A message arrived (any source/tag — the protocol layer matches it).
    Msg(Message),
    /// Nothing available within the wait.
    Empty,
    /// Every peer is gone; nothing can ever arrive again.
    Closed,
}

/// Moves framed [`Message`]s between this rank and its peers.
///
/// One instance per rank, owned by its [`crate::Comm`]. Implementations
/// must uphold the flush-before-death contract documented on the module.
pub trait Transport: Send {
    /// Enqueues `msg` for rank `dest` (eager, non-blocking; a dead or
    /// unreachable destination discards silently).
    fn deliver(&self, dest: usize, msg: Message);

    /// Enqueues `msg` for `dest` after sitting in flight for `delay` — the
    /// fault plan's slow-link action. Must not block the caller.
    fn deliver_delayed(&self, dest: usize, msg: Message, delay: Duration);

    /// Non-blocking poll of this rank's inbox.
    fn try_recv(&mut self) -> Poll;

    /// Blocking poll bounded by `wait` (returns [`Poll::Empty`] on expiry).
    fn recv_timeout(&mut self, wait: Duration) -> Poll;

    /// False once `rank` can never send again (its communicator shut down).
    /// `peer_alive(self_rank)` stays true until this side's own shutdown.
    fn peer_alive(&self, rank: usize) -> bool;

    /// Announces this rank's death to peers: after it returns, peers may
    /// observe `peer_alive == false` and must already be able to drain
    /// every message this rank sent. Called once, from [`crate::Comm`]'s
    /// `Drop`; must be idempotent.
    fn shutdown(&mut self);
}

/// The in-process transport: one unbounded channel per rank, every rank
/// holding a sender clone to every *other* rank's inbox.
///
/// This is the original hard-wired `Comm` mechanism moved below the trait
/// unchanged: same channel topology, same aliveness flags, same memory
/// orderings — existing worlds behave bitwise-identically.
pub struct ChannelTransport {
    rank: usize,
    /// `None` at this rank's own index: the gap is what lets an inbox
    /// disconnect once all *peers* dropped their handles, making a dead
    /// peer distinguishable from a lost message.
    senders: Vec<Option<Sender<Message>>>,
    inbox: Receiver<Message>,
    /// One flag per rank, shared across the world; cleared by that rank's
    /// shutdown (normal completion and panic-unwind alike).
    alive: Arc<Vec<AtomicBool>>,
}

impl ChannelTransport {
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Option<Sender<Message>>>,
        inbox: Receiver<Message>,
        alive: Arc<Vec<AtomicBool>>,
    ) -> Self {
        Self {
            rank,
            senders,
            inbox,
            alive,
        }
    }

    fn sender(&self, dest: usize) -> &Sender<Message> {
        self.senders[dest].as_ref().expect("non-self sender")
    }
}

impl Transport for ChannelTransport {
    fn deliver(&self, dest: usize, msg: Message) {
        // Sending to a rank whose thread already exited is a no-op: the
        // peer can never read the message anyway, and the death is
        // surfaced on the *receive* side as `Disconnected`.
        let _ = self.sender(dest).send(msg);
    }

    fn deliver_delayed(&self, dest: usize, msg: Message, delay: Duration) {
        let tx = self.sender(dest).clone();
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            let _ = tx.send(msg);
        });
    }

    fn try_recv(&mut self) -> Poll {
        match self.inbox.try_recv() {
            Ok(msg) => Poll::Msg(msg),
            Err(TryRecvError::Empty) => Poll::Empty,
            Err(TryRecvError::Disconnected) => Poll::Closed,
        }
    }

    fn recv_timeout(&mut self, wait: Duration) -> Poll {
        match self.inbox.recv_timeout(wait) {
            Ok(msg) => Poll::Msg(msg),
            Err(RecvTimeoutError::Timeout) => Poll::Empty,
            Err(RecvTimeoutError::Disconnected) => Poll::Closed,
        }
    }

    fn peer_alive(&self, rank: usize) -> bool {
        // `Acquire` pairs with the `Release` store in `shutdown`: every
        // send the peer made is visible (enqueued) before the flag reads
        // false, so a post-observation drain misses nothing.
        self.alive[rank].load(Ordering::Acquire)
    }

    fn shutdown(&mut self) {
        self.alive[self.rank].store(false, Ordering::Release);
    }
}
