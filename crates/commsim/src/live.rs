//! Live-metric handles for the communication layer.
//!
//! Each accessor registers its metric on first call (lock + allocation,
//! once per process) and caches the `&'static` handle in a `OnceLock`, so
//! every later call — the hot path — is one atomic load plus the metric's
//! own relaxed `fetch_add`s. Zero allocations after registration, which is
//! what lets `Comm::send`/`recv` stay on the zero-alloc request path.

use pde_telemetry::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

macro_rules! live_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<&'static Counter> = OnceLock::new();
            C.get_or_init(|| pde_telemetry::counter($metric, $help))
        }
    };
}

live_counter!(
    sends,
    "pdeml_comm_sends_total",
    "Point-to-point messages sent, per rank"
);
live_counter!(
    send_bytes,
    "pdeml_comm_send_bytes_total",
    "Payload bytes sent (8 per f64 value), per rank"
);
live_counter!(
    recvs,
    "pdeml_comm_recvs_total",
    "Point-to-point messages matched by a receive, per rank"
);
live_counter!(
    barriers,
    "pdeml_comm_barriers_total",
    "Barrier entries, per rank"
);
live_counter!(
    halos_lost,
    "pdeml_halos_lost_total",
    "Halo receives that timed out (strip presumed lost), per rank"
);
live_counter!(
    halo_recv_attempts,
    "pdeml_halo_recv_attempts_total",
    "Timed halo receives attempted, per rank"
);
live_counter!(
    rank_panics,
    "pdeml_rank_panics_total",
    "Rank jobs that panicked (world poisons), per rank"
);
live_counter!(
    generations,
    "pdeml_generations_total",
    "Job generations allocated on persistent worlds"
);
live_counter!(
    respawns,
    "pdeml_rank_respawns_total",
    "Dead ranks brought back by a supervisor, per rank"
);

pub(crate) fn recovery_ms() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        pde_telemetry::histogram(
            "pdeml_recovery_ms",
            "Wall-clock milliseconds from dead-rank detection to a rebuilt world",
        )
    })
}

pub(crate) fn mailbox_depth() -> &'static Gauge {
    static G: OnceLock<&'static Gauge> = OnceLock::new();
    G.get_or_init(|| {
        pde_telemetry::gauge(
            "pdeml_mailbox_depth",
            "Jobs enqueued but not yet completed, per rank mailbox",
        )
    })
}
