//! Self-healing worlds: deterministic chaos plans and the supervisor that
//! respawns dead ranks.
//!
//! A [`ChaosPlan`] is the kill-side mirror of [`crate::FaultPlan`]: a
//! deterministic schedule of rank deaths (`kill:RANK:REQUEST[:STEP]`)
//! injected by the serving engine at step boundaries. Each event fires
//! **exactly once** — after the supervisor heals the world, the retried
//! request runs clean, which is what makes post-recovery rollouts
//! bitwise-comparable to a never-killed world.
//!
//! [`Supervisor::heal`] is the membership-recovery protocol over
//! [`PersistentWorld::respawn`] (the ezmpc synchronizer's
//! Start/Next/Abort epoch handshake is the reference shape): detect the
//! dead ranks, rebuild the mesh under a fresh generation epoch, hand every
//! rank its new communicator, and time the whole gap onto the
//! `pdeml_rank_respawns_total` / `pdeml_recovery_ms` series.

use crate::comm::Comm;
use crate::world::{PersistentWorld, RankContext};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One scheduled rank death.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// The rank that dies.
    pub rank: usize,
    /// The request (serving epoch) during which it dies.
    pub request: usize,
    /// The rollout step within that request (0 = before the first step).
    pub step: usize,
}

struct ChaosEvent {
    spec: KillSpec,
    fired: AtomicBool,
}

/// A deterministic kill schedule. Cloning shares the fired-state, so a
/// plan distributed across many rank threads still fires each event
/// exactly once no matter which thread asks first.
#[derive(Clone)]
pub struct ChaosPlan {
    events: Arc<Vec<ChaosEvent>>,
}

impl ChaosPlan {
    /// A plan firing each of `kills` once.
    pub fn new(kills: Vec<KillSpec>) -> Self {
        Self {
            events: Arc::new(
                kills
                    .into_iter()
                    .map(|spec| ChaosEvent {
                        spec,
                        fired: AtomicBool::new(false),
                    })
                    .collect(),
            ),
        }
    }

    /// Parses the CLI chaos grammar: comma-separated
    /// `kill:RANK:REQUEST[:STEP]` events (STEP defaults to 0 — death at
    /// the top of the request).
    pub fn parse(spec: &str) -> Result<Self, String> {
        Self::parse_impl(spec, None)
    }

    /// Like [`ChaosPlan::parse`], additionally rejecting ranks outside
    /// `world_size` with a hint — a kill aimed at a rank that does not
    /// exist would otherwise silently never fire.
    pub fn parse_for(spec: &str, world_size: usize) -> Result<Self, String> {
        Self::parse_impl(spec, Some(world_size))
    }

    fn parse_impl(spec: &str, world_size: Option<usize>) -> Result<Self, String> {
        let mut kills = Vec::new();
        for part in spec.split(',') {
            let fields: Vec<&str> = part.split(':').collect();
            let (rank, request, step) = match fields.as_slice() {
                ["kill", rank, request] => (*rank, *request, "0"),
                ["kill", rank, request, step] => (*rank, *request, *step),
                ["kill", ..] => {
                    return Err(format!(
                        "chaos spec '{part}': kill takes kill:RANK:REQUEST or \
                         kill:RANK:REQUEST:STEP"
                    ))
                }
                [other, ..] if !other.is_empty() => {
                    return Err(format!(
                        "unknown chaos directive '{other}' (known: kill; e.g. kill:2:1 \
                         kills rank 2 during request 1)"
                    ))
                }
                _ => return Err("empty chaos spec (expected kill:RANK:REQUEST[:STEP])".to_string()),
            };
            let rank: usize = rank
                .parse()
                .map_err(|_| format!("chaos kill rank '{rank}' is not a rank"))?;
            let request: usize = request
                .parse()
                .map_err(|_| format!("chaos kill request '{request}' is not a request index"))?;
            let step: usize = step
                .parse()
                .map_err(|_| format!("chaos kill step '{step}' is not a step index"))?;
            if let Some(n) = world_size {
                if rank >= n {
                    return Err(format!(
                        "chaos kill rank {rank} does not exist in a {n}-rank world \
                         (ranks are 0..={})",
                        n - 1
                    ));
                }
            }
            kills.push(KillSpec {
                rank,
                request,
                step,
            });
        }
        Ok(Self::new(kills))
    }

    /// True exactly once for the event matching `(rank, request, step)` —
    /// the engine's per-step kill check. Compare-and-swap on the event's
    /// fired flag, so the retried (post-recovery) request sails through.
    pub fn should_kill(&self, rank: usize, request: usize, step: usize) -> bool {
        self.events.iter().any(|ev| {
            ev.spec.rank == rank
                && ev.spec.request == request
                && ev.spec.step == step
                && !ev.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// The scheduled kills (fired or not), for drivers that need to know
    /// which ranks are fated — e.g. the CLI launcher deciding which child
    /// process gets a `--kill-at` flag.
    pub fn kills(&self) -> Vec<KillSpec> {
        self.events.iter().map(|ev| ev.spec).collect()
    }
}

/// What one healing pass did.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Ranks that were dead and came back.
    pub respawned: Vec<usize>,
    /// Wall-clock time from detection to a fully rebuilt mesh.
    pub elapsed: Duration,
}

/// Detects dead ranks on a [`PersistentWorld`] and brings them back.
pub struct Supervisor;

impl Supervisor {
    /// One healing pass: if any rank is dead, respawn it via
    /// [`PersistentWorld::respawn`] (the caller's `reinit` restores state
    /// — survivors re-wrap the fresh comm, the formerly dead rebuild from
    /// checkpoints), record the recovery on the metrics series and report
    /// it. `None` when every rank is alive.
    pub fn heal<F>(world: &mut PersistentWorld, reinit: F) -> Option<RecoveryReport>
    where
        F: Fn(RankContext<'_>, Comm, bool) + Send + Sync,
    {
        if world.dead_ranks().is_empty() {
            return None;
        }
        let start = Instant::now();
        let respawned = world.respawn(reinit);
        let elapsed = start.elapsed();
        record_recovery(&respawned, elapsed);
        Some(RecoveryReport { respawned, elapsed })
    }
}

/// Records one completed recovery on the live series: one
/// `pdeml_rank_respawns_total` increment per rank (on that rank's shard,
/// so `/metrics` shows `{rank="N"}`) and the gap duration on the
/// `pdeml_recovery_ms` histogram. Shared by [`Supervisor::heal`] and the
/// multi-process driver (which respawns OS processes instead of threads
/// but reports identically).
pub fn record_recovery(respawned: &[usize], elapsed: Duration) {
    for &rank in respawned {
        crate::live::respawns().inc(rank);
    }
    crate::live::recovery_ms().record(elapsed.as_millis() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_kill_grammar() {
        let plan = ChaosPlan::parse("kill:2:1").unwrap();
        assert_eq!(
            plan.kills(),
            vec![KillSpec {
                rank: 2,
                request: 1,
                step: 0
            }]
        );
        let plan = ChaosPlan::parse("kill:0:3:5,kill:1:4").unwrap();
        assert_eq!(plan.kills().len(), 2);
        assert_eq!(plan.kills()[0].step, 5);
    }

    #[test]
    fn parse_rejects_bad_specs_with_hints() {
        for (bad, hint) in [
            ("boom:1:2", "unknown chaos directive 'boom'"),
            ("kill:1", "kill takes kill:RANK:REQUEST"),
            ("kill:x:1", "'x' is not a rank"),
            ("kill:1:y", "'y' is not a request index"),
            ("kill:1:2:z", "'z' is not a step index"),
            ("", "empty chaos spec"),
        ] {
            let err = ChaosPlan::parse(bad).err().expect("spec must be rejected");
            assert!(err.contains(hint), "'{bad}': got '{err}', wanted '{hint}'");
        }
    }

    #[test]
    fn parse_for_rejects_out_of_range_ranks() {
        assert!(ChaosPlan::parse_for("kill:3:0", 4).is_ok());
        let err = ChaosPlan::parse_for("kill:4:0", 4)
            .err()
            .expect("rank 4 must be rejected");
        assert!(
            err.contains("rank 4 does not exist in a 4-rank world (ranks are 0..=3)"),
            "got '{err}'"
        );
    }

    #[test]
    fn should_kill_fires_exactly_once_even_via_clones() {
        let plan = ChaosPlan::parse("kill:2:1:3").unwrap();
        let clone = plan.clone();
        assert!(!plan.should_kill(2, 1, 2), "wrong step");
        assert!(!plan.should_kill(1, 1, 3), "wrong rank");
        assert!(plan.should_kill(2, 1, 3), "first match fires");
        assert!(
            !clone.should_kill(2, 1, 3),
            "clones share fired-state: the retried request must run clean"
        );
    }
}
