//! 2-D Cartesian process topology and neighbor halo exchange.
//!
//! Mirrors `MPI_Cart_create` / `MPI_Cart_shift`: ranks are laid out
//! row-major on a `py × px` grid, each knows its four neighbors, and
//! [`CartComm::exchange`] performs the fully point-to-point boundary-data
//! swap the paper's inference phase relies on (§III).

use crate::comm::{Comm, RecvError, Tag};
use std::time::Duration;

/// The four lattice directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// −x neighbor (smaller column index).
    Left,
    /// +x neighbor.
    Right,
    /// −y neighbor (smaller row index).
    Down,
    /// +y neighbor.
    Up,
}

impl Direction {
    /// All four directions, in a fixed order.
    pub const ALL: [Direction; 4] = [
        Direction::Left,
        Direction::Right,
        Direction::Down,
        Direction::Up,
    ];

    /// The direction a message sent this way arrives *from*.
    pub fn opposite(&self) -> Direction {
        match self {
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
            Direction::Down => Direction::Up,
            Direction::Up => Direction::Down,
        }
    }

    /// Position of this direction in [`Direction::ALL`]-indexed arrays.
    pub fn index(&self) -> usize {
        match self {
            Direction::Left => 0,
            Direction::Right => 1,
            Direction::Down => 2,
            Direction::Up => 3,
        }
    }
}

/// Outcome classification of one directional halo receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaloStatus {
    /// The strip arrived.
    Ok,
    /// The receive timed out — the message is presumed lost; the peer is
    /// (as far as we can tell) still alive. Recoverable by policy.
    Lost,
    /// The peer's thread is gone and nothing matching can ever arrive.
    /// NOT recoverable: a dead peer means its whole subdomain is missing,
    /// not one boundary strip, so every halo policy must treat this as
    /// fatal rather than mask it with fallback data.
    PeerDead,
}

/// One directional halo receive: the strip, or why it is missing.
#[derive(Clone, Debug, PartialEq)]
pub enum HaloRecv {
    /// The strip arrived.
    Ok(Vec<f64>),
    /// Timed out — presumed lost (recoverable by policy).
    Lost,
    /// The peer is dead (fatal under every policy).
    PeerDead,
}

impl HaloRecv {
    /// The status classification without the payload.
    pub fn status(&self) -> HaloStatus {
        match self {
            HaloRecv::Ok(_) => HaloStatus::Ok,
            HaloRecv::Lost => HaloStatus::Lost,
            HaloRecv::PeerDead => HaloStatus::PeerDead,
        }
    }

    /// The payload, if the strip arrived.
    pub fn into_data(self) -> Option<Vec<f64>> {
        match self {
            HaloRecv::Ok(buf) => Some(buf),
            _ => None,
        }
    }
}

/// A communicator wrapped with 2-D Cartesian coordinates.
pub struct CartComm {
    comm: Comm,
    px: usize,
    py: usize,
    periodic: bool,
}

impl CartComm {
    /// Wraps `comm` in a `py × px` row-major topology.
    ///
    /// # Panics
    /// If `px * py != comm.size()`.
    pub fn new(comm: Comm, py: usize, px: usize, periodic: bool) -> Self {
        assert_eq!(
            px * py,
            comm.size(),
            "CartComm: {py}x{px} grid != {} ranks",
            comm.size()
        );
        Self {
            comm,
            px,
            py,
            periodic,
        }
    }

    /// Borrow of the underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Mutable borrow of the underlying communicator (for collectives).
    pub fn comm_mut(&mut self) -> &mut Comm {
        &mut self.comm
    }

    /// Process-grid width (ranks along x).
    pub fn px(&self) -> usize {
        self.px
    }

    /// Process-grid height (ranks along y).
    pub fn py(&self) -> usize {
        self.py
    }

    /// This rank's `(row, col)` coordinates.
    pub fn coords(&self) -> (usize, usize) {
        let r = self.comm.rank();
        (r / self.px, r % self.px)
    }

    /// Rank at `(row, col)`.
    pub fn rank_at(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.py && col < self.px,
            "rank_at: ({row},{col}) outside {}x{}",
            self.py,
            self.px
        );
        row * self.px + col
    }

    /// The neighboring rank in `dir`, or `None` at a non-periodic edge.
    pub fn neighbor(&self, dir: Direction) -> Option<usize> {
        let (row, col) = self.coords();
        let (nr, nc) = match dir {
            Direction::Left => (row as isize, col as isize - 1),
            Direction::Right => (row as isize, col as isize + 1),
            Direction::Down => (row as isize - 1, col as isize),
            Direction::Up => (row as isize + 1, col as isize),
        };
        let wrap = |v: isize, n: usize| -> Option<usize> {
            if v >= 0 && (v as usize) < n {
                Some(v as usize)
            } else if self.periodic {
                Some(v.rem_euclid(n as isize) as usize)
            } else {
                None
            }
        };
        let row = wrap(nr, self.py)?;
        let col = wrap(nc, self.px)?;
        Some(self.rank_at(row, col))
    }

    /// Exchanges boundary buffers with all existing neighbors in one fully
    /// point-to-point round: for each direction with a neighbor, sends
    /// `outgoing[dir]` and receives that neighbor's buffer sent toward us.
    ///
    /// Returns the four incoming buffers indexed like [`Direction::ALL`]
    /// (`None` where there is no neighbor). `tag` namespaces concurrent
    /// exchanges (e.g. one per field or per time step).
    pub fn exchange(
        &mut self,
        mut outgoing: [Option<Vec<f64>>; 4],
        tag: Tag,
    ) -> [Option<Vec<f64>>; 4] {
        // Post all sends first (eager buffering ⇒ no deadlock), then recv.
        self.post_sends(&mut outgoing, tag);
        let mut incoming: [Option<Vec<f64>>; 4] = [None, None, None, None];
        for dir in Direction::ALL {
            if let Some(nb) = self.neighbor(dir) {
                incoming[dir.index()] = Some(self.comm.recv(nb, encode_tag(tag, dir)));
            }
        }
        incoming
    }

    /// Like [`CartComm::exchange`] but loss-tolerant: each directional
    /// receive gives up after `timeout` and reports its outcome as a
    /// [`HaloRecv`] instead of blocking forever (lost message) or panicking
    /// (dead peer). Directions without a neighbor stay `None`.
    ///
    /// Timed-out receives bump this rank's `halos_lost` counter. A strip
    /// that arrives *after* its receive timed out lingers in the inbox
    /// harmlessly: every exchange uses a fresh tag, so it can never be
    /// matched by a later step.
    pub fn exchange_timeout(
        &mut self,
        mut outgoing: [Option<Vec<f64>>; 4],
        tag: Tag,
        timeout: Duration,
    ) -> [Option<HaloRecv>; 4] {
        self.post_sends(&mut outgoing, tag);
        let mut incoming: [Option<HaloRecv>; 4] = [None, None, None, None];
        for dir in Direction::ALL {
            if let Some(nb) = self.neighbor(dir) {
                incoming[dir.index()] = Some(self.recv_halo(nb, encode_tag(tag, dir), timeout));
            }
        }
        incoming
    }

    /// The send half of a split-phase x-axis exchange: posts `to_left` /
    /// `to_right` without receiving. Pair with [`CartComm::recv_halo_dir`].
    ///
    /// Splitting lets a resilient protocol interpose a synchronization
    /// point between sends and timed receives, after which every
    /// *delivered* strip is already in the inbox — so a timeout can only
    /// ever fire for a message that is genuinely lost, making the
    /// classification deterministic.
    pub fn post_x_sends(
        &mut self,
        to_left: Option<Vec<f64>>,
        to_right: Option<Vec<f64>>,
        tag: Tag,
    ) {
        self.post_axis_sends(to_left, to_right, Direction::Left, Direction::Right, tag);
    }

    /// The send half of a split-phase y-axis exchange (see
    /// [`CartComm::post_x_sends`]).
    pub fn post_y_sends(&mut self, to_down: Option<Vec<f64>>, to_up: Option<Vec<f64>>, tag: Tag) {
        self.post_axis_sends(to_down, to_up, Direction::Down, Direction::Up, tag);
    }

    /// The receive half of a split-phase exchange: one timed directional
    /// receive classified as a [`HaloRecv`]; `None` when there is no
    /// neighbor in `dir`. `tag` must match the value given to the
    /// corresponding `post_*_sends` call.
    pub fn recv_halo_dir(
        &mut self,
        dir: Direction,
        tag: Tag,
        timeout: Duration,
    ) -> Option<HaloRecv> {
        self.neighbor(dir)
            .map(|nb| self.recv_halo(nb, encode_tag(tag, dir), timeout))
    }

    /// Moves each outgoing buffer (no payload clone) to its neighbor.
    fn post_sends(&mut self, outgoing: &mut [Option<Vec<f64>>; 4], tag: Tag) {
        for dir in Direction::ALL {
            if let Some(nb) = self.neighbor(dir) {
                // `take()` moves the caller's buffer out instead of cloning
                // it — the payload allocation travels through the channel.
                let buf = outgoing[dir.index()].take().unwrap_or_else(|| {
                    panic!("exchange: neighbor in {dir:?} but no outgoing buffer")
                });
                // Tag encodes the direction *from the receiver's view* so
                // concurrent opposite-direction messages can't be confused.
                self.comm.send(nb, encode_tag(tag, dir.opposite()), buf);
            }
        }
    }

    /// One timed directional receive classified as a [`HaloRecv`].
    fn recv_halo(&mut self, src: usize, tag: Tag, timeout: Duration) -> HaloRecv {
        use pde_trace::{names, Category};
        crate::live::halo_recv_attempts().inc(self.comm.rank());
        let mut span = pde_trace::span_args(Category::Comm, names::HALO_RECV, src as u64, 0);
        match self.comm.recv_timeout(src, tag, timeout) {
            Ok(buf) => {
                span.set_args(src as u64, buf.len() as u64 * 8);
                HaloRecv::Ok(buf)
            }
            Err(RecvError::Timeout) => {
                self.comm.stats().note_halo_lost();
                crate::live::halos_lost().inc(self.comm.rank());
                pde_trace::instant(Category::Comm, names::HALO_LOST, src as u64, 0);
                HaloRecv::Lost
            }
            Err(RecvError::Disconnected) => {
                pde_trace::instant(Category::Comm, names::HALO_PEER_DEAD, src as u64, 0);
                HaloRecv::PeerDead
            }
        }
    }
}

impl CartComm {
    /// One x-axis exchange round: sends `to_left`/`to_right` to the
    /// respective neighbors and returns `(from_left, from_right)`.
    ///
    /// # Panics
    /// If a buffer is supplied for a missing neighbor or vice versa (that
    /// asymmetry would deadlock the matching rank).
    pub fn exchange_x(
        &mut self,
        to_left: Option<Vec<f64>>,
        to_right: Option<Vec<f64>>,
        tag: Tag,
    ) -> (Option<Vec<f64>>, Option<Vec<f64>>) {
        self.exchange_axis(to_left, to_right, Direction::Left, Direction::Right, tag)
    }

    /// One y-axis exchange round: sends `to_down`/`to_up` and returns
    /// `(from_down, from_up)`.
    pub fn exchange_y(
        &mut self,
        to_down: Option<Vec<f64>>,
        to_up: Option<Vec<f64>>,
        tag: Tag,
    ) -> (Option<Vec<f64>>, Option<Vec<f64>>) {
        self.exchange_axis(to_down, to_up, Direction::Down, Direction::Up, tag)
    }

    /// Loss-tolerant [`CartComm::exchange_x`]: `(from_left, from_right)`
    /// as [`HaloRecv`] outcomes.
    pub fn exchange_x_timeout(
        &mut self,
        to_left: Option<Vec<f64>>,
        to_right: Option<Vec<f64>>,
        tag: Tag,
        timeout: Duration,
    ) -> (Option<HaloRecv>, Option<HaloRecv>) {
        self.exchange_axis_timeout(
            to_left,
            to_right,
            Direction::Left,
            Direction::Right,
            tag,
            timeout,
        )
    }

    /// Loss-tolerant [`CartComm::exchange_y`]: `(from_down, from_up)` as
    /// [`HaloRecv`] outcomes.
    pub fn exchange_y_timeout(
        &mut self,
        to_down: Option<Vec<f64>>,
        to_up: Option<Vec<f64>>,
        tag: Tag,
        timeout: Duration,
    ) -> (Option<HaloRecv>, Option<HaloRecv>) {
        self.exchange_axis_timeout(to_down, to_up, Direction::Down, Direction::Up, tag, timeout)
    }

    fn post_axis_sends(
        &mut self,
        to_neg: Option<Vec<f64>>,
        to_pos: Option<Vec<f64>>,
        neg: Direction,
        pos: Direction,
        tag: Tag,
    ) {
        for (dir, buf) in [(neg, &to_neg), (pos, &to_pos)] {
            assert_eq!(
                self.neighbor(dir).is_some(),
                buf.is_some(),
                "exchange_axis: buffer/neighbor mismatch in {dir:?}"
            );
        }
        // Sends first (eager buffering), then receives.
        if let (Some(nb), Some(buf)) = (self.neighbor(neg), to_neg) {
            self.comm.send(nb, encode_tag(tag, pos), buf);
        }
        if let (Some(nb), Some(buf)) = (self.neighbor(pos), to_pos) {
            self.comm.send(nb, encode_tag(tag, neg), buf);
        }
    }

    fn exchange_axis(
        &mut self,
        to_neg: Option<Vec<f64>>,
        to_pos: Option<Vec<f64>>,
        neg: Direction,
        pos: Direction,
        tag: Tag,
    ) -> (Option<Vec<f64>>, Option<Vec<f64>>) {
        self.post_axis_sends(to_neg, to_pos, neg, pos, tag);
        let from_neg = self
            .neighbor(neg)
            .map(|nb| self.comm.recv(nb, encode_tag(tag, neg)));
        let from_pos = self
            .neighbor(pos)
            .map(|nb| self.comm.recv(nb, encode_tag(tag, pos)));
        (from_neg, from_pos)
    }

    fn exchange_axis_timeout(
        &mut self,
        to_neg: Option<Vec<f64>>,
        to_pos: Option<Vec<f64>>,
        neg: Direction,
        pos: Direction,
        tag: Tag,
        timeout: Duration,
    ) -> (Option<HaloRecv>, Option<HaloRecv>) {
        self.post_axis_sends(to_neg, to_pos, neg, pos, tag);
        let from_neg = self
            .neighbor(neg)
            .map(|nb| self.recv_halo(nb, encode_tag(tag, neg), timeout));
        let from_pos = self
            .neighbor(pos)
            .map(|nb| self.recv_halo(nb, encode_tag(tag, pos), timeout));
        (from_neg, from_pos)
    }
}

fn encode_tag(base: Tag, dir: Direction) -> Tag {
    assert!(base < 0x0FFF_FFFF, "exchange: tag too large");
    (base << 2) | dir.index() as Tag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn coords_are_row_major() {
        World::new(6).run(|comm| {
            let rank = comm.rank();
            let cart = CartComm::new(comm, 2, 3, false);
            let (row, col) = cart.coords();
            assert_eq!(rank, row * 3 + col);
            assert_eq!(cart.rank_at(row, col), rank);
        });
    }

    #[test]
    fn non_periodic_edges_have_no_neighbor() {
        World::new(4).run(|comm| {
            let cart = CartComm::new(comm, 2, 2, false);
            let (row, col) = cart.coords();
            assert_eq!(cart.neighbor(Direction::Left).is_none(), col == 0);
            assert_eq!(cart.neighbor(Direction::Right).is_none(), col == 1);
            assert_eq!(cart.neighbor(Direction::Down).is_none(), row == 0);
            assert_eq!(cart.neighbor(Direction::Up).is_none(), row == 1);
        });
    }

    #[test]
    fn periodic_neighbors_wrap() {
        World::new(4).run(|comm| {
            let cart = CartComm::new(comm, 2, 2, true);
            let (row, col) = cart.coords();
            // Every direction must have a neighbor on a torus.
            for d in Direction::ALL {
                assert!(cart.neighbor(d).is_some());
            }
            // Left of column 0 wraps to column 1.
            if col == 0 {
                assert_eq!(cart.neighbor(Direction::Left), Some(cart.rank_at(row, 1)));
            }
        });
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        World::new(6).run(|comm| {
            let rank = comm.rank();
            let cart = CartComm::new(comm, 2, 3, false);
            for d in Direction::ALL {
                if let Some(nb) = cart.neighbor(d) {
                    // Check symmetry arithmetically (row-major layout).
                    let (nr, nc) = (nb / 3, nb % 3);
                    let back = match d.opposite() {
                        Direction::Left => (nr, nc.wrapping_sub(1)),
                        Direction::Right => (nr, nc + 1),
                        Direction::Down => (nr.wrapping_sub(1), nc),
                        Direction::Up => (nr + 1, nc),
                    };
                    assert_eq!(back.0 * 3 + back.1, rank);
                }
            }
        });
    }

    #[test]
    fn exchange_swaps_boundary_buffers() {
        // 1×2 grid: rank 0 | rank 1; each sends its id along the shared edge.
        let out = World::new(2).run(|comm| {
            let me = comm.rank() as f64;
            let mut cart = CartComm::new(comm, 1, 2, false);
            let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
            if cart.neighbor(Direction::Right).is_some() {
                outgoing[1] = Some(vec![me; 3]);
            }
            if cart.neighbor(Direction::Left).is_some() {
                outgoing[0] = Some(vec![me; 3]);
            }

            cart.exchange(outgoing, 1)
        });
        // Rank 0 received from its Right neighbor (rank 1).
        assert_eq!(out[0][1].as_ref().unwrap(), &vec![1.0; 3]);
        assert!(out[0][0].is_none());
        // Rank 1 received from its Left neighbor (rank 0).
        assert_eq!(out[1][0].as_ref().unwrap(), &vec![0.0; 3]);
        assert!(out[1][1].is_none());
    }

    #[test]
    fn exchange_on_2x2_torus_all_directions() {
        let out = World::new(4).run(|comm| {
            let me = comm.rank() as f64;
            let mut cart = CartComm::new(comm, 2, 2, true);
            let outgoing: [Option<Vec<f64>>; 4] = [
                Some(vec![me, 0.0]),
                Some(vec![me, 1.0]),
                Some(vec![me, 2.0]),
                Some(vec![me, 3.0]),
            ];
            let incoming = cart.exchange(outgoing, 2);
            incoming.map(|o| o.unwrap()[0] as usize)
        });
        // Rank 0 at (0,0) on a 2×2 torus: left & right neighbor both 1,
        // down & up both 2.
        assert_eq!(out[0], [1, 1, 2, 2]);
        // Rank 3 at (1,1): left/right 2, down/up 1.
        assert_eq!(out[3], [2, 2, 1, 1]);
    }

    #[test]
    fn repeated_exchanges_with_distinct_tags_do_not_cross() {
        let out = World::new(2).run(|comm| {
            let me = comm.rank() as f64;
            let mut cart = CartComm::new(comm, 1, 2, false);
            let dir = if cart.coords().1 == 0 { 1 } else { 0 };
            let mk = |v: f64| {
                let mut o: [Option<Vec<f64>>; 4] = [None, None, None, None];
                o[dir] = Some(vec![v]);
                o
            };
            let first = cart.exchange(mk(me), 10);
            let second = cart.exchange(mk(me + 100.0), 11);
            (
                first[dir].as_ref().unwrap()[0],
                second[dir].as_ref().unwrap()[0],
            )
        });
        assert_eq!(out[0], (1.0, 101.0));
        assert_eq!(out[1], (0.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "grid != ")]
    fn rejects_bad_grid_size() {
        World::new(3).run(|comm| {
            let _ = CartComm::new(comm, 2, 2, false);
        });
    }

    #[test]
    fn exchange_moves_outgoing_buffers_without_cloning() {
        // Allocation parity: the Vec a rank hands to `exchange` must be the
        // very allocation its neighbor receives. Each rank encodes its
        // buffer's own address in the payload; the receiver checks that the
        // arrived Vec still lives at that address. A clone (the old
        // behaviour) would be a different allocation and fail — the original
        // is still alive inside `outgoing` for the whole call, so the
        // allocator cannot have reused its address.
        let out = World::new(2).run(|comm| {
            let mut cart = CartComm::new(comm, 1, 2, false);
            let dir = if cart.coords().1 == 0 {
                Direction::Right
            } else {
                Direction::Left
            };
            let mut buf = vec![0.0; 64];
            buf[0] = buf.as_ptr() as usize as f64; // < 2^47 — exact in f64
            let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
            outgoing[dir.index()] = Some(buf);
            let incoming = cart.exchange(outgoing, 5);
            let got = incoming[dir.index()].as_ref().unwrap();
            got.as_ptr() as usize as f64 == got[0]
        });
        assert_eq!(out, vec![true, true], "payload was cloned, not moved");
    }

    #[test]
    fn exchange_timeout_reports_lost_and_counts_it() {
        use crate::world::FaultPlan;
        use std::time::Duration;
        let plan = FaultPlan::drop_edge(0, 1);
        let (out, traffic) = World::new(2).with_fault_plan(plan).run_with_stats(|comm| {
            let rank = comm.rank();
            let mut cart = CartComm::new(comm, 1, 2, false);
            let dir = if rank == 0 {
                Direction::Right
            } else {
                Direction::Left
            };
            let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
            outgoing[dir.index()] = Some(vec![rank as f64; 3]);
            let incoming = cart.exchange_timeout(outgoing, 1, Duration::from_millis(40));
            let status = incoming[dir.index()].as_ref().unwrap().status();
            // Keep both ranks alive until both exchanges resolve: rank 0
            // finishing early would otherwise turn rank 1's in-progress
            // timeout into PeerDead. (Collectives are fault-exempt.)
            cart.comm_mut().barrier();
            status
        });
        // The 1→0 edge is healthy; the 0→1 edge drops.
        assert_eq!(out[0], HaloStatus::Ok);
        assert_eq!(out[1], HaloStatus::Lost);
        assert_eq!(traffic[0].halos_lost, 0);
        assert_eq!(traffic[1].halos_lost, 1);
    }

    #[test]
    fn exchange_timeout_distinguishes_dead_peer_from_lost_message() {
        use crate::test_timeout;
        // Rank 0 exits without participating: rank 1 must see PeerDead —
        // not Lost — even with a generous timeout. (Rank 1's send toward
        // the dead rank is silently undeliverable; death is detected on
        // the receive side, where policy can refuse to mask it.)
        let out = World::new(2).run(|comm| {
            let rank = comm.rank();
            if rank == 0 {
                return HaloStatus::Ok; // dies immediately
            }
            let mut cart = CartComm::new(comm, 1, 2, false);
            let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
            outgoing[Direction::Left.index()] = Some(vec![1.0; 3]);
            let incoming = cart.exchange_timeout(outgoing, 2, test_timeout());
            incoming[Direction::Left.index()].as_ref().unwrap().status()
        });
        assert_eq!(out[1], HaloStatus::PeerDead);
    }
}
