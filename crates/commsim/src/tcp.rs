//! Length-prefixed TCP transport: a world's ranks as OS processes.
//!
//! `std::net` only — no async runtime, no serialization crates. One duplex
//! socket per rank pair, established by a deterministic rendezvous:
//!
//! * **Dial down, accept up.** Rank `r` dials every rank `s < r` and
//!   accepts connections from every rank `s > r`. The dependency chain
//!   points strictly downward (rank 0 only accepts, the last rank only
//!   dials), so the rendezvous cannot deadlock; dial retries absorb the
//!   window where a lower rank's process has not bound its listener yet.
//! * **Handshake.** Each side sends a 24-byte hello — magic `"PDML"`,
//!   protocol version, world size, its own rank, and the starting
//!   generation — and validates the peer's. A rank joining the wrong
//!   world, a stale binary, or a generation mismatch fails loudly here
//!   instead of corrupting frames later.
//! * **Frames.** After the handshake the socket carries only 12-byte
//!   headers (`tag`, `gen`, payload f64 count; little-endian u32) followed
//!   by the payload as little-endian f64 bytes. The source rank is implied
//!   by the connection. Bit patterns are preserved exactly, so rollouts
//!   over TCP are bitwise-identical to channel rollouts.
//!
//! Liveness mirrors the channel mesh: one reader thread per peer feeds a
//! shared inbox; on EOF/error it first finishes enqueuing everything the
//! peer sent, *then* clears that peer's aliveness flag and drops its inbox
//! sender — so `peer_alive == false` still guarantees a final drain sees
//! every message (the flush-before-death contract), and the inbox closes
//! exactly when all peers are gone. Shutdown closes only the write side
//! (`Shutdown::Write`): the FIN flushes in-flight frames, while the read
//! side keeps draining so a slower peer's writes never block.

use crate::comm::{Comm, Message};
use crate::transport::{Poll, Transport};
use crate::world::FaultPlan;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Handshake magic: `"PDML"`.
const MAGIC: [u8; 4] = *b"PDML";
/// Wire protocol version; bump on any frame/handshake layout change.
const VERSION: u32 = 1;
/// Handshake size in bytes (magic + version + world + rank + gen + reserved).
const HELLO_LEN: usize = 24;
/// Frame header size in bytes (tag + gen + payload count).
const HEADER_LEN: usize = 12;
/// Sanity cap on one frame's payload (f64 count): a corrupt or hostile
/// header must not make a reader allocate unbounded memory. 2^27 values is
/// a 1 GiB strip — far beyond any halo this code moves.
const MAX_FRAME_VALUES: u32 = 1 << 27;
/// First pause between connection-refused dial retries; doubles per retry
/// (see [`backoff_step`]). Starting small keeps an in-process loopback
/// rendezvous snappy; the exponential growth keeps a long wait for a
/// slow-to-bind respawned peer from burning CPU on connect attempts.
const DIAL_BACKOFF: Duration = Duration::from_millis(1);
/// Upper bound on the dial retry pause: detection latency for a peer that
/// finally binds stays bounded no matter how long the wait was.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(100);
/// How long an acceptor sleeps between non-blocking accept polls.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(2);
/// Rendezvous budget for in-process loopback meshes (generous: loopback
/// connects are immediate; this only bounds pathological stalls).
const LOOPBACK_RENDEZVOUS: Duration = Duration::from_secs(30);

/// Encodes the 24-byte hello.
fn encode_hello(world: u32, rank: u32, gen: u32) -> [u8; HELLO_LEN] {
    let mut b = [0u8; HELLO_LEN];
    b[0..4].copy_from_slice(&MAGIC);
    b[4..8].copy_from_slice(&VERSION.to_le_bytes());
    b[8..12].copy_from_slice(&world.to_le_bytes());
    b[12..16].copy_from_slice(&rank.to_le_bytes());
    b[16..20].copy_from_slice(&gen.to_le_bytes());
    // b[20..24] reserved, zero.
    b
}

/// Decodes and validates a hello against this side's `(world, gen)`.
/// Returns the peer's rank.
fn decode_hello(b: &[u8; HELLO_LEN], world: u32, gen: u32) -> std::io::Result<u32> {
    let err = |msg: String| std::io::Error::new(ErrorKind::InvalidData, msg);
    if b[0..4] != MAGIC {
        return Err(err(format!("handshake: bad magic {:02x?}", &b[0..4])));
    }
    let u = |off: usize| u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"));
    if u(4) != VERSION {
        return Err(err(format!(
            "handshake: protocol version {} != {VERSION}",
            u(4)
        )));
    }
    if u(8) != world {
        return Err(err(format!(
            "handshake: peer believes the world has {} ranks, not {world}",
            u(8)
        )));
    }
    if u(16) != gen {
        return Err(err(format!(
            "handshake: peer starts at generation {}, not {gen}",
            u(16)
        )));
    }
    let rank = u(12);
    if rank >= world {
        return Err(err(format!("handshake: peer rank {rank} out of range")));
    }
    Ok(rank)
}

/// Encodes one message as a single contiguous frame (header + payload), so
/// the write is one `write_all` under the writer lock — frames from the
/// delayed-delivery threads can never interleave mid-frame.
fn encode_frame(tag: u32, gen: u32, data: &[f64]) -> Vec<u8> {
    let mut b = Vec::with_capacity(HEADER_LEN + data.len() * 8);
    b.extend_from_slice(&tag.to_le_bytes());
    b.extend_from_slice(&gen.to_le_bytes());
    b.extend_from_slice(&(data.len() as u32).to_le_bytes());
    for v in data {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary (the
/// peer's write-side FIN), `Err` on a torn frame or connection error.
fn read_frame(stream: &mut TcpStream, src: usize) -> std::io::Result<Option<Message>> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(stream, &mut header)? {
        return Ok(None); // EOF before any header byte
    }
    let u = |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().expect("4 bytes"));
    let (tag, gen, count) = (u(0), u(4), u(8));
    if count > MAX_FRAME_VALUES {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame from rank {src}: implausible payload count {count}"),
        ));
    }
    let mut payload = vec![0u8; count as usize * 8];
    stream.read_exact(&mut payload)?;
    let data = payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Ok(Some(Message {
        src,
        tag,
        gen,
        data,
    }))
}

/// `read_exact`, except a clean EOF *before the first byte* returns
/// `Ok(false)` instead of an error — EOF mid-buffer is still a torn-frame
/// error.
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => (),
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// `read_exact` bounded by an absolute `deadline`: the remaining budget is
/// recomputed from the single deadline on every partial read, so a
/// request trickling in byte-by-byte consumes the *one* configured timeout
/// in total — never a fresh timeout per segment.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                "handshake read deadline exceeded",
            ));
        }
        stream.set_read_timeout(Some(deadline - now))?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed during handshake",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                // Loop: the deadline check at the top decides expiry.
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Next dial retry pause: exponential doubling capped at
/// [`DIAL_BACKOFF_CAP`]. Pure, so the growth schedule is unit-testable.
fn backoff_step(prev: Duration) -> Duration {
    (prev * 2).min(DIAL_BACKOFF_CAP)
}

/// Dials `addr` until it accepts or `deadline` passes, sleeping with
/// exponential backoff between attempts. Connection-refused (the peer's
/// process has not bound its listener yet — a launch race or a respawned
/// rank that is slow to bind) and reset retries are expected; anything
/// else propagates.
fn dial(addr: SocketAddr, deadline: Instant) -> std::io::Result<TcpStream> {
    let mut pause = DIAL_BACKOFF;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                format!("rendezvous: {addr} did not accept in time"),
            ));
        }
        match TcpStream::connect_timeout(&addr, deadline - now) {
            Ok(s) => return Ok(s),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionRefused
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::TimedOut
                        | ErrorKind::WouldBlock
                ) =>
            {
                // Never sleep past the deadline itself.
                std::thread::sleep(pause.min(deadline.saturating_duration_since(Instant::now())));
                pause = backoff_step(pause);
            }
            Err(e) => return Err(e),
        }
    }
}

/// The socket transport: one duplex `TcpStream` per peer, per-peer reader
/// threads feeding one inbox, writes serialized per peer by a mutex.
pub struct TcpTransport {
    rank: usize,
    /// One writer per peer (`None` at this rank's own index). The mutex
    /// serializes whole frames; delayed-delivery threads hold clones.
    writers: Vec<Option<Arc<Mutex<TcpStream>>>>,
    inbox: Receiver<Message>,
    /// This rank's *local* view of peer liveness, written by its reader
    /// threads. Deliberately not shared between ranks of an in-process TCP
    /// world: a flag may only flip after *this* rank's reader drained the
    /// peer's final frames into *this* inbox, and that moment differs per
    /// observer.
    alive: Arc<Vec<AtomicBool>>,
    /// World-level health flags (one per rank, shared with the driver);
    /// this rank's entry is cleared on shutdown. `None` for standalone
    /// multi-process transports.
    world_alive: Option<Arc<Vec<AtomicBool>>>,
    shut: bool,
}

impl TcpTransport {
    /// Multi-process entry: binds this rank's listener at `addrs[rank]`
    /// and rendezvouses with every peer. Blocks until the full mesh is
    /// connected or `timeout` expires.
    pub fn connect(
        rank: usize,
        addrs: &[SocketAddr],
        gen: u32,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let listener = if rank + 1 < addrs.len() {
            Some(TcpListener::bind(addrs[rank])?)
        } else {
            None // the highest rank only dials
        };
        Self::rendezvous(rank, addrs, listener, gen, timeout, None)
    }

    /// In-process entry: like [`TcpTransport::connect`] but over a
    /// pre-bound listener (so `127.0.0.1:0` worlds can publish their real
    /// port before any rank dials) and wired to the world's health flags.
    fn rendezvous(
        rank: usize,
        addrs: &[SocketAddr],
        listener: Option<TcpListener>,
        gen: u32,
        timeout: Duration,
        world_alive: Option<Arc<Vec<AtomicBool>>>,
    ) -> std::io::Result<Self> {
        let n = addrs.len();
        assert!(rank < n, "TcpTransport: rank {rank} outside world of {n}");
        let deadline = Instant::now() + timeout;
        let hello = encode_hello(n as u32, rank as u32, gen);
        let mut peers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Dial every lower rank; each dial sends our hello and waits for
        // the peer's (which doubles as the accept acknowledgement).
        for s in 0..rank {
            let mut stream = dial(addrs[s], deadline)?;
            stream.set_nodelay(true)?;
            stream.write_all(&hello)?;
            let mut reply = [0u8; HELLO_LEN];
            read_exact_deadline(&mut stream, &mut reply, deadline)?;
            let peer = decode_hello(&reply, n as u32, gen)? as usize;
            if peer != s {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "rendezvous: dialed rank {s} at {} but rank {peer} answered",
                        addrs[s]
                    ),
                ));
            }
            peers[s] = Some(stream);
        }

        // Accept every higher rank (they identify themselves in the
        // handshake — acceptance order does not matter).
        if let Some(listener) = &listener {
            listener.set_nonblocking(true)?;
            let mut missing = n - rank - 1;
            while missing > 0 {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_nodelay(true)?;
                        let mut their = [0u8; HELLO_LEN];
                        read_exact_deadline(&mut stream, &mut their, deadline)?;
                        let peer = decode_hello(&their, n as u32, gen)? as usize;
                        if peer <= rank || peers[peer].is_some() {
                            return Err(std::io::Error::new(
                                ErrorKind::InvalidData,
                                format!("rendezvous: unexpected connection from rank {peer}"),
                            ));
                        }
                        stream.write_all(&hello)?;
                        peers[peer] = Some(stream);
                        missing -= 1;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(std::io::Error::new(
                                ErrorKind::TimedOut,
                                format!("rendezvous: rank {rank} still missing {missing} peer(s)"),
                            ));
                        }
                        std::thread::sleep(ACCEPT_BACKOFF);
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        // Mesh complete: split each stream into a locked writer and a
        // reader thread feeding the shared inbox.
        let (tx, rx) = unbounded::<Message>();
        let alive: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(true)).collect());
        let mut writers: Vec<Option<Arc<Mutex<TcpStream>>>> = (0..n).map(|_| None).collect();
        for (peer, stream) in peers.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            stream.set_read_timeout(None)?; // readers block indefinitely
            let reader = stream.try_clone()?;
            writers[peer] = Some(Arc::new(Mutex::new(stream)));
            let tx = tx.clone();
            let alive = alive.clone();
            std::thread::Builder::new()
                .name(format!("pdeml-tcp-r{rank}p{peer}"))
                .spawn(move || reader_loop(reader, peer, tx, alive))
                .expect("spawn tcp reader thread");
        }
        drop(tx); // the inbox closes when the last reader exits
        Ok(Self {
            rank,
            writers,
            inbox: rx,
            alive,
            world_alive,
            shut: false,
        })
    }
}

/// Pulls frames off one peer connection into the shared inbox until EOF or
/// a connection error, then — and only then — flips the peer's death flag
/// and drops its inbox sender. Keeps reading in discard mode after the
/// local `Comm` is gone so the peer's writes never block on a full socket
/// buffer.
fn reader_loop(
    mut stream: TcpStream,
    peer: usize,
    tx: Sender<Message>,
    alive: Arc<Vec<AtomicBool>>,
) {
    let mut tx = Some(tx);
    // A torn frame / reset ends the loop exactly like a clean EOF — both
    // are indistinguishable from (and treated as) peer death.
    while let Ok(Some(msg)) = read_frame(&mut stream, peer) {
        if let Some(t) = &tx {
            if t.send(msg).is_err() {
                tx = None; // local side gone: drain and discard
            }
        }
    }
    // Everything the peer ever sent is enqueued; the `Release` store pairs
    // with the `Acquire` in `peer_alive` so a post-observation drain
    // misses nothing (the flush-before-death contract).
    alive[peer].store(false, Ordering::Release);
}

impl Transport for TcpTransport {
    fn deliver(&self, dest: usize, msg: Message) {
        let writer = self.writers[dest].as_ref().expect("non-self writer");
        let frame = encode_frame(msg.tag, msg.gen, &msg.data);
        let mut stream = writer.lock().unwrap_or_else(|p| p.into_inner());
        // Write errors (peer process died, socket reset) are deliberately
        // swallowed: delivering to the dead is a no-op, and the death is
        // surfaced on the receive side — exactly the channel semantics.
        let _ = stream.write_all(&frame);
    }

    fn deliver_delayed(&self, dest: usize, msg: Message, delay: Duration) {
        let writer = self.writers[dest]
            .as_ref()
            .expect("non-self writer")
            .clone();
        let frame = encode_frame(msg.tag, msg.gen, &msg.data);
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            let mut stream = writer.lock().unwrap_or_else(|p| p.into_inner());
            let _ = stream.write_all(&frame);
        });
    }

    fn try_recv(&mut self) -> Poll {
        match self.inbox.try_recv() {
            Ok(msg) => Poll::Msg(msg),
            Err(TryRecvError::Empty) => Poll::Empty,
            Err(TryRecvError::Disconnected) => Poll::Closed,
        }
    }

    fn recv_timeout(&mut self, wait: Duration) -> Poll {
        match self.inbox.recv_timeout(wait) {
            Ok(msg) => Poll::Msg(msg),
            Err(RecvTimeoutError::Timeout) => Poll::Empty,
            Err(RecvTimeoutError::Disconnected) => Poll::Closed,
        }
    }

    fn peer_alive(&self, rank: usize) -> bool {
        self.alive[rank].load(Ordering::Acquire)
    }

    fn shutdown(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        self.alive[self.rank].store(false, Ordering::Release);
        if let Some(world) = &self.world_alive {
            world[self.rank].store(false, Ordering::Release);
        }
        for writer in self.writers.iter().flatten() {
            let stream = writer.lock().unwrap_or_else(|p| p.into_inner());
            // Write-side FIN only: in-flight frames flush, and our readers
            // keep draining the peer's remaining traffic. A full close
            // here could turn unread inbound data into an RST, destroying
            // messages a peer legitimately delivered.
            let _ = stream.shutdown(Shutdown::Write);
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the full loopback transport mesh for an in-process TCP world:
/// binds one `127.0.0.1:0` listener per rank, then runs all rendezvous in
/// parallel (they block on each other by design).
///
/// # Panics
/// On any socket error — an in-process loopback failure is an environment
/// problem, not a recoverable protocol state.
pub(crate) fn loopback_mesh(n: usize, world_alive: &Arc<Vec<AtomicBool>>) -> Vec<TcpTransport> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("listener local addr"))
        .collect();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let addrs = &addrs;
                let world_alive = world_alive.clone();
                s.spawn(move |_| {
                    TcpTransport::rendezvous(
                        rank,
                        addrs,
                        Some(listener),
                        0,
                        LOOPBACK_RENDEZVOUS,
                        Some(world_alive),
                    )
                    .unwrap_or_else(|e| panic!("loopback rendezvous failed on rank {rank}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rendezvous thread"))
            .collect()
    })
    .expect("loopback rendezvous scope")
}

/// Joins a multi-process TCP world as rank `rank` and returns a fully
/// wired [`Comm`]: transport rendezvous at `addrs` (this rank's own entry
/// is its listen address), fresh per-rank stats, and the optional fault
/// plan applied with the usual collective exemption. The building block of
/// `pdeml world-node`.
///
/// `gen` is the membership epoch the hello handshake asserts: every rank
/// joining the same mesh must present the same value (0 at first launch;
/// bumped in lock-step when survivors and a respawned rank rebuild the
/// mesh after a death, so a process still living in the previous epoch is
/// rejected at the handshake instead of corrupting the new mesh). The
/// [`Comm`] starts at that generation too, keeping any frame stamped in an
/// earlier epoch unmatchable.
pub fn connect_tcp_world(
    rank: usize,
    addrs: &[SocketAddr],
    gen: u32,
    timeout: Duration,
    fault_plan: Option<&FaultPlan>,
) -> std::io::Result<Comm> {
    let transport = TcpTransport::connect(rank, addrs, gen, timeout)?;
    let mut comm = Comm::over_transport(rank, addrs.len(), Box::new(transport), fault_plan);
    comm.set_generation(gen);
    Ok(comm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let alive = Arc::new(vec![AtomicBool::new(true), AtomicBool::new(true)]);
        let mut mesh = loopback_mesh(2, &alive).into_iter();
        let a = mesh.next().unwrap();
        let b = mesh.next().unwrap();
        (a, b)
    }

    fn msg(src: usize, tag: u32, gen: u32, data: Vec<f64>) -> Message {
        Message {
            src,
            tag,
            gen,
            data,
        }
    }

    #[test]
    fn hello_round_trips_and_validates() {
        let b = encode_hello(4, 2, 7);
        assert_eq!(decode_hello(&b, 4, 7).unwrap(), 2);
        // Wrong world size, generation, version and magic all fail loudly.
        assert!(decode_hello(&b, 5, 7).is_err());
        assert!(decode_hello(&b, 4, 8).is_err());
        let mut bad = b;
        bad[0] = b'X';
        assert!(decode_hello(&bad, 4, 7).is_err());
        let mut old = b;
        old[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode_hello(&old, 4, 7).is_err());
        let mut oob = b;
        oob[12..16].copy_from_slice(&4u32.to_le_bytes());
        assert!(decode_hello(&oob, 4, 7).is_err());
    }

    #[test]
    fn frames_preserve_f64_bits_exactly() {
        // NaN payloads, negative zero, subnormals: the frame must carry
        // bit patterns, not values.
        let data = vec![
            f64::NAN,
            -0.0,
            f64::MIN_POSITIVE / 2.0,
            f64::INFINITY,
            1.0 + f64::EPSILON,
        ];
        let (a, mut b) = pair();
        a.deliver(1, msg(0, 0xABCD, 3, data.clone()));
        let got = match b.recv_timeout(crate::test_timeout()) {
            Poll::Msg(m) => m,
            other => panic!("expected a frame, got {other:?}"),
        };
        assert_eq!(got.src, 0);
        assert_eq!(got.tag, 0xABCD);
        assert_eq!(got.gen, 3);
        assert_eq!(got.data.len(), data.len());
        for (x, y) in got.data.iter().zip(&data) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_payload_frames_work() {
        // Barrier messages are empty; the frame layer must not choke.
        let (a, mut b) = pair();
        a.deliver(1, msg(0, 7, 0, Vec::new()));
        match b.recv_timeout(crate::test_timeout()) {
            Poll::Msg(m) => assert!(m.data.is_empty()),
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_flushes_in_flight_frames_then_reads_as_death() {
        // Write-then-die: the frames sent before shutdown must all arrive
        // (FIN, not RST), after which the peer reads as dead and the inbox
        // closes.
        let (mut a, mut b) = pair();
        for k in 0..10 {
            a.deliver(1, msg(0, k, 0, vec![k as f64; 100]));
        }
        a.shutdown();
        let deadline = Instant::now() + crate::test_timeout();
        let mut got = 0;
        while got < 10 {
            match b.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Poll::Msg(m) => {
                    assert_eq!(m.data, vec![m.tag as f64; 100]);
                    got += 1;
                }
                other => panic!("lost frames after shutdown: {got}/10, got {other:?}"),
            }
        }
        // Flush-before-death: once the flag reads false, nothing remains.
        while b.peer_alive(0) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(b.try_recv(), Poll::Empty | Poll::Closed));
    }

    #[test]
    fn inbox_closes_when_all_peers_shut_down() {
        let (mut a, mut b) = pair();
        a.shutdown();
        let deadline = Instant::now() + crate::test_timeout();
        loop {
            match b.recv_timeout(Duration::from_millis(10)) {
                Poll::Closed => break,
                Poll::Empty if Instant::now() < deadline => (),
                other => panic!("expected Closed, got {other:?}"),
            }
        }
        assert!(!b.peer_alive(0));
    }

    #[test]
    fn read_exact_deadline_is_single_budget_not_per_segment() {
        // A peer that trickles bytes must not reset the clock per segment:
        // the total wait is bounded by ONE deadline. The writer sends the
        // first half of a hello slowly and never finishes; the reader must
        // give up within its single budget (plus scheduling slack), not
        // 24 × per-byte timeouts.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            for _ in 0..6 {
                let _ = s.write_all(&[0u8]);
                std::thread::sleep(Duration::from_millis(30));
            }
            // Keep the socket open so the reader sees a stall, not EOF.
            std::thread::sleep(Duration::from_millis(600));
        });
        let (mut conn, _) = listener.accept().unwrap();
        let budget = Duration::from_millis(150);
        let start = Instant::now();
        let mut buf = [0u8; HELLO_LEN];
        let err = read_exact_deadline(&mut conn, &mut buf, start + budget).unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        assert!(
            elapsed < budget * 3,
            "deadline re-armed per segment: waited {elapsed:?} on a {budget:?} budget"
        );
        writer.join().unwrap();
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut pause = DIAL_BACKOFF;
        let mut seen = Vec::new();
        for _ in 0..12 {
            seen.push(pause);
            pause = backoff_step(pause);
        }
        // Doubles until clamped at the cap, then stays flat.
        for w in seen.windows(2) {
            assert_eq!(
                w[1],
                (w[0] * 2).min(DIAL_BACKOFF_CAP),
                "bad backoff step {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(pause, DIAL_BACKOFF_CAP, "schedule must reach the cap");
    }

    #[test]
    fn dial_retries_with_backoff_until_a_slow_peer_binds() {
        // A respawned rank can be slow to bind its listener; the dialer
        // must keep retrying (connection refused) until the bind lands,
        // not give up on the first refusal.
        let ghost = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = ghost.local_addr().unwrap();
        drop(ghost); // port free but unbound: dials are refused for now
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let listener = TcpListener::bind(addr).expect("rebind the reserved port");
            let _conn = listener.accept().expect("accept the retried dial");
        });
        let stream = dial(addr, Instant::now() + crate::test_timeout());
        assert!(
            stream.is_ok(),
            "dial must survive a slow-to-bind peer: {stream:?}"
        );
        binder.join().unwrap();
    }

    #[test]
    fn stale_generation_frame_after_rejoin_is_discarded() {
        // Post-rejoin regression: a frame stamped with a pre-recovery
        // generation that arrives after the receiver entered the new epoch
        // must be dropped, never delivered or parked.
        let (a, b) = pair();
        let mut comm = Comm::over_transport(1, 2, Box::new(b), None);
        comm.set_generation(3);
        a.deliver(1, msg(0, 7, 2, vec![13.0])); // stale: epoch 2
        a.deliver(1, msg(0, 7, 3, vec![42.0])); // current epoch
        assert_eq!(
            comm.recv(0, 7),
            vec![42.0],
            "only the current-epoch frame may match"
        );
        assert!(
            comm.try_recv(0, 7).is_none(),
            "the stale frame must not linger in the pending queue"
        );
    }

    #[test]
    fn rendezvous_times_out_when_a_peer_never_shows() {
        // Rank 1 of a 3-rank world dials rank 0 (present) but rank 2 never
        // connects: the rendezvous must fail with TimedOut, within its own
        // budget.
        let l0 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let l1 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a0 = l0.local_addr().unwrap();
        let a1 = l1.local_addr().unwrap();
        // Reserve a port for the absent rank 2, then close it.
        let ghost = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a2 = ghost.local_addr().unwrap();
        drop(ghost);
        let addrs = vec![a0, a1, a2];
        let addrs0 = addrs.clone();
        let rank0 = std::thread::spawn(move || {
            TcpTransport::rendezvous(0, &addrs0, Some(l0), 0, Duration::from_millis(400), None)
                .err()
                .expect("rank 0 must time out")
        });
        let e1 = TcpTransport::rendezvous(1, &addrs, Some(l1), 0, Duration::from_millis(400), None)
            .err()
            .expect("rank 1 must time out");
        assert_eq!(e1.kind(), ErrorKind::TimedOut);
        assert_eq!(rank0.join().unwrap().kind(), ErrorKind::TimedOut);
    }
}
