//! # pde-commsim
//!
//! An MPI-like message-passing runtime over OS threads — the substitute for
//! the Message Passing Interface the paper parallelizes with (DESIGN.md §2).
//!
//! A [`World`] spawns one thread per rank and hands each a [`Comm`] handle.
//! Point-to-point sends are buffered (a send never blocks), receives match
//! on `(source, tag)` with an out-of-order pending queue — the semantics of
//! `MPI_Send`/`MPI_Recv` with eager buffering. Collectives (barrier,
//! broadcast, reduce, allreduce, gather, allgather) are built on top of the
//! point-to-point layer, exactly as a small MPI implementation would.
//!
//! [`cart::CartComm`] adds the 2-D Cartesian topology and the neighbor halo
//! exchange the paper's *inference* phase needs ("Each processor sends the
//! boundary data to the corresponding neighbor … fully parallel
//! point-to-point communication", §III).
//!
//! Every rank's traffic is counted ([`CommStats`]), which is how the
//! experiment harness shows the headline property of the paper's scheme:
//! **zero bytes communicated during training**, O(boundary) bytes per step
//! during inference, versus O(weights) per step for the allreduce baseline.
//!
//! Fault injection for robustness tests: [`World::with_fault_plan`] lets a
//! test drop messages on selected edges; receivers using
//! [`Comm::recv_timeout`] can then observe and handle the loss instead of
//! deadlocking.

pub mod cart;
pub mod comm;
pub mod world;

pub use cart::{CartComm, Direction};
pub use comm::{Comm, CommStats, Message, RecvError, Tag};
pub use world::{FaultAction, FaultPlan, World};
