//! # pde-commsim
//!
//! An MPI-like message-passing runtime over OS threads — the substitute for
//! the Message Passing Interface the paper parallelizes with (DESIGN.md §2).
//!
//! A [`World`] spawns one thread per rank and hands each a [`Comm`] handle.
//! Point-to-point sends are buffered (a send never blocks), receives match
//! on `(source, tag)` with an out-of-order pending queue — the semantics of
//! `MPI_Send`/`MPI_Recv` with eager buffering. Collectives (barrier,
//! broadcast, reduce, allreduce, gather, allgather) are built on top of the
//! point-to-point layer, exactly as a small MPI implementation would.
//!
//! [`cart::CartComm`] adds the 2-D Cartesian topology and the neighbor halo
//! exchange the paper's *inference* phase needs ("Each processor sends the
//! boundary data to the corresponding neighbor … fully parallel
//! point-to-point communication", §III).
//!
//! Every rank's traffic is counted ([`CommStats`]), which is how the
//! experiment harness shows the headline property of the paper's scheme:
//! **zero bytes communicated during training**, O(boundary) bytes per step
//! during inference, versus O(weights) per step for the allreduce baseline.
//!
//! Fault injection for resilience: [`World::with_fault_plan`] can drop
//! messages on selected edges ([`FaultPlan::drop_edge`]), lose them with a
//! deterministic seeded per-message probability ([`FaultPlan::loss_rate`]),
//! or delay them ([`FaultPlan::delay_edge`]). Receivers observe loss
//! through [`Comm::recv_timeout`] or the halo-level
//! [`CartComm::exchange_timeout`] family, which classifies every
//! directional receive as a [`HaloRecv`]: `Ok` (arrived), `Lost` (timed
//! out — recoverable by policy) or `PeerDead` (the peer thread is gone —
//! fatal in an unrecovered world, because a dead rank's whole subdomain is
//! missing, not one strip). The two failure modes are structurally
//! distinct: an inbox only disconnects when every peer has dropped its
//! handle, and buffered messages are still drained first.
//!
//! Worlds self-heal: a [`supervise::Supervisor`] detects dead ranks on a
//! [`PersistentWorld`], respawns them ([`PersistentWorld::respawn`]) and
//! rebuilds the communicator mesh under a fresh generation epoch, while a
//! seeded [`supervise::ChaosPlan`] (`kill:RANK:REQUEST[:STEP]`) schedules
//! deterministic rank deaths to prove it.

//!
//! The mechanism moving messages is pluggable: everything above the
//! [`transport::Transport`] trait (tag/generation matching, fault
//! injection, counters, collectives, halos) is shared by the in-process
//! [`transport::ChannelTransport`] (default) and the socket-backed
//! [`tcp::TcpTransport`], which lets a world's ranks run as separate OS
//! processes ([`World::with_transport`], [`tcp::connect_tcp_world`]).

pub mod cart;
pub mod comm;
mod live;
pub mod supervise;
pub mod tcp;
pub mod transport;
pub mod world;

pub use cart::{CartComm, Direction, HaloRecv, HaloStatus};
pub use comm::{Comm, CommStats, Message, RecvError, Tag, TrafficReport};
pub use supervise::{record_recovery, ChaosPlan, KillSpec, RecoveryReport, Supervisor};
pub use tcp::{connect_tcp_world, TcpTransport};
pub use transport::{ChannelTransport, Transport};
pub use world::{FaultAction, FaultPlan, PersistentWorld, RankContext, TransportKind, World};

use std::time::Duration;

/// The receive timeout used by the fault-injection test suites, read from
/// `PDEML_TEST_TIMEOUT_MS` (default 2000 ms — generous, because on a loaded
/// CI runner a healthy rank can be descheduled for hundreds of
/// milliseconds, and a healthy message declared lost makes a test flaky).
/// A *dropped* message never arrives at all, so a generous timeout costs
/// wall-clock time only on genuinely lossy edges, never correctness.
pub fn test_timeout() -> Duration {
    timeout_from(std::env::var("PDEML_TEST_TIMEOUT_MS").ok().as_deref())
}

/// Pure body of [`test_timeout`], separated for deterministic testing.
pub(crate) fn timeout_from(var: Option<&str>) -> Duration {
    let ms = var.and_then(|v| v.parse().ok()).unwrap_or(2000);
    Duration::from_millis(ms)
}
