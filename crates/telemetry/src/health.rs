//! Explicit health model behind `/healthz` and `/readyz`.
//!
//! A [`HealthModel`] is a named list of checks, each a closure returning a
//! [`CheckStatus`]. The serving stack registers checks over the state it
//! already maintains (commsim rank-aliveness `AtomicBool`s, the
//! world-poisoned flag, degraded-fallback rates) rather than the exporter
//! guessing health from metric values:
//!
//! * `/healthz` (liveness) fails only on [`CheckStatus::Failed`] — a
//!   degraded engine is still alive and should not be restarted;
//! * `/readyz` (readiness) requires every check [`CheckStatus::Ok`] — a
//!   degraded engine should stop receiving new traffic.

use std::sync::Mutex;

/// Outcome of one health check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckStatus {
    /// Fully healthy.
    Ok,
    /// Alive but impaired (e.g. fallback rate over threshold). Fails
    /// readiness, passes liveness.
    Degraded(String),
    /// Dead or unrecoverable (e.g. poisoned world). Fails both.
    Failed(String),
}

/// Aggregate across all checks: worst individual status wins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    Healthy,
    Degraded,
    Unhealthy,
}

impl Health {
    /// Lowercase label used in JSON output and the exporter bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Unhealthy => "unhealthy",
        }
    }
}

type Check = Box<dyn Fn() -> CheckStatus + Send + Sync>;

/// A registry of named health checks, evaluated on demand.
#[derive(Default)]
pub struct HealthModel {
    checks: Mutex<Vec<(&'static str, Check)>>,
}

/// Evaluated state of every check at one instant.
pub struct HealthReport {
    /// `(check name, status)` in registration order.
    pub checks: Vec<(&'static str, CheckStatus)>,
    /// Worst status across `checks`.
    pub overall: Health,
}

impl HealthModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named check. Checks run at every `/healthz`/`/readyz` hit, so
    /// they must be cheap (atomic loads, a division).
    pub fn register(
        &self,
        name: &'static str,
        check: impl Fn() -> CheckStatus + Send + Sync + 'static,
    ) {
        self.checks.lock().unwrap().push((name, Box::new(check)));
    }

    /// Runs every check.
    pub fn report(&self) -> HealthReport {
        let checks = self.checks.lock().unwrap();
        let mut out = Vec::with_capacity(checks.len());
        let mut overall = Health::Healthy;
        for (name, check) in checks.iter() {
            let status = check();
            match status {
                CheckStatus::Ok => {}
                CheckStatus::Degraded(_) => {
                    if overall == Health::Healthy {
                        overall = Health::Degraded;
                    }
                }
                CheckStatus::Failed(_) => overall = Health::Unhealthy,
            }
            out.push((*name, status));
        }
        HealthReport {
            checks: out,
            overall,
        }
    }

    /// Liveness: no check has `Failed`.
    pub fn live(&self) -> bool {
        self.report().overall != Health::Unhealthy
    }

    /// Readiness: every check is `Ok`.
    pub fn ready(&self) -> bool {
        self.report().overall == Health::Healthy
    }
}

/// A `ranks_alive` check over a world's shared per-rank aliveness flags.
///
/// Evaluates the flags **live on every call** instead of latching the view
/// that existed when the check was registered — so a world healed by a
/// supervisor (dead ranks respawned, flags re-armed) transitions
/// Failed → Ok on the very next `/readyz` probe, with no re-registration.
/// Dead ranks report [`CheckStatus::Failed`] because a lost rank's whole
/// subdomain is missing: the world cannot serve until it is healed.
pub fn ranks_alive_check(
    flags: std::sync::Arc<Vec<std::sync::atomic::AtomicBool>>,
) -> impl Fn() -> CheckStatus + Send + Sync {
    move || {
        let dead: Vec<String> = flags
            .iter()
            .enumerate()
            .filter(|(_, alive)| !alive.load(std::sync::atomic::Ordering::Acquire))
            .map(|(rank, _)| rank.to_string())
            .collect();
        if dead.is_empty() {
            CheckStatus::Ok
        } else {
            CheckStatus::Failed(format!("dead ranks: {}", dead.join(", ")))
        }
    }
}

impl HealthReport {
    /// One line per check plus an overall line — the `/healthz`/`/readyz`
    /// response body.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for (name, status) in &self.checks {
            match status {
                CheckStatus::Ok => s.push_str(&format!("ok {name}\n")),
                CheckStatus::Degraded(why) => s.push_str(&format!("degraded {name}: {why}\n")),
                CheckStatus::Failed(why) => s.push_str(&format!("failed {name}: {why}\n")),
            }
        }
        s.push_str(&format!("overall: {}\n", self.overall.as_str()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn empty_model_is_healthy_and_ready() {
        let m = HealthModel::new();
        assert!(m.live());
        assert!(m.ready());
        assert_eq!(m.report().overall, Health::Healthy);
    }

    #[test]
    fn degraded_fails_ready_but_not_live() {
        let m = HealthModel::new();
        m.register("fallbacks", || CheckStatus::Degraded("rate 0.8".into()));
        assert!(m.live());
        assert!(!m.ready());
        assert_eq!(m.report().overall, Health::Degraded);
    }

    #[test]
    fn recovered_world_transitions_failed_to_ok() {
        // Regression: the ranks_alive check must read the flags live, not
        // latch the dead-rank view it saw when a rank died — otherwise a
        // healed world stays Failed forever.
        let flags: Arc<Vec<AtomicBool>> = Arc::new((0..4).map(|_| AtomicBool::new(true)).collect());
        let m = HealthModel::new();
        m.register("ranks_alive", ranks_alive_check(flags.clone()));
        assert!(m.ready(), "all ranks alive: Ok");

        flags[2].store(false, Ordering::Release);
        assert!(!m.live(), "a dead rank is Failed, not Degraded");
        assert!(m
            .report()
            .describe()
            .contains("failed ranks_alive: dead ranks: 2"));

        // Supervisor respawns rank 2 and re-arms the shared flag.
        flags[2].store(true, Ordering::Release);
        assert!(m.live() && m.ready(), "healed world must read Ok again");
        assert_eq!(m.report().overall, Health::Healthy);
    }

    #[test]
    fn failed_check_fails_both_and_tracks_state() {
        let poisoned = Arc::new(AtomicBool::new(false));
        let m = HealthModel::new();
        let p = poisoned.clone();
        m.register("world", move || {
            if p.load(Ordering::Acquire) {
                CheckStatus::Failed("poisoned".into())
            } else {
                CheckStatus::Ok
            }
        });
        assert!(m.live() && m.ready());
        poisoned.store(true, Ordering::Release);
        assert!(!m.live());
        assert!(!m.ready());
        let desc = m.report().describe();
        assert!(desc.contains("failed world: poisoned"));
        assert!(desc.contains("overall: unhealthy"));
    }
}
