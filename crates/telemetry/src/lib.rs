//! Live, lock-free metrics for the serving stack.
//!
//! Offline tracing (`pde-trace`) answers "what happened during that run?";
//! this crate answers "what is the engine doing *right now*?". Every metric
//! is a process-global, registration-once object whose hot path is a
//! handful of relaxed atomic operations and **zero allocations after
//! registration** (asserted by `tests/trace_overhead.rs`-style tests):
//!
//! * [`Counter`] / [`Gauge`] — sharded per rank ([`RANK_SHARDS`] padded
//!   cache lines plus one driver cell), so concurrent rank threads never
//!   contend on one cache line;
//! * [`Histogram`] — log-linear (HDR-style) buckets: power-of-two ranges
//!   split into `2^k` linear sub-buckets, giving quantile queries
//!   (p50/p99/p99.9) with relative error bounded by `1/2^(k+1)`; snapshots
//!   are plain vectors that merge by elementwise addition, and
//!   `merge(a, b)` is *exactly* the histogram of the union of the samples;
//! * scrape-time collector callbacks ([`collect_counter`] /
//!   [`collect_gauge`]) for values maintained elsewhere (e.g.
//!   `pde_trace::dropped_spans_total`).
//!
//! The registry renders the Prometheus text exposition format
//! ([`render_prometheus`]); [`exporter`] serves it over a hand-rolled
//! std-only HTTP listener together with `/healthz` + `/readyz` driven by the
//! explicit [`health`] model. No dependencies, by design: the exporter must
//! keep working when everything else is on fire.

pub mod exporter;
pub mod health;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Rank shards per metric (power of two). Ranks hash in with `rank & 31`;
/// worlds beyond 32 ranks share shards (totals stay exact, labels coarsen).
pub const RANK_SHARDS: usize = 32;

/// Sentinel "rank" for driver-thread recordings; rendered as the unlabeled
/// base series instead of a `rank="N"` one.
pub const DRIVER: usize = usize::MAX;

/// Default sub-bucket bits for [`histogram`]: 32 linear sub-buckets per
/// power of two, i.e. quantile relative error ≤ 1/64 (~1.6%).
pub const DEFAULT_SUB_BITS: u32 = 5;

/// The nearest-rank index rule shared by every percentile in the stack:
/// for `count` sorted samples, quantile `q` (in `[0, 1]`) is the sample at
/// index `round((count - 1) * q)`. [`HistogramSnapshot::quantile`] and the
/// CLI's exact-list percentile both call this, so a latency reported from
/// a sorted vector and one reported from a histogram agree on which sample
/// they mean (the histogram then coarsens it to its bucket's midpoint).
pub fn nearest_rank(count: u64, q: f64) -> u64 {
    (count.saturating_sub(1) as f64 * q.clamp(0.0, 1.0)).round() as u64
}

fn shard_of(rank: usize) -> usize {
    if rank == DRIVER {
        RANK_SHARDS
    } else {
        rank & (RANK_SHARDS - 1)
    }
}

/// A cache-line-padded atomic cell, so per-rank shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PadU64(AtomicU64);

#[repr(align(64))]
#[derive(Default)]
struct PadI64(AtomicI64);

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonic counter sharded per rank. `inc`/`add` are one relaxed
/// `fetch_add` on the caller's shard.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    cells: Box<[PadU64]>,
}

impl Counter {
    fn new(name: &'static str, help: &'static str) -> Self {
        let cells = (0..=RANK_SHARDS).map(|_| PadU64::default()).collect();
        Counter { name, help, cells }
    }

    /// Metric name as rendered.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1 on `rank`'s shard (use [`DRIVER`] off the rank threads).
    #[inline]
    pub fn inc(&self, rank: usize) {
        self.add(rank, 1);
    }

    /// Adds `n` on `rank`'s shard.
    #[inline]
    pub fn add(&self, rank: usize, n: u64) {
        self.cells[shard_of(rank)].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `rank`'s shard.
    pub fn get(&self, rank: usize) -> u64 {
        self.cells[shard_of(rank)].0.load(Ordering::Relaxed)
    }

    /// Sum over all shards (ranks + driver).
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Plain-value snapshot of every shard (`RANK_SHARDS` rank cells then
    /// the driver cell). Two snapshots merge by elementwise addition.
    pub fn values(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A signed instantaneous value sharded per rank (queue depths, aliveness).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    cells: Box<[PadI64]>,
}

impl Gauge {
    fn new(name: &'static str, help: &'static str) -> Self {
        let cells = (0..=RANK_SHARDS).map(|_| PadI64::default()).collect();
        Gauge { name, help, cells }
    }

    /// Metric name as rendered.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets `rank`'s shard to `v`.
    #[inline]
    pub fn set(&self, rank: usize, v: i64) {
        self.cells[shard_of(rank)].0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative) to `rank`'s shard.
    #[inline]
    pub fn add(&self, rank: usize, d: i64) {
        self.cells[shard_of(rank)].0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value of `rank`'s shard.
    pub fn get(&self, rank: usize) -> i64 {
        self.cells[shard_of(rank)].0.load(Ordering::Relaxed)
    }

    /// Sum over all shards.
    pub fn total(&self) -> i64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Buckets for sub-bucket bits `k`: `2^k` exact unit buckets below `2^k`,
/// then `2^k` linear sub-buckets per power-of-two range up to `u64::MAX`.
fn bucket_count(k: u32) -> usize {
    (65 - k as usize) << k
}

/// Maps a value to its bucket. Values below `2^k` are exact; above, the
/// bucket width at value `v` is `2^(floor(log2 v) - k)`, i.e. width/value
/// ≤ `1/2^k`.
fn bucket_index(v: u64, k: u32) -> usize {
    let m = 1u64 << k;
    if v < m {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - k)) - m;
    (((exp - k + 1) as usize) << k) + sub as usize
}

/// The midpoint of bucket `idx` — the reported representative. Any sample
/// in the bucket is within half a bucket width, so the relative error of a
/// quantile answer is ≤ `1/2^(k+1)`.
fn bucket_mid(idx: usize, k: u32) -> u64 {
    let m = 1usize << k;
    if idx < m {
        return idx as u64;
    }
    let exp = (idx >> k) as u32 + k - 1;
    let sub = (idx & (m - 1)) as u64;
    let width = 1u64 << (exp - k);
    (1u64 << exp) + sub * width + width / 2
}

/// A lock-free log-linear histogram: `record` is three relaxed `fetch_add`s
/// (bucket, count, sum) into preallocated atomics — no locks, no allocation.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    k: u32,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(name: &'static str, help: &'static str, k: u32) -> Self {
        assert!(
            (1..=10).contains(&k),
            "histogram sub-bucket bits {k} outside 1..=10"
        );
        let buckets = (0..bucket_count(k)).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            name,
            help,
            k,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Metric name as rendered.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v, self.k)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The bound on `|reported_quantile - exact_quantile| / exact_quantile`.
    pub fn max_relative_error(&self) -> f64 {
        1.0 / (1u64 << (self.k + 1)) as f64
    }

    /// A plain-value snapshot for quantile queries and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            k: self.k,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value histogram state. Merging two snapshots (elementwise bucket
/// addition) yields exactly the snapshot of recording the union of their
/// samples — the property the proptest suite pins down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    k: u32,
    buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Empty snapshot with sub-bucket bits `k` (for accumulation).
    pub fn empty(k: u32) -> Self {
        HistogramSnapshot {
            k,
            buckets: vec![0; bucket_count(k)],
            count: 0,
            sum: 0,
        }
    }

    /// Folds `other` in. Panics if the two histograms used different
    /// sub-bucket resolutions (their buckets would not line up).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.k, other.k,
            "merging histograms of different resolution"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// See [`Histogram::max_relative_error`].
    pub fn max_relative_error(&self) -> f64 {
        1.0 / (1u64 << (self.k + 1)) as f64
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), same rank rule as the
    /// serve-bench percentile: the sample at sorted index
    /// `round((count-1) * q)`, reported as its bucket's midpoint. `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = nearest_rank(self.count, q);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Some(bucket_mid(i, self.k));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    /// One series of a labeled counter family (`family{key="value"}`).
    /// Several entries share a family name; the renderer emits the
    /// HELP/TYPE header once per family and every series under it.
    CounterSeries {
        family: &'static str,
        help: &'static str,
        label_key: &'static str,
        label_value: &'static str,
        counter: &'static Counter,
    },
    Collected {
        name: &'static str,
        help: &'static str,
        kind: &'static str,
        read: Box<dyn Fn() -> u64 + Send + Sync>,
    },
}

impl Metric {
    fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name,
            Metric::Gauge(g) => g.name,
            Metric::Histogram(h) => h.name,
            Metric::CounterSeries { family, .. } => family,
            Metric::Collected { name, .. } => name,
        }
    }

    fn kind_str(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
            Metric::CounterSeries { .. } => "labeled counter",
            Metric::Collected { kind, .. } => kind,
        }
    }
}

fn registry() -> &'static Mutex<Vec<Metric>> {
    static REGISTRY: OnceLock<Mutex<Vec<Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

// The only panic under the registry lock is the kind-mismatch check, which
// fires before any mutation — so a poisoned lock still guards a valid Vec
// and every lock site recovers with `unwrap_or_else(|e| e.into_inner())`.

/// Registers (or finds) the counter `name`. Registration takes the registry
/// lock and allocates; later calls for the same name return the same
/// `&'static` handle, so instrumentation sites cache it in a `OnceLock` and
/// the hot path never touches the lock again.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(m) = reg.iter().find(|m| m.name() == name) {
        match m {
            Metric::Counter(c) => return c,
            other => panic!(
                "metric '{name}' already registered as a {}",
                other.kind_str()
            ),
        }
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new(name, help)));
    reg.push(Metric::Counter(c));
    c
}

/// Registers (or finds) the gauge `name`. See [`counter`].
pub fn gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(m) = reg.iter().find(|m| m.name() == name) {
        match m {
            Metric::Gauge(g) => return g,
            other => panic!(
                "metric '{name}' already registered as a {}",
                other.kind_str()
            ),
        }
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new(name, help)));
    reg.push(Metric::Gauge(g));
    g
}

/// Registers (or finds) the histogram `name` with the default resolution
/// ([`DEFAULT_SUB_BITS`]). See [`counter`].
pub fn histogram(name: &'static str, help: &'static str) -> &'static Histogram {
    histogram_with_bits(name, help, DEFAULT_SUB_BITS)
}

/// Registers (or finds) the histogram `name` with `2^k` sub-buckets per
/// power-of-two range (quantile relative error ≤ `1/2^(k+1)`).
pub fn histogram_with_bits(name: &'static str, help: &'static str, k: u32) -> &'static Histogram {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(m) = reg.iter().find(|m| m.name() == name) {
        match m {
            Metric::Histogram(h) => return h,
            other => panic!(
                "metric '{name}' already registered as a {}",
                other.kind_str()
            ),
        }
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name, help, k)));
    reg.push(Metric::Histogram(h));
    h
}

/// Registers (or finds) one series of the labeled counter family `name`:
/// rendered as `name{label_key="label_value"} <total>`, with the family's
/// `# HELP`/`# TYPE` header emitted exactly once however many series it
/// grows. Idempotent by `(name, label_value)`; the whole family must not
/// collide with an unlabeled metric of the same name.
///
/// # Panics
/// If `name` is already registered as an unlabeled metric, or an existing
/// series of the family uses a different `label_key`.
pub fn counter_with_label(
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
    label_value: &'static str,
) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for m in reg.iter() {
        match m {
            Metric::CounterSeries {
                family,
                label_key: key,
                label_value: value,
                counter,
                ..
            } if *family == name => {
                assert_eq!(
                    *key, label_key,
                    "labeled counter '{name}' already uses label key '{key}'"
                );
                if *value == label_value {
                    return counter;
                }
            }
            other if other.name() == name => panic!(
                "metric '{name}' already registered as a {}",
                other.kind_str()
            ),
            _ => {}
        }
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new(name, help)));
    reg.push(Metric::CounterSeries {
        family: name,
        help,
        label_key,
        label_value,
        counter: c,
    });
    c
}

/// Registers a scrape-time counter: `read` is evaluated on every render.
/// For monotonic values maintained outside the registry. Idempotent by
/// name (a second registration is ignored).
pub fn collect_counter(
    name: &'static str,
    help: &'static str,
    read: impl Fn() -> u64 + Send + Sync + 'static,
) {
    collect(name, help, "counter", Box::new(read));
}

/// Registers a scrape-time gauge. See [`collect_counter`].
pub fn collect_gauge(
    name: &'static str,
    help: &'static str,
    read: impl Fn() -> u64 + Send + Sync + 'static,
) {
    collect(name, help, "gauge", Box::new(read));
}

fn collect(
    name: &'static str,
    help: &'static str,
    kind: &'static str,
    read: Box<dyn Fn() -> u64 + Send + Sync>,
) {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if reg.iter().any(|m| m.name() == name) {
        return;
    }
    reg.push(Metric::Collected {
        name,
        help,
        kind,
        read,
    });
}

/// Renders every registered metric in the Prometheus text exposition
/// format (v0.0.4): `# HELP` + `# TYPE` per family, the driver shard as the
/// unlabeled base series, and one `{rank="N"}` series per rank shard that
/// has recorded anything. Histograms render as summaries with
/// p50/p99/p99.9 quantiles plus `_sum`/`_count`.
pub fn render_prometheus() -> String {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::with_capacity(4096);
    let mut families_done: Vec<&str> = Vec::new();
    for m in reg.iter() {
        match m {
            Metric::CounterSeries { family, help, .. } => {
                // All series of a family render together under one header,
                // when the renderer reaches the family's first series.
                if families_done.contains(family) {
                    continue;
                }
                families_done.push(family);
                header(&mut out, family, help, "counter");
                for series in reg.iter() {
                    if let Metric::CounterSeries {
                        family: f,
                        label_key,
                        label_value,
                        counter,
                        ..
                    } = series
                    {
                        if f == family {
                            out.push_str(&format!(
                                "{family}{{{label_key}=\"{label_value}\"}} {}\n",
                                counter.total()
                            ));
                        }
                    }
                }
            }
            Metric::Counter(c) => {
                header(&mut out, c.name, c.help, "counter");
                out.push_str(&format!("{} {}\n", c.name, c.get(DRIVER)));
                for rank in 0..RANK_SHARDS {
                    let v = c.get(rank);
                    if v != 0 {
                        out.push_str(&format!("{}{{rank=\"{rank}\"}} {v}\n", c.name));
                    }
                }
            }
            Metric::Gauge(g) => {
                header(&mut out, g.name, g.help, "gauge");
                out.push_str(&format!("{} {}\n", g.name, g.get(DRIVER)));
                for rank in 0..RANK_SHARDS {
                    let v = g.get(rank);
                    if v != 0 {
                        out.push_str(&format!("{}{{rank=\"{rank}\"}} {v}\n", g.name));
                    }
                }
            }
            Metric::Histogram(h) => {
                header(&mut out, h.name, h.help, "summary");
                let snap = h.snapshot();
                for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                    match snap.quantile(q) {
                        Some(v) => {
                            out.push_str(&format!("{}{{quantile=\"{label}\"}} {v}\n", h.name))
                        }
                        None => out.push_str(&format!("{}{{quantile=\"{label}\"}} NaN\n", h.name)),
                    }
                }
                out.push_str(&format!("{}_sum {}\n", h.name, snap.sum));
                out.push_str(&format!("{}_count {}\n", h.name, snap.count));
            }
            Metric::Collected {
                name,
                help,
                kind,
                read,
            } => {
                header(&mut out, name, help, kind);
                out.push_str(&format!("{name} {}\n", read()));
            }
        }
    }
    out
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_exact_below_m() {
        let k = DEFAULT_SUB_BITS;
        for v in 0..(1u64 << k) {
            assert_eq!(bucket_index(v, k), v as usize, "exact region");
            assert_eq!(bucket_mid(v as usize, k), v);
        }
        let mut last = 0usize;
        for shift in 0..60 {
            let v = 1u64 << shift;
            let idx = bucket_index(v, k);
            assert!(idx >= last, "indices grow with value");
            last = idx;
        }
        assert!(bucket_index(u64::MAX, k) < bucket_count(k));
    }

    #[test]
    fn bucket_mid_is_within_relative_error_of_any_member() {
        let k = DEFAULT_SUB_BITS;
        let bound = 1.0 / (1u64 << (k + 1)) as f64;
        for v in [33u64, 100, 1023, 1024, 1025, 987_654, u32::MAX as u64 * 7] {
            let mid = bucket_mid(bucket_index(v, k), k);
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            assert!(rel <= bound, "v={v} mid={mid} rel={rel} > {bound}");
        }
    }

    #[test]
    fn quantiles_match_oracle_on_a_small_set() {
        let h = Histogram::new("t_q", "", DEFAULT_SUB_BITS);
        let mut samples: Vec<u64> = (1..=100).map(|i| i * 37).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let oracle = samples[((samples.len() - 1) as f64 * q).round() as usize];
            let got = snap.quantile(q).unwrap();
            let rel = (got as f64 - oracle as f64).abs() / oracle as f64;
            assert!(rel <= snap.max_relative_error(), "q={q}: {got} vs {oracle}");
        }
    }

    #[test]
    fn counter_shards_by_rank_and_driver_is_unlabeled() {
        let c = Counter::new("t_c", "");
        c.inc(3);
        c.add(3, 4);
        c.inc(DRIVER);
        assert_eq!(c.get(3), 5);
        assert_eq!(c.get(DRIVER), 1);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let a = counter("pdeml_test_idempotent_total", "h");
        let b = counter("pdeml_test_idempotent_total", "h");
        assert!(std::ptr::eq(a, b), "same name returns the same handle");
        let caught = std::panic::catch_unwind(|| {
            let _ = gauge("pdeml_test_idempotent_total", "h");
        });
        assert!(caught.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn nearest_rank_pins_the_shared_rule() {
        assert_eq!(nearest_rank(0, 0.5), 0);
        assert_eq!(nearest_rank(1, 0.999), 0);
        assert_eq!(nearest_rank(4, 0.0), 0);
        assert_eq!(nearest_rank(4, 0.5), 2); // round(1.5) = 2
        assert_eq!(nearest_rank(4, 1.0), 3);
        assert_eq!(nearest_rank(1000, 0.999), 998); // round(999 * 0.999)
        assert_eq!(nearest_rank(4, -3.0), 0, "q clamps into [0, 1]");
        assert_eq!(nearest_rank(4, 7.0), 3);
    }

    #[test]
    fn labeled_counter_family_renders_one_header_many_series() {
        let a = counter_with_label("pdeml_test_labeled_total", "by reason", "reason", "full");
        let b = counter_with_label("pdeml_test_labeled_total", "by reason", "reason", "slo");
        let a2 = counter_with_label("pdeml_test_labeled_total", "by reason", "reason", "full");
        assert!(std::ptr::eq(a, a2), "same (name, value) → same handle");
        assert!(!std::ptr::eq(a, b), "different label values are distinct");
        a.add(DRIVER, 3);
        b.inc(DRIVER);
        let text = render_prometheus();
        assert_eq!(
            text.matches("# TYPE pdeml_test_labeled_total counter")
                .count(),
            1,
            "one TYPE header per family:\n{text}"
        );
        assert!(text.contains("pdeml_test_labeled_total{reason=\"full\"} 3"));
        assert!(text.contains("pdeml_test_labeled_total{reason=\"slo\"} 1"));
        // The family name is reserved: an unlabeled registration collides.
        let caught = std::panic::catch_unwind(|| {
            let _ = counter("pdeml_test_labeled_total", "x");
        });
        assert!(caught.is_err(), "family vs unlabeled collision must panic");
        let caught = std::panic::catch_unwind(|| {
            let _ = counter_with_label("pdeml_test_labeled_total", "x", "cause", "full");
        });
        assert!(caught.is_err(), "label-key mismatch must panic");
    }

    #[test]
    fn render_emits_help_type_and_rank_labels() {
        let c = counter("pdeml_test_render_total", "rendered");
        c.add(2, 7);
        c.add(DRIVER, 1);
        let h = histogram("pdeml_test_render_us", "latency");
        h.record(500);
        let text = render_prometheus();
        assert!(text.contains("# HELP pdeml_test_render_total rendered"));
        assert!(text.contains("# TYPE pdeml_test_render_total counter"));
        assert!(text.contains("pdeml_test_render_total 1\n"));
        assert!(text.contains("pdeml_test_render_total{rank=\"2\"} 7"));
        assert!(text.contains("# TYPE pdeml_test_render_us summary"));
        assert!(text.contains("pdeml_test_render_us{quantile=\"0.99\"}"));
        assert!(text.contains("pdeml_test_render_us_count 1"));
    }
}
