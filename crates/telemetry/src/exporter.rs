//! Minimal std-only HTTP exporter: `/metrics`, `/healthz`, `/readyz`.
//!
//! Hand-rolled over `std::net::TcpListener` so the telemetry crate stays
//! dependency-free — the exporter is the tool you reach for when things are
//! broken, so it must not share failure modes with the stack it observes.
//! One accept-loop thread, one request per connection, no keep-alive: a
//! scrape every few seconds from one or two collectors is the design load.

use crate::health::HealthModel;
use crate::render_prometheus;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running exporter. Dropping it stops the accept loop and joins the
/// serving thread.
pub struct Exporter {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Exporter {
    /// The bound address — useful when serving on port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals the accept loop to exit and joins it.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // The loop is parked in accept(); poke it awake.
            let _ = TcpStream::connect(self.local_addr);
            let _ = handle.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and serves
/// the global registry plus `health` on a named background thread.
pub fn serve(addr: &str, health: Arc<HealthModel>) -> std::io::Result<Exporter> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("pdeml-metrics".into())
        .spawn(move || accept_loop(listener, stop2, health))
        .expect("spawn metrics exporter thread");
    Ok(Exporter {
        local_addr,
        stop,
        handle: Some(handle),
    })
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, health: Arc<HealthModel>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // One slow or wedged client must not hold the loop forever: the
        // whole request head gets the single deadline read_request_head
        // arms, then the connection is answered and dropped.
        let _ = handle_conn(stream, &health);
    }
}

/// Longest request head the exporter will buffer before answering with
/// whatever has arrived — a scrape request line is tens of bytes.
const MAX_REQUEST_HEAD: usize = 4096;

/// Total budget for reading one request head, armed ONCE per connection:
/// every retry read gets the *remaining* budget, never a fresh 500 ms, so a
/// trickling client is cut off after 500 ms wall-clock total.
const REQUEST_DEADLINE: Duration = Duration::from_millis(500);

/// Reads a connection's request head until the blank line (`\r\n\r\n`),
/// EOF, the size bound, or the deadline — whichever comes first.
///
/// TCP does not preserve write boundaries: a client's single `write` of
/// `GET /metrics …` may arrive as several segments, so a single `read` can
/// observe half a request line. Looping until the head terminator is the
/// fix; the bound and the single shared deadline keep a malicious or wedged
/// client from holding the accept loop.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while head.len() < MAX_REQUEST_HEAD {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break; // budget spent: answer whatever arrived
        }
        stream.set_read_timeout(Some(remaining))?;
        let n = match stream.read(&mut chunk) {
            Ok(0) => break, // client finished sending
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        head.extend_from_slice(&chunk[..n]);
        // The terminator can straddle the previous chunk boundary — rescan
        // from 3 bytes before this chunk, not the whole head.
        let from = head.len().saturating_sub(n + 3);
        if head[from..].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    Ok(head)
}

fn handle_conn(mut stream: TcpStream, health: &HealthModel) -> std::io::Result<()> {
    let head = read_request_head(&mut stream)?;
    let request = String::from_utf8_lossy(&head);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(),
        ),
        "/healthz" => {
            let report = health.report();
            let status = if report.overall == crate::health::Health::Unhealthy {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            (status, "text/plain; charset=utf-8", report.describe())
        }
        "/readyz" => {
            let report = health.report();
            let status = if report.overall == crate::health::Health::Healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, "text/plain; charset=utf-8", report.describe())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics /healthz /readyz\n".to_string(),
        ),
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::CheckStatus;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        let status = body.lines().next().unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let c = crate::counter("pdeml_test_exporter_total", "exporter test");
        c.inc(crate::DRIVER);
        let health = Arc::new(HealthModel::new());
        health.register("always_ok", || CheckStatus::Ok);
        let mut exporter = serve("127.0.0.1:0", health).unwrap();
        let addr = exporter.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE pdeml_test_exporter_total counter"));
        assert!(body.contains("pdeml_test_exporter_total 1"));

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"));
        assert!(body.contains("overall: healthy"));

        let (status, _) = get(addr, "/readyz");
        assert!(status.contains("200"));

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"));

        exporter.shutdown();
    }

    #[test]
    fn parses_request_line_split_across_tcp_segments() {
        // Regression: handle_conn used to issue ONE read and parse whatever
        // it got, so a request line arriving in several TCP segments was
        // misparsed (typically as path "/" -> 404). Write the request one
        // byte per segment to force the worst-case split.
        let c = crate::counter("pdeml_test_split_read_total", "split-read test");
        c.inc(crate::DRIVER);
        let health = Arc::new(HealthModel::new());
        let exporter = serve("127.0.0.1:0", health).unwrap();
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for byte in b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(
            body.lines().next().unwrap_or("").contains("200"),
            "split request must still route to /metrics: {body}"
        );
        assert!(body.contains("pdeml_test_split_read_total"));
    }

    #[test]
    fn bounds_unterminated_request_heads() {
        // A head that never sends the blank line is cut off at
        // MAX_REQUEST_HEAD and answered from what arrived, instead of
        // stalling the accept loop until the deadline. The total write is
        // exactly MAX_REQUEST_HEAD so the server drains every byte before
        // closing (no RST racing the response).
        let health = Arc::new(HealthModel::new());
        let exporter = serve("127.0.0.1:0", health).unwrap();
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        let line = b"GET /healthz HTTP/1.1\r\n";
        stream.write_all(line).unwrap();
        stream
            .write_all(&vec![b'a'; MAX_REQUEST_HEAD - line.len()])
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(
            body.lines().next().unwrap_or("").contains("200"),
            "bounded head must still answer the parsed route: {body}"
        );
    }

    #[test]
    fn degraded_fails_readyz_only() {
        let health = Arc::new(HealthModel::new());
        health.register("degraded", || CheckStatus::Degraded("test".into()));
        let exporter = serve("127.0.0.1:0", health).unwrap();
        let addr = exporter.local_addr();
        let (status, _) = get(addr, "/healthz");
        assert!(status.contains("200"));
        let (status, body) = get(addr, "/readyz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("overall: degraded"));
    }
}
