//! Minimal std-only HTTP exporter: `/metrics`, `/healthz`, `/readyz`.
//!
//! Hand-rolled over `std::net::TcpListener` so the telemetry crate stays
//! dependency-free — the exporter is the tool you reach for when things are
//! broken, so it must not share failure modes with the stack it observes.
//! One accept-loop thread, one request per connection, no keep-alive: a
//! scrape every few seconds from one or two collectors is the design load.

use crate::health::HealthModel;
use crate::render_prometheus;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running exporter. Dropping it stops the accept loop and joins the
/// serving thread.
pub struct Exporter {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Exporter {
    /// The bound address — useful when serving on port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals the accept loop to exit and joins it.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // The loop is parked in accept(); poke it awake.
            let _ = TcpStream::connect(self.local_addr);
            let _ = handle.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and serves
/// the global registry plus `health` on a named background thread.
pub fn serve(addr: &str, health: Arc<HealthModel>) -> std::io::Result<Exporter> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("pdeml-metrics".into())
        .spawn(move || accept_loop(listener, stop2, health))
        .expect("spawn metrics exporter thread");
    Ok(Exporter {
        local_addr,
        stop,
        handle: Some(handle),
    })
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, health: Arc<HealthModel>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // One slow or wedged client must not hold the loop forever.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = handle_conn(stream, &health);
    }
}

fn handle_conn(mut stream: TcpStream, health: &HealthModel) -> std::io::Result<()> {
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(),
        ),
        "/healthz" => {
            let report = health.report();
            let status = if report.overall == crate::health::Health::Unhealthy {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            (status, "text/plain; charset=utf-8", report.describe())
        }
        "/readyz" => {
            let report = health.report();
            let status = if report.overall == crate::health::Health::Healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, "text/plain; charset=utf-8", report.describe())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics /healthz /readyz\n".to_string(),
        ),
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::CheckStatus;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        let status = body.lines().next().unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let c = crate::counter("pdeml_test_exporter_total", "exporter test");
        c.inc(crate::DRIVER);
        let health = Arc::new(HealthModel::new());
        health.register("always_ok", || CheckStatus::Ok);
        let mut exporter = serve("127.0.0.1:0", health).unwrap();
        let addr = exporter.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE pdeml_test_exporter_total counter"));
        assert!(body.contains("pdeml_test_exporter_total 1"));

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"));
        assert!(body.contains("overall: healthy"));

        let (status, _) = get(addr, "/readyz");
        assert!(status.contains("200"));

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"));

        exporter.shutdown();
    }

    #[test]
    fn degraded_fails_readyz_only() {
        let health = Arc::new(HealthModel::new());
        health.register("degraded", || CheckStatus::Degraded("test".into()));
        let exporter = serve("127.0.0.1:0", health).unwrap();
        let addr = exporter.local_addr();
        let (status, _) = get(addr, "/healthz");
        assert!(status.contains("200"));
        let (status, body) = get(addr, "/readyz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("overall: degraded"));
    }
}
