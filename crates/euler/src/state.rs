//! The perturbation state `(p', ρ', u', v')` on a grid.
//!
//! Channel order follows the paper's §II ("pressure, density, velocity in
//! x-direction and velocity in y-direction") so tensors fed to the network
//! line up with Table I without shuffling.

use pde_tensor::{Grid2, Tensor3};

/// Number of physical fields.
pub const N_FIELDS: usize = 4;

/// Channel names in tensor order.
pub const FIELD_NAMES: [&str; N_FIELDS] = ["pressure", "density", "velocity_x", "velocity_y"];

/// Channel index of the pressure perturbation.
pub const IDX_P: usize = 0;
/// Channel index of the density perturbation.
pub const IDX_RHO: usize = 1;
/// Channel index of the x-velocity perturbation.
pub const IDX_U: usize = 2;
/// Channel index of the y-velocity perturbation.
pub const IDX_V: usize = 3;

/// The full perturbation state on an `ny × nx` cell-centered grid.
#[derive(Clone, Debug, PartialEq)]
pub struct EulerState {
    /// Pressure perturbation p'.
    pub p: Grid2,
    /// Density perturbation ρ'.
    pub rho: Grid2,
    /// x-velocity perturbation u'.
    pub u: Grid2,
    /// y-velocity perturbation v'.
    pub v: Grid2,
}

impl EulerState {
    /// Quiescent state (all perturbations zero).
    pub fn zeros(ny: usize, nx: usize) -> Self {
        Self {
            p: Grid2::zeros(ny, nx),
            rho: Grid2::zeros(ny, nx),
            u: Grid2::zeros(ny, nx),
            v: Grid2::zeros(ny, nx),
        }
    }

    /// Grid shape `(ny, nx)`.
    pub fn shape(&self) -> (usize, usize) {
        self.p.shape()
    }

    /// Shape consistency check across the four fields.
    pub fn validate(&self) {
        let s = self.p.shape();
        assert_eq!(self.rho.shape(), s, "EulerState: rho shape mismatch");
        assert_eq!(self.u.shape(), s, "EulerState: u shape mismatch");
        assert_eq!(self.v.shape(), s, "EulerState: v shape mismatch");
    }

    /// Borrows the field with tensor-channel index `idx`
    /// (see [`FIELD_NAMES`]).
    pub fn field(&self, idx: usize) -> &Grid2 {
        match idx {
            IDX_P => &self.p,
            IDX_RHO => &self.rho,
            IDX_U => &self.u,
            IDX_V => &self.v,
            _ => panic!("EulerState::field: index {idx} out of range"),
        }
    }

    /// Mutably borrows the field with tensor-channel index `idx`.
    pub fn field_mut(&mut self, idx: usize) -> &mut Grid2 {
        match idx {
            IDX_P => &mut self.p,
            IDX_RHO => &mut self.rho,
            IDX_U => &mut self.u,
            IDX_V => &mut self.v,
            _ => panic!("EulerState::field_mut: index {idx} out of range"),
        }
    }

    /// Packs the state into a 4-channel tensor `(p, ρ, u, v)`.
    pub fn to_tensor(&self) -> Tensor3 {
        self.validate();
        Tensor3::from_channels(&[
            self.p.clone(),
            self.rho.clone(),
            self.u.clone(),
            self.v.clone(),
        ])
    }

    /// Unpacks a 4-channel tensor back into a state.
    ///
    /// # Panics
    /// If the tensor does not have exactly [`N_FIELDS`] channels.
    pub fn from_tensor(t: &Tensor3) -> Self {
        assert_eq!(
            t.c(),
            N_FIELDS,
            "EulerState::from_tensor: expected {N_FIELDS} channels"
        );
        Self {
            p: t.channel_grid(IDX_P),
            rho: t.channel_grid(IDX_RHO),
            u: t.channel_grid(IDX_U),
            v: t.channel_grid(IDX_V),
        }
    }

    /// `self += alpha * other` on every field (used by RK stages).
    pub fn axpy(&mut self, alpha: f64, other: &EulerState) {
        self.p.axpy(alpha, &other.p);
        self.rho.axpy(alpha, &other.rho);
        self.u.axpy(alpha, &other.u);
        self.v.axpy(alpha, &other.v);
    }

    /// Linear combination `a*x + b*y` (fresh allocation).
    pub fn lincomb(a: f64, x: &EulerState, b: f64, y: &EulerState) -> EulerState {
        assert_eq!(x.shape(), y.shape(), "EulerState::lincomb: shape mismatch");
        let mut out = x.clone();
        for idx in 0..N_FIELDS {
            let xo = out.field_mut(idx).as_mut_slice();
            let yv = y.field(idx).as_slice();
            for (o, &yy) in xo.iter_mut().zip(yv) {
                *o = a * *o + b * yy;
            }
        }
        out
    }

    /// Largest absolute perturbation over all fields.
    pub fn max_abs(&self) -> f64 {
        self.p
            .max_abs()
            .max(self.rho.max_abs())
            .max(self.u.max_abs())
            .max(self.v.max_abs())
    }

    /// Acoustic "energy" `Σ (p'²/(ρc²) + ρ_c(u'²+v'²)) / 2` per cell —
    /// a Lyapunov function of the linear system on periodic domains.
    pub fn acoustic_energy(&self, rho_c: f64, sound_speed: f64) -> f64 {
        let c2 = sound_speed * sound_speed;
        let mut e = 0.0;
        for k in 0..self.p.len() {
            let p = self.p.as_slice()[k];
            let u = self.u.as_slice()[k];
            let v = self.v.as_slice()[k];
            e += 0.5 * (p * p / (rho_c * c2) + rho_c * (u * u + v * v));
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_round_trip() {
        let mut s = EulerState::zeros(3, 4);
        s.p[(1, 2)] = 5.0;
        s.rho[(0, 0)] = -1.0;
        s.u[(2, 3)] = 0.25;
        s.v[(1, 1)] = 9.0;
        let t = s.to_tensor();
        assert_eq!(t.shape(), (4, 3, 4));
        assert_eq!(t[(IDX_P, 1, 2)], 5.0);
        assert_eq!(t[(IDX_V, 1, 1)], 9.0);
        assert_eq!(EulerState::from_tensor(&t), s);
    }

    #[test]
    fn field_indices_match_names() {
        assert_eq!(FIELD_NAMES[IDX_P], "pressure");
        assert_eq!(FIELD_NAMES[IDX_RHO], "density");
        assert_eq!(FIELD_NAMES[IDX_U], "velocity_x");
        assert_eq!(FIELD_NAMES[IDX_V], "velocity_y");
    }

    #[test]
    fn lincomb_matches_axpy() {
        let mut a = EulerState::zeros(2, 2);
        a.p[(0, 0)] = 1.0;
        let mut b = EulerState::zeros(2, 2);
        b.p[(0, 0)] = 2.0;
        let l = EulerState::lincomb(0.5, &a, 0.25, &b);
        assert_eq!(l.p[(0, 0)], 1.0);
        let mut c = a.clone();
        c.axpy(1.0, &b);
        assert_eq!(c.p[(0, 0)], 3.0);
    }

    #[test]
    fn acoustic_energy_positive_definite() {
        let mut s = EulerState::zeros(2, 2);
        assert_eq!(s.acoustic_energy(1.0, 1.0), 0.0);
        s.u[(0, 0)] = 2.0;
        assert!((s.acoustic_energy(1.0, 1.0) - 2.0).abs() < 1e-12);
        s.p[(1, 1)] = 3.0;
        assert!((s.acoustic_energy(1.0, 1.0) - (2.0 + 4.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn field_rejects_bad_index() {
        let s = EulerState::zeros(2, 2);
        let _ = s.field(4);
    }
}
