//! Physical and numerical fluxes of the linearized Euler system.
//!
//! With state `q = (p', ρ', u', v')` (tensor-channel order) the system is
//! `q_t + A q_x + B q_y = 0`. This module exposes the flux Jacobians and the
//! Rusanov (local Lax–Friedrichs) interface flux built from them.

use crate::config::Background;
use crate::state::N_FIELDS;

/// A per-cell state vector in channel order `(p, ρ, u, v)`.
pub type Q = [f64; N_FIELDS];

/// Physical x-flux `F(q) = A q`:
///
/// ```text
/// F_p   = u_c p' + γ p_c u'
/// F_ρ   = u_c ρ' + ρ_c u'
/// F_u   = u_c u' + p'/ρ_c
/// F_v   = u_c v'
/// ```
#[inline]
pub fn flux_x(q: &Q, bg: &Background) -> Q {
    let [p, rho, u, v] = *q;
    [
        bg.u * p + bg.gamma * bg.p * u,
        bg.u * rho + bg.rho * u,
        bg.u * u + p / bg.rho,
        bg.u * v,
    ]
}

/// Physical y-flux `G(q) = B q` (mirror of [`flux_x`] with `v_c` and the
/// y-velocity component).
#[inline]
pub fn flux_y(q: &Q, bg: &Background) -> Q {
    let [p, rho, u, v] = *q;
    [
        bg.v * p + bg.gamma * bg.p * v,
        bg.v * rho + bg.rho * v,
        bg.v * u,
        bg.v * v + p / bg.rho,
    ]
}

/// Rusanov (local Lax–Friedrichs) numerical flux at an interface between
/// left state `ql` and right state `qr` in the x-direction:
/// `F* = ½(F(ql)+F(qr)) − ½ λ (qr − ql)` with `λ = |u_c| + c`.
#[inline]
pub fn rusanov_x(ql: &Q, qr: &Q, bg: &Background, lambda: f64) -> Q {
    let fl = flux_x(ql, bg);
    let fr = flux_x(qr, bg);
    let mut out = [0.0; N_FIELDS];
    for k in 0..N_FIELDS {
        out[k] = 0.5 * (fl[k] + fr[k]) - 0.5 * lambda * (qr[k] - ql[k]);
    }
    out
}

/// Rusanov flux in the y-direction with `λ = |v_c| + c`.
#[inline]
pub fn rusanov_y(ql: &Q, qr: &Q, bg: &Background, lambda: f64) -> Q {
    let fl = flux_y(ql, bg);
    let fr = flux_y(qr, bg);
    let mut out = [0.0; N_FIELDS];
    for k in 0..N_FIELDS {
        out[k] = 0.5 * (fl[k] + fr[k]) - 0.5 * lambda * (qr[k] - ql[k]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bg_rest() -> Background {
        Background::unit() // u_c = v_c = 0, c = 1
    }

    #[test]
    fn flux_is_linear() {
        let bg = Background::paper();
        let q1: Q = [1.0, 0.5, -0.25, 2.0];
        let q2: Q = [-2.0, 1.0, 3.0, 0.0];
        let sum: Q = std::array::from_fn(|k| 2.0 * q1[k] + 3.0 * q2[k]);
        let f1 = flux_x(&q1, &bg);
        let f2 = flux_x(&q2, &bg);
        let fs = flux_x(&sum, &bg);
        for k in 0..N_FIELDS {
            assert!((fs[k] - (2.0 * f1[k] + 3.0 * f2[k])).abs() < 1e-9);
        }
    }

    #[test]
    fn x_flux_at_rest_known_values() {
        let bg = bg_rest();
        // q = (p, ρ, u, v); with u_c = 0: F = (γp_c·u, ρ_c·u, p/ρ_c, 0).
        let q: Q = [2.0, 5.0, 3.0, 7.0];
        let f = flux_x(&q, &bg);
        assert!((f[0] - 1.0 * 3.0).abs() < 1e-12); // γ p_c = 1
        assert!((f[1] - 3.0).abs() < 1e-12); // ρ_c = 1
        assert!((f[2] - 2.0).abs() < 1e-12); // p / ρ_c
        assert_eq!(f[3], 0.0);
    }

    #[test]
    fn y_flux_mirrors_x_flux() {
        let bg = bg_rest();
        // Swapping u ↔ v maps F ↔ G at rest.
        let q: Q = [2.0, 5.0, 3.0, 7.0];
        let q_swapped: Q = [2.0, 5.0, 7.0, 3.0];
        let f = flux_x(&q, &bg);
        let g = flux_y(&q_swapped, &bg);
        assert_eq!(f[0], g[0]);
        assert_eq!(f[1], g[1]);
        assert_eq!(f[2], g[3]);
        assert_eq!(f[3], g[2]);
    }

    #[test]
    fn rusanov_consistent_with_physical_flux() {
        // F*(q, q) == F(q).
        let bg = Background::paper();
        let q: Q = [0.3, -0.1, 0.7, -0.4];
        let lam = bg.max_speed_x();
        let f = flux_x(&q, &bg);
        let fs = rusanov_x(&q, &q, &bg, lam);
        for k in 0..N_FIELDS {
            assert!((f[k] - fs[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn rusanov_adds_dissipation_on_jumps() {
        let bg = bg_rest();
        let ql: Q = [1.0, 0.0, 0.0, 0.0];
        let qr: Q = [0.0, 0.0, 0.0, 0.0];
        let f = rusanov_x(&ql, &qr, &bg, 1.0);
        // ½(F(ql)+F(qr)) has F_p = 0, dissipation adds ½λ(ql - qr).
        assert!((f[0] - 0.5).abs() < 1e-12);
    }
}
