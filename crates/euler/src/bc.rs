//! Ghost-cell boundary conditions.
//!
//! The paper's test case uses **outflow boundaries**: "the pressure
//! perturbation is set to zero, while all other quantities (density and
//! velocity) have homogenized Neumann boundary conditions" (§IV-A). Note
//! that this is a *pressure-release* condition — acoustically it reflects
//! waves with inverted phase rather than absorbing them; energy leaves only
//! through the upwind part of the numerical flux. A characteristic
//! [`Boundary::Absorbing`] condition is provided as an extension for users
//! who want a genuinely non-reflecting far field, plus periodic and
//! reflective-wall conditions for verification (plane-wave convergence,
//! energy conservation).

use crate::config::Background;
use crate::flux::Q;
use crate::state::{IDX_P, IDX_RHO, IDX_U, IDX_V};

/// Boundary-condition family applied to all four edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Boundary {
    /// p' = 0 on the edge (odd ghost extension), zero-gradient for ρ', u', v'
    /// (even ghost extension) — the paper's setup.
    Outflow,
    /// Wrap-around domain.
    Periodic,
    /// Solid wall: normal velocity odd, everything else even.
    Reflective,
    /// Characteristic non-reflecting condition: the incoming acoustic
    /// characteristic is set to zero, the outgoing one and the entropy /
    /// tangential-velocity modes are extrapolated.
    Absorbing,
}

/// Which domain edge a ghost cell sits behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// x = x0 (outward normal −x).
    Left,
    /// x = x0 + lx (outward normal +x).
    Right,
    /// y = y0 (outward normal −y).
    Bottom,
    /// y = y0 + ly (outward normal +y).
    Top,
}

impl Edge {
    /// True for edges whose normal is along x.
    #[inline]
    pub fn normal_is_x(&self) -> bool {
        matches!(self, Edge::Left | Edge::Right)
    }

    /// Sign of the outward normal along its axis (+1 for Right/Top).
    #[inline]
    pub fn outward_sign(&self) -> f64 {
        match self {
            Edge::Right | Edge::Top => 1.0,
            Edge::Left | Edge::Bottom => -1.0,
        }
    }
}

impl Boundary {
    /// Computes the full ghost state behind `edge` from the adjacent
    /// `interior` cell state and (for periodic wrap) the `wrapped` cell
    /// state on the opposite side of the domain.
    pub fn ghost_state(&self, interior: &Q, wrapped: &Q, edge: Edge, bg: &Background) -> Q {
        match self {
            Boundary::Outflow => {
                let mut g = *interior;
                g[IDX_P] = -interior[IDX_P]; // Dirichlet p' = 0 at the face
                g
            }
            Boundary::Periodic => *wrapped,
            Boundary::Reflective => {
                let mut g = *interior;
                let n = if edge.normal_is_x() { IDX_U } else { IDX_V };
                g[n] = -interior[n];
                g
            }
            Boundary::Absorbing => {
                // 1-D characteristic analysis normal to the edge (quiescent
                // or subsonic background): w± = p' ± ρ_c·c·u_n with u_n the
                // outward-normal velocity. The outgoing invariant w+ is
                // extrapolated from the interior; the incoming one w− is set
                // to zero (nothing enters from outside). Entropy
                // (ρ' − p'/c²) and the tangential velocity are extrapolated.
                let c = bg.sound_speed();
                let z = bg.rho * c; // acoustic impedance
                let (n_idx, t_idx) = if edge.normal_is_x() {
                    (IDX_U, IDX_V)
                } else {
                    (IDX_V, IDX_U)
                };
                let sign = edge.outward_sign();
                let un_int = sign * interior[n_idx];
                let w_out = interior[IDX_P] + z * un_int; // leaves the domain
                                                          // Ghost: w_out preserved, w_in = 0.
                let p_g = 0.5 * w_out;
                let un_g = 0.5 * w_out / z;
                let mut g = *interior;
                g[IDX_P] = p_g;
                g[n_idx] = sign * un_g;
                g[t_idx] = interior[t_idx];
                g[IDX_RHO] = interior[IDX_RHO] + (p_g - interior[IDX_P]) / (c * c);
                g
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::N_FIELDS;

    fn bg() -> Background {
        Background::unit() // ρ_c = 1, c = 1 → impedance z = 1
    }

    #[test]
    fn outflow_zeroes_pressure_at_face() {
        let b = Boundary::Outflow;
        let interior: Q = [3.0, 1.0, 2.0, -1.0];
        let g = b.ghost_state(&interior, &[9.0; N_FIELDS], Edge::Right, &bg());
        assert_eq!((interior[IDX_P] + g[IDX_P]) / 2.0, 0.0);
        assert_eq!(g[IDX_RHO], interior[IDX_RHO]);
        assert_eq!(g[IDX_U], interior[IDX_U]);
        assert_eq!(g[IDX_V], interior[IDX_V]);
    }

    #[test]
    fn periodic_uses_wrapped_state() {
        let b = Boundary::Periodic;
        let wrapped: Q = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            b.ghost_state(&[0.0; 4], &wrapped, Edge::Top, &bg()),
            wrapped
        );
    }

    #[test]
    fn reflective_flips_only_normal_velocity() {
        let b = Boundary::Reflective;
        let q: Q = [1.0, 2.0, 3.0, 4.0];
        let gx = b.ghost_state(&q, &[0.0; 4], Edge::Left, &bg());
        assert_eq!(gx, [1.0, 2.0, -3.0, 4.0]);
        let gy = b.ghost_state(&q, &[0.0; 4], Edge::Bottom, &bg());
        assert_eq!(gy, [1.0, 2.0, 3.0, -4.0]);
    }

    #[test]
    fn absorbing_passes_outgoing_wave_unchanged() {
        // A pure outgoing wave at the right edge: p' = z·u' (w− = 0).
        // The ghost must equal the interior — the wave exits untouched.
        let b = Boundary::Absorbing;
        let q: Q = [0.7, 0.7, 0.7, 0.0]; // p = u, z = 1, ρ' = p/c² = p
        let g = b.ghost_state(&q, &[0.0; 4], Edge::Right, &bg());
        for k in 0..N_FIELDS {
            assert!(
                (g[k] - q[k]).abs() < 1e-12,
                "field {k}: {} vs {}",
                g[k],
                q[k]
            );
        }
    }

    #[test]
    fn absorbing_kills_incoming_wave() {
        // A pure incoming wave at the right edge: p' = −z·u' (w+ = 0).
        // The ghost must be fully quiescent in the acoustic variables.
        let b = Boundary::Absorbing;
        let q: Q = [0.5, 0.5, -0.5, 0.2];
        let g = b.ghost_state(&q, &[0.0; 4], Edge::Right, &bg());
        assert!(g[IDX_P].abs() < 1e-12);
        assert!(g[IDX_U].abs() < 1e-12);
        assert_eq!(g[IDX_V], 0.2); // tangential extrapolated
    }

    #[test]
    fn absorbing_left_edge_mirrors_right_edge() {
        // Outgoing at the LEFT edge means u_n = −u > 0, i.e. u < 0.
        let b = Boundary::Absorbing;
        let q: Q = [0.7, 0.7, -0.7, 0.0];
        let g = b.ghost_state(&q, &[0.0; 4], Edge::Left, &bg());
        for k in 0..N_FIELDS {
            assert!((g[k] - q[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn edge_geometry_helpers() {
        assert!(Edge::Left.normal_is_x());
        assert!(!Edge::Top.normal_is_x());
        assert_eq!(Edge::Right.outward_sign(), 1.0);
        assert_eq!(Edge::Bottom.outward_sign(), -1.0);
    }
}
