//! Analytic reference solutions for solver verification.
//!
//! For a quiescent background (`u_c = v_c = 0`) the rightward acoustic
//! plane wave
//!
//! ```text
//! p'(x, t) = A sin(k (x − c t))
//! u'(x, t) = p' / (ρ_c c)
//! ρ'(x, t) = p' / c²
//! v'       = 0
//! ```
//!
//! solves the linearized Euler system exactly. On a periodic domain whose
//! width is an integer number of wavelengths this gives a closed-form state
//! at any time, which the grid-convergence tests compare against.

use crate::config::SolverConfig;
use crate::state::EulerState;

/// Exact plane-wave state at time `t` for wavenumber `k` and amplitude `a`.
///
/// Assumes a quiescent background (asserts `u_c = v_c = 0`).
pub fn plane_wave_x(cfg: &SolverConfig, k: f64, a: f64, t: f64) -> EulerState {
    let bg = cfg.background;
    assert!(
        bg.u == 0.0 && bg.v == 0.0,
        "plane_wave_x: analytic form assumes a quiescent background"
    );
    let c = bg.sound_speed();
    let (ny, nx) = (cfg.ny, cfg.nx);
    let mut s = EulerState::zeros(ny, nx);
    for i in 0..ny {
        for j in 0..nx {
            let (x, _) = cfg.domain.cell_center(nx, ny, i, j);
            let p = a * (k * (x - c * t)).sin();
            s.p[(i, j)] = p;
            s.rho[(i, j)] = p / (c * c);
            s.u[(i, j)] = p / (bg.rho * c);
        }
    }
    s
}

/// Discrete L2 error between two states, averaged over fields and cells.
pub fn l2_error(a: &EulerState, b: &EulerState) -> f64 {
    assert_eq!(a.shape(), b.shape(), "l2_error: shape mismatch");
    let mut sum = 0.0;
    let mut count = 0usize;
    for f in 0..crate::state::N_FIELDS {
        let xa = a.field(f).as_slice();
        let xb = b.field(f).as_slice();
        for (x, y) in xa.iter().zip(xb) {
            sum += (x - y) * (x - y);
            count += 1;
        }
    }
    (sum / count as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::Boundary;
    use crate::config::{Background, Domain, TimeScheme};
    use crate::ic::InitialCondition;
    use crate::solver::EulerSolver;

    fn cfg(n: usize) -> SolverConfig {
        SolverConfig {
            background: Background::unit(),
            domain: Domain::unit(),
            nx: n,
            ny: n,
            cfl: 0.4,
            scheme: TimeScheme::SspRk2,
        }
    }

    fn wave_error_at(n: usize, t_end: f64) -> f64 {
        let c = cfg(n);
        let k = 2.0 * std::f64::consts::PI; // one wavelength on [0,1]
        let ic = InitialCondition::PlaneWaveX { k, amplitude: 0.1 };
        let mut s = EulerSolver::new(c, Boundary::Periodic, &ic);
        s.run_until(t_end);
        let exact = plane_wave_x(&c, k, 0.1, s.time());
        l2_error(s.state(), &exact)
    }

    #[test]
    fn solver_converges_to_plane_wave() {
        // Rusanov + RK2 is formally first-order in space; halving h should
        // reduce the error by roughly 2× (allow ≥ 1.5× for pre-asymptotic
        // grids).
        let e32 = wave_error_at(32, 0.25);
        let e64 = wave_error_at(64, 0.25);
        let e128 = wave_error_at(128, 0.25);
        assert!(
            e32 > e64 && e64 > e128,
            "errors not decreasing: {e32} {e64} {e128}"
        );
        assert!(e32 / e64 > 1.5, "convergence ratio too low: {}", e32 / e64);
        assert!(
            e64 / e128 > 1.5,
            "convergence ratio too low: {}",
            e64 / e128
        );
    }

    #[test]
    fn plane_wave_error_small_on_fine_grid() {
        let e = wave_error_at(128, 0.1);
        assert!(e < 5e-3, "fine-grid error too large: {e}");
    }

    #[test]
    fn analytic_wave_is_periodic_in_time() {
        // After one full period T = λ/c = 1, the exact state returns.
        let c = cfg(16);
        let k = 2.0 * std::f64::consts::PI;
        let a = plane_wave_x(&c, k, 0.2, 0.0);
        let b = plane_wave_x(&c, k, 0.2, 1.0);
        assert!(l2_error(&a, &b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quiescent background")]
    fn analytic_rejects_moving_background() {
        let mut c = cfg(8);
        c.background.u = 10.0;
        let _ = plane_wave_x(&c, 1.0, 0.1, 0.0);
    }
}
