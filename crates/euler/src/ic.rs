//! Initial conditions.

use crate::config::SolverConfig;
use crate::state::EulerState;

/// Initial perturbation fields.
#[derive(Clone, Debug, PartialEq)]
pub enum InitialCondition {
    /// Everything zero (fluid at rest, no perturbation).
    Quiescent,
    /// The paper's Gaussian pressure pulse (§IV-A): fluid at rest, zero
    /// density perturbation, pressure `A · exp(−ln2 · r² / h²)` so that the
    /// *half width* `h` is the radius where the pulse reaches half its
    /// amplitude.
    GaussianPulse {
        /// Pulse center x.
        x0: f64,
        /// Pulse center y.
        y0: f64,
        /// Half width (radius at half amplitude).
        half_width: f64,
        /// Peak pressure perturbation.
        amplitude: f64,
    },
    /// Several superposed Gaussian pulses `(x0, y0, half_width, amplitude)` —
    /// used to diversify training data beyond the single-pulse run.
    MultiPulse(Vec<(f64, f64, f64, f64)>),
    /// A rightward-travelling plane acoustic wave `p' = A sin(k x)` with the
    /// matching `u' = p'/(ρ_c c)`, `ρ' = p'/c²`, `v' = 0`. Exact solution on
    /// periodic domains when the background is at rest; used for
    /// verification.
    PlaneWaveX {
        /// Wavenumber (must make the wave periodic on the domain:
        /// `k = 2π m / lx`).
        k: f64,
        /// Amplitude of the pressure perturbation.
        amplitude: f64,
    },
}

impl InitialCondition {
    /// The paper's pulse: centered at the origin of the `[-1,1]²` domain,
    /// half width 0.3 m, amplitude 0.5.
    pub fn paper_pulse() -> Self {
        InitialCondition::GaussianPulse {
            x0: 0.0,
            y0: 0.0,
            half_width: 0.3,
            amplitude: 0.5,
        }
    }

    /// Samples the condition onto the configured grid.
    pub fn evaluate(&self, cfg: &SolverConfig) -> EulerState {
        let (ny, nx) = (cfg.ny, cfg.nx);
        let mut s = EulerState::zeros(ny, nx);
        match self {
            InitialCondition::Quiescent => {}
            InitialCondition::GaussianPulse {
                x0,
                y0,
                half_width,
                amplitude,
            } => {
                fill_pulse(&mut s, cfg, *x0, *y0, *half_width, *amplitude);
            }
            InitialCondition::MultiPulse(pulses) => {
                for &(x0, y0, hw, a) in pulses {
                    fill_pulse(&mut s, cfg, x0, y0, hw, a);
                }
            }
            InitialCondition::PlaneWaveX { k, amplitude } => {
                let bg = cfg.background;
                let c = bg.sound_speed();
                for i in 0..ny {
                    for j in 0..nx {
                        let (x, _) = cfg.domain.cell_center(nx, ny, i, j);
                        let p = amplitude * (k * x).sin();
                        s.p[(i, j)] = p;
                        s.rho[(i, j)] = p / (c * c);
                        s.u[(i, j)] = p / (bg.rho * c);
                    }
                }
            }
        }
        s
    }
}

fn fill_pulse(s: &mut EulerState, cfg: &SolverConfig, x0: f64, y0: f64, hw: f64, a: f64) {
    assert!(hw > 0.0, "GaussianPulse: half_width must be > 0");
    let ln2 = std::f64::consts::LN_2;
    let (ny, nx) = (cfg.ny, cfg.nx);
    for i in 0..ny {
        for j in 0..nx {
            let (x, y) = cfg.domain.cell_center(nx, ny, i, j);
            let r2 = (x - x0) * (x - x0) + (y - y0) * (y - y0);
            s.p[(i, j)] += a * (-ln2 * r2 / (hw * hw)).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;

    fn cfg(n: usize) -> SolverConfig {
        SolverConfig::paper(n, n)
    }

    #[test]
    fn quiescent_is_zero() {
        let s = InitialCondition::Quiescent.evaluate(&cfg(8));
        assert_eq!(s.max_abs(), 0.0);
    }

    #[test]
    fn paper_pulse_peak_and_half_width() {
        let c = cfg(256);
        let s = InitialCondition::paper_pulse().evaluate(&c);
        // Peak near the center ≈ amplitude.
        let peak = s.p.max_abs();
        assert!((peak - 0.5).abs() < 0.01, "peak {peak}");
        // Find the value at distance ≈ half_width along x from center.
        // Cell centers: x = -1 + (j+0.5)*dx with dx = 2/256.
        let dx: f64 = 2.0 / 256.0;
        let j_center = 128; // x ≈ +dx/2 (closest to 0 from above)
        let j_half = j_center + (0.3 / dx).round() as usize;
        let i_center = 128;
        let v = s.p[(i_center, j_half)];
        assert!(
            (v / peak - 0.5).abs() < 0.05,
            "half-width value ratio {}",
            v / peak
        );
        // Fluid at rest, zero density perturbation.
        assert_eq!(s.u.max_abs(), 0.0);
        assert_eq!(s.v.max_abs(), 0.0);
        assert_eq!(s.rho.max_abs(), 0.0);
    }

    #[test]
    fn multi_pulse_superposes() {
        let single = InitialCondition::GaussianPulse {
            x0: 0.0,
            y0: 0.0,
            half_width: 0.3,
            amplitude: 0.5,
        }
        .evaluate(&cfg(32));
        let double = InitialCondition::MultiPulse(vec![(0.0, 0.0, 0.3, 0.5), (0.0, 0.0, 0.3, 0.5)])
            .evaluate(&cfg(32));
        for k in 0..single.p.len() {
            assert!((double.p.as_slice()[k] - 2.0 * single.p.as_slice()[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn plane_wave_satisfies_acoustic_relations() {
        let c = cfg(64);
        let bg = c.background;
        let k = std::f64::consts::PI; // one full period over lx = 2
        let s = InitialCondition::PlaneWaveX { k, amplitude: 0.1 }.evaluate(&c);
        let cs = bg.sound_speed();
        for idx in 0..s.p.len() {
            let p = s.p.as_slice()[idx];
            assert!((s.u.as_slice()[idx] - p / (bg.rho * cs)).abs() < 1e-12);
            assert!((s.rho.as_slice()[idx] - p / (cs * cs)).abs() < 1e-12);
            assert_eq!(s.v.as_slice()[idx], 0.0);
        }
    }
}
