//! Solver configuration: background state, domain geometry, numerics.

/// The constant background the Euler equations are linearized around
/// (subscript `c` in the paper's Eq. (8)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Background {
    /// Background density `ρ_c` \[kg/m³\].
    pub rho: f64,
    /// Background pressure `p_c` \[Pa\].
    pub p: f64,
    /// Background x-velocity `u_c` \[m/s\].
    pub u: f64,
    /// Background y-velocity `v_c` \[m/s\].
    pub v: f64,
    /// Heat-capacity ratio γ.
    pub gamma: f64,
}

impl Background {
    /// The paper's test case (§IV-A): fluid at rest, `p_c = 1 bar`,
    /// `ρ_c = 1 kg/m³`, γ = 1.4.
    pub fn paper() -> Self {
        Self {
            rho: 1.0,
            p: 1.0e5,
            u: 0.0,
            v: 0.0,
            gamma: 1.4,
        }
    }

    /// A nondimensionalized quiescent background with unit sound speed
    /// (`ρ_c = 1`, `γ p_c = 1`). Handy for analytic tests.
    pub fn unit() -> Self {
        Self {
            rho: 1.0,
            p: 1.0 / 1.4,
            u: 0.0,
            v: 0.0,
            gamma: 1.4,
        }
    }

    /// Speed of sound `c = sqrt(γ p_c / ρ_c)`.
    pub fn sound_speed(&self) -> f64 {
        (self.gamma * self.p / self.rho).sqrt()
    }

    /// Largest signal speed in x: `|u_c| + c`.
    pub fn max_speed_x(&self) -> f64 {
        self.u.abs() + self.sound_speed()
    }

    /// Largest signal speed in y: `|v_c| + c`.
    pub fn max_speed_y(&self) -> f64 {
        self.v.abs() + self.sound_speed()
    }

    /// Sanity checks (positive density/pressure, γ > 1).
    pub fn validate(&self) {
        assert!(self.rho > 0.0, "Background: rho must be > 0");
        assert!(self.p > 0.0, "Background: p must be > 0");
        assert!(self.gamma > 1.0, "Background: gamma must be > 1");
    }
}

/// The rectangular computational domain `[x0, x0+lx] × [y0, y0+ly]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Domain {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Width.
    pub lx: f64,
    /// Height.
    pub ly: f64,
}

impl Domain {
    /// The paper's square domain centered at the origin, `[-1, 1]²`
    /// (the Gaussian pulse sits at `P(0, 0)`).
    pub fn paper() -> Self {
        Self {
            x0: -1.0,
            y0: -1.0,
            lx: 2.0,
            ly: 2.0,
        }
    }

    /// Unit square `[0, 1]²`.
    pub fn unit() -> Self {
        Self {
            x0: 0.0,
            y0: 0.0,
            lx: 1.0,
            ly: 1.0,
        }
    }

    /// Cell size for an `nx × ny` cell-centered grid.
    pub fn cell_size(&self, nx: usize, ny: usize) -> (f64, f64) {
        (self.lx / nx as f64, self.ly / ny as f64)
    }

    /// Center coordinates of cell `(i, j)` — `i` indexes y (row), `j`
    /// indexes x (column), matching the row-major grids of `pde-tensor`.
    pub fn cell_center(&self, nx: usize, ny: usize, i: usize, j: usize) -> (f64, f64) {
        let (dx, dy) = self.cell_size(nx, ny);
        (
            self.x0 + (j as f64 + 0.5) * dx,
            self.y0 + (i as f64 + 0.5) * dy,
        )
    }
}

/// Time-integration scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeScheme {
    /// Forward Euler (first order; only for tests/diagnostics).
    Euler1,
    /// Strong-stability-preserving RK2 (Heun).
    SspRk2,
    /// Classical fourth-order Runge–Kutta.
    Rk4,
}

/// Complete numerical configuration of one solver run.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Background state.
    pub background: Background,
    /// Domain geometry.
    pub domain: Domain,
    /// Cells in x.
    pub nx: usize,
    /// Cells in y.
    pub ny: usize,
    /// CFL number (≤ 1 for stability of the Rusanov scheme).
    pub cfl: f64,
    /// Time scheme.
    pub scheme: TimeScheme,
}

impl SolverConfig {
    /// The paper's configuration at a reduced default resolution; use
    /// `with_resolution(256, 256)` for the full-scale setup.
    pub fn paper(nx: usize, ny: usize) -> Self {
        Self {
            background: Background::paper(),
            domain: Domain::paper(),
            nx,
            ny,
            cfl: 0.45,
            scheme: TimeScheme::SspRk2,
        }
    }

    /// Replaces the resolution.
    pub fn with_resolution(mut self, nx: usize, ny: usize) -> Self {
        self.nx = nx;
        self.ny = ny;
        self
    }

    /// Stable time step from the CFL condition.
    pub fn dt(&self) -> f64 {
        let (dx, dy) = self.domain.cell_size(self.nx, self.ny);
        let sx = self.background.max_speed_x() / dx;
        let sy = self.background.max_speed_y() / dy;
        self.cfl / (sx + sy)
    }

    /// Sanity checks.
    pub fn validate(&self) {
        self.background.validate();
        assert!(
            self.nx >= 4 && self.ny >= 4,
            "SolverConfig: need at least 4x4 cells"
        );
        assert!(
            self.cfl > 0.0 && self.cfl <= 1.0,
            "SolverConfig: CFL must be in (0, 1]"
        );
        assert!(
            self.domain.lx > 0.0 && self.domain.ly > 0.0,
            "SolverConfig: degenerate domain"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_background_sound_speed() {
        let b = Background::paper();
        // c = sqrt(1.4e5 / 1) ≈ 374.17 m/s.
        assert!((b.sound_speed() - 374.165738).abs() < 1e-3);
    }

    #[test]
    fn unit_background_has_unit_sound_speed() {
        assert!((Background::unit().sound_speed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_centers_cover_domain_symmetrically() {
        let d = Domain::paper();
        let (x_first, y_first) = d.cell_center(4, 4, 0, 0);
        let (x_last, y_last) = d.cell_center(4, 4, 3, 3);
        assert!((x_first + x_last).abs() < 1e-12); // symmetric about 0
        assert!((y_first + y_last).abs() < 1e-12);
        assert!((x_first - (-0.75)).abs() < 1e-12);
        assert!((y_first - (-0.75)).abs() < 1e-12);
    }

    #[test]
    fn dt_scales_inversely_with_resolution() {
        let c = SolverConfig::paper(64, 64);
        let fine = c.with_resolution(128, 128);
        assert!((c.dt() / fine.dt() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn validate_rejects_bad_cfl() {
        let mut c = SolverConfig::paper(16, 16);
        c.cfl = 1.5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn validate_rejects_bad_gamma() {
        let mut b = Background::paper();
        b.gamma = 0.9;
        b.validate();
    }
}
