//! The finite-volume solver: spatial residual + Runge–Kutta time stepping.

use crate::bc::{Boundary, Edge};
use crate::config::{SolverConfig, TimeScheme};
use crate::flux::{rusanov_x, rusanov_y, Q};
use crate::ic::InitialCondition;
use crate::state::{EulerState, N_FIELDS};

/// A 2-D linearized-Euler solver instance.
///
/// Owns the current state, advances it in stable CFL-limited steps and hands
/// out snapshots. One ghost-cell layer implements the boundary conditions.
pub struct EulerSolver {
    config: SolverConfig,
    boundary: Boundary,
    state: EulerState,
    time: f64,
    steps: u64,
    /// Scratch padded planes, (ny+2)×(nx+2) per field, reused across stages.
    padded: Vec<Vec<f64>>,
}

impl EulerSolver {
    /// Creates a solver with the given configuration, boundary family and
    /// initial condition.
    pub fn new(config: SolverConfig, boundary: Boundary, ic: &InitialCondition) -> Self {
        config.validate();
        let state = ic.evaluate(&config);
        let pad_len = (config.ny + 2) * (config.nx + 2);
        Self {
            config,
            boundary,
            state,
            time: 0.0,
            steps: 0,
            padded: vec![vec![0.0; pad_len]; N_FIELDS],
        }
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Borrow of the current state.
    pub fn state(&self) -> &EulerState {
        &self.state
    }

    /// Replaces the state (used by restart tests).
    pub fn set_state(&mut self, s: EulerState) {
        assert_eq!(
            s.shape(),
            (self.config.ny, self.config.nx),
            "set_state: shape mismatch"
        );
        self.state = s;
    }

    /// The stable time step currently in use.
    pub fn dt(&self) -> f64 {
        self.config.dt()
    }

    /// Fills the padded planes from `state` applying the boundary condition.
    fn fill_padded(&mut self, state: &EulerState) {
        let (ny, nx) = (self.config.ny, self.config.nx);
        let pw = nx + 2;
        let bg = self.config.background;
        // Interior copy per field.
        for f in 0..N_FIELDS {
            let src = state.field(f).as_slice();
            let dst = &mut self.padded[f];
            for i in 0..ny {
                dst[(i + 1) * pw + 1..(i + 1) * pw + 1 + nx]
                    .copy_from_slice(&src[i * nx..(i + 1) * nx]);
            }
            // Corners are never read by the 5-point flux stencil; zero them
            // for determinism.
            dst[0] = 0.0;
            dst[pw - 1] = 0.0;
            dst[(ny + 1) * pw] = 0.0;
            dst[(ny + 1) * pw + pw - 1] = 0.0;
        }
        let cell = |i: usize, j: usize| -> crate::flux::Q {
            std::array::from_fn(|f| state.field(f).as_slice()[i * nx + j])
        };
        let write_ghost = |planes: &mut Vec<Vec<f64>>, pi: usize, pj: usize, g: crate::flux::Q| {
            for f in 0..N_FIELDS {
                planes[f][pi * pw + pj] = g[f];
            }
        };
        // Left/right ghosts (x-normal edges).
        for i in 0..ny {
            let gl = self
                .boundary
                .ghost_state(&cell(i, 0), &cell(i, nx - 1), Edge::Left, &bg);
            let gr = self
                .boundary
                .ghost_state(&cell(i, nx - 1), &cell(i, 0), Edge::Right, &bg);
            write_ghost(&mut self.padded, i + 1, 0, gl);
            write_ghost(&mut self.padded, i + 1, nx + 1, gr);
        }
        // Bottom/top ghosts (y-normal edges).
        for j in 0..nx {
            let gb = self
                .boundary
                .ghost_state(&cell(0, j), &cell(ny - 1, j), Edge::Bottom, &bg);
            let gt = self
                .boundary
                .ghost_state(&cell(ny - 1, j), &cell(0, j), Edge::Top, &bg);
            write_ghost(&mut self.padded, 0, j + 1, gb);
            write_ghost(&mut self.padded, ny + 1, j + 1, gt);
        }
    }

    /// Computes `dq/dt = −∂F/∂x − ∂G/∂y` with Rusanov interface fluxes.
    fn rhs(&mut self, state: &EulerState) -> EulerState {
        self.fill_padded(state);
        let (ny, nx) = (self.config.ny, self.config.nx);
        let pw = nx + 2;
        let (dx, dy) = self.config.domain.cell_size(nx, ny);
        let bg = self.config.background;
        let lam_x = bg.max_speed_x();
        let lam_y = bg.max_speed_y();

        let q_at = |i: usize, j: usize| -> Q {
            // (i, j) in padded coordinates.
            std::array::from_fn(|f| self.padded[f][i * pw + j])
        };

        let mut out = EulerState::zeros(ny, nx);
        for i in 0..ny {
            // Padded row index.
            let ip = i + 1;
            // Sweep x-fluxes along the row: F at j-1/2 carried forward.
            let mut f_left = rusanov_x(&q_at(ip, 0), &q_at(ip, 1), &bg, lam_x);
            for j in 0..nx {
                let jp = j + 1;
                let qc = q_at(ip, jp);
                let f_right = rusanov_x(&qc, &q_at(ip, jp + 1), &bg, lam_x);
                let g_down = rusanov_y(&q_at(ip - 1, jp), &qc, &bg, lam_y);
                let g_up = rusanov_y(&qc, &q_at(ip + 1, jp), &bg, lam_y);
                for f in 0..N_FIELDS {
                    out.field_mut(f).as_mut_slice()[i * nx + j] =
                        -(f_right[f] - f_left[f]) / dx - (g_up[f] - g_down[f]) / dy;
                }
                f_left = f_right;
            }
        }
        out
    }

    /// Advances one CFL-stable time step.
    pub fn step(&mut self) {
        let dt = self.dt();
        let q0 = self.state.clone();
        match self.config.scheme {
            TimeScheme::Euler1 => {
                let k = self.rhs(&q0);
                self.state.axpy(dt, &k);
            }
            TimeScheme::SspRk2 => {
                // Heun / SSP-RK2: q1 = q + dt f(q); q ← ½q + ½(q1 + dt f(q1)).
                let k1 = self.rhs(&q0);
                let mut q1 = q0.clone();
                q1.axpy(dt, &k1);
                let k2 = self.rhs(&q1);
                q1.axpy(dt, &k2);
                self.state = EulerState::lincomb(0.5, &q0, 0.5, &q1);
            }
            TimeScheme::Rk4 => {
                let k1 = self.rhs(&q0);
                let mut q = q0.clone();
                q.axpy(0.5 * dt, &k1);
                let k2 = self.rhs(&q);
                q = q0.clone();
                q.axpy(0.5 * dt, &k2);
                let k3 = self.rhs(&q);
                q = q0.clone();
                q.axpy(dt, &k3);
                let k4 = self.rhs(&q);
                self.state.axpy(dt / 6.0, &k1);
                self.state.axpy(dt / 3.0, &k2);
                self.state.axpy(dt / 3.0, &k3);
                self.state.axpy(dt / 6.0, &k4);
            }
        }
        self.time += dt;
        self.steps += 1;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advances until `time >= t_end` (last step not shortened; the final
    /// time may overshoot by at most one `dt`).
    pub fn run_until(&mut self, t_end: f64) {
        while self.time < t_end {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Background, Domain};
    use crate::state::{IDX_P, IDX_RHO};

    fn unit_config(n: usize, scheme: TimeScheme) -> SolverConfig {
        SolverConfig {
            background: Background::unit(),
            domain: Domain::unit(),
            nx: n,
            ny: n,
            cfl: 0.4,
            scheme,
        }
    }

    #[test]
    fn quiescent_state_stays_quiescent() {
        let cfg = unit_config(16, TimeScheme::SspRk2);
        let mut s = EulerSolver::new(cfg, Boundary::Outflow, &InitialCondition::Quiescent);
        s.run(20);
        assert_eq!(s.state().max_abs(), 0.0);
        assert_eq!(s.steps(), 20);
        assert!(s.time() > 0.0);
    }

    #[test]
    fn pulse_decays_under_paper_outflow() {
        // The paper's "outflow" (p' = 0) is a pressure-release boundary:
        // it reflects with inverted phase, so decay is partial — energy
        // leaves only through the upwind part of the numerical flux. Assert
        // bounded, decaying behaviour rather than full absorption.
        let cfg = unit_config(32, TimeScheme::SspRk2);
        let ic = InitialCondition::GaussianPulse {
            x0: 0.5,
            y0: 0.5,
            half_width: 0.15,
            amplitude: 0.5,
        };
        let mut s = EulerSolver::new(cfg, Boundary::Outflow, &ic);
        let initial_max = s.state().max_abs();
        assert!(initial_max > 0.4);
        s.run_until(2.0);
        let late_max = s.state().max_abs();
        assert!(late_max.is_finite());
        assert!(
            late_max < 0.6 * initial_max,
            "pulse should decay under outflow: {late_max} vs {initial_max}"
        );
    }

    #[test]
    fn absorbing_boundary_removes_nearly_all_energy() {
        // The characteristic absorbing condition should let the pulse exit:
        // after two domain-crossing times almost nothing remains.
        let cfg = unit_config(32, TimeScheme::SspRk2);
        let bg = cfg.background;
        let ic = InitialCondition::GaussianPulse {
            x0: 0.5,
            y0: 0.5,
            half_width: 0.15,
            amplitude: 0.5,
        };
        let mut s = EulerSolver::new(cfg, Boundary::Absorbing, &ic);
        let e0 = s.state().acoustic_energy(bg.rho, bg.sound_speed());
        s.run_until(2.0);
        let e1 = s.state().acoustic_energy(bg.rho, bg.sound_speed());
        assert!(
            e1 < 0.05 * e0,
            "absorbing boundary left too much energy: {e1} vs {e0}"
        );
    }

    #[test]
    fn periodic_mass_is_conserved() {
        let cfg = unit_config(24, TimeScheme::SspRk2);
        let ic = InitialCondition::GaussianPulse {
            x0: 0.5,
            y0: 0.5,
            half_width: 0.1,
            amplitude: 0.3,
        };
        let mut s = EulerSolver::new(cfg, Boundary::Periodic, &ic);
        let m0 = s.state().field(IDX_RHO).sum();
        let p0 = s.state().field(IDX_P).sum();
        s.run(100);
        let m1 = s.state().field(IDX_RHO).sum();
        let p1 = s.state().field(IDX_P).sum();
        assert!(
            (m0 - m1).abs() < 1e-10 * (1.0 + m0.abs()),
            "density sum drifted: {m0} -> {m1}"
        );
        assert!(
            (p0 - p1).abs() < 1e-10 * (1.0 + p0.abs()),
            "pressure sum drifted: {p0} -> {p1}"
        );
    }

    #[test]
    fn periodic_energy_never_grows() {
        let cfg = unit_config(24, TimeScheme::SspRk2);
        let ic = InitialCondition::GaussianPulse {
            x0: 0.5,
            y0: 0.5,
            half_width: 0.12,
            amplitude: 0.4,
        };
        let bg = cfg.background;
        let mut s = EulerSolver::new(cfg, Boundary::Periodic, &ic);
        let mut prev = s.state().acoustic_energy(bg.rho, bg.sound_speed());
        for _ in 0..50 {
            s.step();
            let e = s.state().acoustic_energy(bg.rho, bg.sound_speed());
            assert!(e <= prev * (1.0 + 1e-12), "energy grew: {prev} -> {e}");
            prev = e;
        }
    }

    #[test]
    fn boundary_energy_ordering_is_physical() {
        // Reflective walls keep the most energy, the paper's pressure-release
        // "outflow" loses some, the characteristic absorbing condition loses
        // almost everything.
        let ic = InitialCondition::GaussianPulse {
            x0: 0.5,
            y0: 0.5,
            half_width: 0.12,
            amplitude: 0.4,
        };
        let run = |b: Boundary| {
            let cfg = unit_config(32, TimeScheme::SspRk2);
            let bg = cfg.background;
            let mut s = EulerSolver::new(cfg, b, &ic);
            s.run_until(1.5);
            s.state().acoustic_energy(bg.rho, bg.sound_speed())
        };
        let e_wall = run(Boundary::Reflective);
        let e_out = run(Boundary::Outflow);
        let e_abs = run(Boundary::Absorbing);
        assert!(
            e_wall > e_out,
            "wall {e_wall} should exceed outflow {e_out}"
        );
        assert!(
            e_out > 5.0 * e_abs,
            "outflow {e_out} should exceed absorbing {e_abs}"
        );
    }

    #[test]
    fn symmetric_pulse_preserves_symmetry() {
        // A centered pulse on a symmetric domain must stay mirror-symmetric.
        let cfg = unit_config(20, TimeScheme::SspRk2);
        let ic = InitialCondition::GaussianPulse {
            x0: 0.5,
            y0: 0.5,
            half_width: 0.2,
            amplitude: 0.5,
        };
        let mut s = EulerSolver::new(cfg, Boundary::Outflow, &ic);
        s.run(30);
        let p = s.state().field(IDX_P);
        let n = 20;
        for i in 0..n {
            for j in 0..n {
                let mirror_x = p[(i, n - 1 - j)];
                let mirror_y = p[(n - 1 - i, j)];
                assert!(
                    (p[(i, j)] - mirror_x).abs() < 1e-12,
                    "x-symmetry broken at ({i},{j})"
                );
                assert!(
                    (p[(i, j)] - mirror_y).abs() < 1e-12,
                    "y-symmetry broken at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn all_time_schemes_run_stably() {
        for scheme in [TimeScheme::Euler1, TimeScheme::SspRk2, TimeScheme::Rk4] {
            let cfg = unit_config(16, scheme);
            let ic = InitialCondition::GaussianPulse {
                x0: 0.5,
                y0: 0.5,
                half_width: 0.15,
                amplitude: 0.5,
            };
            let mut s = EulerSolver::new(cfg, Boundary::Outflow, &ic);
            s.run(50);
            assert!(s.state().max_abs() < 10.0, "{scheme:?} unstable");
        }
    }
}
