//! Snapshot recording and dataset assembly.
//!
//! The paper produces "1500 training and validation data, by running a
//! single simulation", using "the first 1000 time steps for the training and
//! the remaining ones for the validation" (§IV-B). [`SnapshotRecorder`]
//! drives a solver and records one [`Tensor3`] per step;
//! [`DataSet::chronological_split`] reproduces that protocol.

use crate::bc::Boundary;
use crate::config::SolverConfig;
use crate::ic::InitialCondition;
use crate::solver::EulerSolver;
use pde_tensor::Tensor3;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes of the on-disk dataset format (v1).
const DATASET_MAGIC: &[u8; 8] = b"PDEDS\0\0\x01";

/// A time-ordered sequence of 4-channel snapshots from one simulation.
#[derive(Clone, Debug)]
pub struct DataSet {
    snapshots: Vec<Tensor3>,
    dt: f64,
}

impl DataSet {
    /// Builds a dataset from pre-recorded snapshots.
    ///
    /// # Panics
    /// If fewer than 2 snapshots (no input/target pair) or shapes differ.
    pub fn new(snapshots: Vec<Tensor3>, dt: f64) -> Self {
        assert!(snapshots.len() >= 2, "DataSet: need at least 2 snapshots");
        let shape = snapshots[0].shape();
        assert!(
            snapshots.iter().all(|s| s.shape() == shape),
            "DataSet: inconsistent snapshot shapes"
        );
        Self { snapshots, dt }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Snapshot spacing in simulation time.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Borrow of snapshot `k`.
    pub fn snapshot(&self, k: usize) -> &Tensor3 {
        &self.snapshots[k]
    }

    /// All snapshots.
    pub fn snapshots(&self) -> &[Tensor3] {
        &self.snapshots
    }

    /// `(c, h, w)` of every snapshot.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.snapshots[0].shape()
    }

    /// Number of supervised `(t → t+1)` pairs.
    pub fn pair_count(&self) -> usize {
        self.snapshots.len() - 1
    }

    /// The `k`-th supervised pair `(input = q(t_k), target = q(t_{k+1}))`.
    pub fn pair(&self, k: usize) -> (&Tensor3, &Tensor3) {
        (&self.snapshots[k], &self.snapshots[k + 1])
    }

    /// Serializes the dataset to a writer (versioned little-endian binary:
    /// magic, dt, `(n, c, h, w)`, then the raw snapshot values).
    pub fn write_to(&self, w: &mut dyn Write) -> io::Result<()> {
        let (c, h, wd) = self.shape();
        w.write_all(DATASET_MAGIC)?;
        w.write_all(&self.dt.to_le_bytes())?;
        for dim in [self.snapshots.len(), c, h, wd] {
            w.write_all(&(dim as u64).to_le_bytes())?;
        }
        for s in &self.snapshots {
            for &v in s.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a dataset written by [`DataSet::write_to`].
    pub fn read_from(r: &mut dyn Read) -> io::Result<DataSet> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != DATASET_MAGIC {
            return Err(bad("not a PDEDS v1 dataset file"));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let dt = f64::from_le_bytes(b8);
        let mut dims = [0usize; 4];
        for d in &mut dims {
            r.read_exact(&mut b8)?;
            *d = u64::from_le_bytes(b8) as usize;
        }
        let [n, c, h, w] = dims;
        if n < 2 || c == 0 || h == 0 || w == 0 || c * h * w > (1 << 31) {
            return Err(bad("implausible dataset dimensions"));
        }
        let mut snapshots = Vec::with_capacity(n);
        for _ in 0..n {
            let mut data = vec![0.0f64; c * h * w];
            for v in &mut data {
                r.read_exact(&mut b8)?;
                *v = f64::from_le_bytes(b8);
            }
            snapshots.push(Tensor3::from_vec(c, h, w, data));
        }
        Ok(DataSet::new(snapshots, dt))
    }

    /// Saves to a file (creating parent directories).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        std::fs::write(path, buf)
    }

    /// Loads from a file.
    pub fn load(path: &Path) -> io::Result<DataSet> {
        let data = std::fs::read(path)?;
        DataSet::read_from(&mut data.as_slice())
    }

    /// A view over the contiguous pair range `start..start + count`.
    ///
    /// # Panics
    /// If the range is empty or exceeds [`DataSet::pair_count`].
    pub fn view(&self, start: usize, count: usize) -> DataSetView<'_> {
        assert!(count >= 1, "DataSet::view: empty range");
        assert!(
            start + count <= self.pair_count(),
            "DataSet::view: range {start}..{} exceeds {} pairs",
            start + count,
            self.pair_count()
        );
        DataSetView {
            data: self,
            start,
            count,
        }
    }

    /// Splits chronologically: the first `n_train` *pairs* for training, the
    /// rest for validation — the paper's 1000/500 protocol.
    ///
    /// # Panics
    /// If `n_train` is 0 or leaves no validation pair.
    pub fn chronological_split(&self, n_train: usize) -> (DataSetView<'_>, DataSetView<'_>) {
        assert!(
            n_train >= 1,
            "chronological_split: need at least one training pair"
        );
        assert!(
            n_train < self.pair_count(),
            "chronological_split: n_train={n_train} leaves no validation pairs (have {})",
            self.pair_count()
        );
        (
            DataSetView {
                data: self,
                start: 0,
                count: n_train,
            },
            DataSetView {
                data: self,
                start: n_train,
                count: self.pair_count() - n_train,
            },
        )
    }
}

/// A contiguous range of supervised pairs inside a [`DataSet`].
#[derive(Clone, Copy, Debug)]
pub struct DataSetView<'a> {
    data: &'a DataSet,
    start: usize,
    count: usize,
}

impl<'a> DataSetView<'a> {
    /// Number of pairs in the view.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the view has no pairs.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `k`-th pair of the view.
    pub fn pair(&self, k: usize) -> (&'a Tensor3, &'a Tensor3) {
        assert!(
            k < self.count,
            "DataSetView: pair {k} out of range ({})",
            self.count
        );
        self.data.pair(self.start + k)
    }

    /// Global snapshot index of the view's `k`-th input.
    pub fn global_index(&self, k: usize) -> usize {
        self.start + k
    }
}

/// Drives a solver and records snapshots.
pub struct SnapshotRecorder {
    solver: EulerSolver,
    /// Record every `stride`-th step (1 = every step, the paper's protocol).
    stride: usize,
}

impl SnapshotRecorder {
    /// New recorder over a freshly initialized solver.
    pub fn new(
        config: SolverConfig,
        boundary: Boundary,
        ic: &InitialCondition,
        stride: usize,
    ) -> Self {
        assert!(stride >= 1, "SnapshotRecorder: stride must be >= 1");
        Self {
            solver: EulerSolver::new(config, boundary, ic),
            stride,
        }
    }

    /// Runs the simulation, recording `n_snapshots` states (including the
    /// initial one) and returning the assembled dataset.
    pub fn record(mut self, n_snapshots: usize) -> DataSet {
        assert!(
            n_snapshots >= 2,
            "SnapshotRecorder: need at least 2 snapshots"
        );
        let mut snaps = Vec::with_capacity(n_snapshots);
        snaps.push(self.solver.state().to_tensor());
        while snaps.len() < n_snapshots {
            self.solver.run(self.stride);
            snaps.push(self.solver.state().to_tensor());
        }
        DataSet::new(snaps, self.solver.dt() * self.stride as f64)
    }
}

/// Convenience: the paper's full data-generation pipeline at a chosen
/// resolution — Gaussian pulse, outflow boundaries, `n_snapshots` recorded
/// every step.
pub fn paper_dataset(n: usize, n_snapshots: usize) -> DataSet {
    let cfg = SolverConfig::paper(n, n);
    SnapshotRecorder::new(cfg, Boundary::Outflow, &InitialCondition::paper_pulse(), 1)
        .record(n_snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> DataSet {
        paper_dataset(16, 12)
    }

    #[test]
    fn recorder_counts_and_shapes() {
        let ds = tiny_dataset();
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.pair_count(), 11);
        assert_eq!(ds.shape(), (4, 16, 16));
        assert!(ds.dt() > 0.0);
    }

    #[test]
    fn first_snapshot_is_initial_condition() {
        let ds = tiny_dataset();
        let cfg = SolverConfig::paper(16, 16);
        let ic = InitialCondition::paper_pulse().evaluate(&cfg);
        assert_eq!(ds.snapshot(0), &ic.to_tensor());
    }

    #[test]
    fn pairs_are_consecutive() {
        let ds = tiny_dataset();
        for k in 0..ds.pair_count() {
            let (a, b) = ds.pair(k);
            assert_eq!(a, ds.snapshot(k));
            assert_eq!(b, ds.snapshot(k + 1));
        }
    }

    #[test]
    fn snapshots_evolve() {
        let ds = tiny_dataset();
        assert_ne!(
            ds.snapshot(0),
            ds.snapshot(5),
            "simulation did not change the state"
        );
    }

    #[test]
    fn chronological_split_partitions_pairs() {
        let ds = tiny_dataset();
        let (train, val) = ds.chronological_split(8);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 3);
        // Boundary: last train input is snapshot 7, first val input is 8.
        assert_eq!(train.global_index(7), 7);
        assert_eq!(val.global_index(0), 8);
        let (vi, _) = val.pair(0);
        assert_eq!(vi, ds.snapshot(8));
    }

    #[test]
    fn stride_skips_steps() {
        let cfg = SolverConfig::paper(16, 16);
        let every =
            SnapshotRecorder::new(cfg, Boundary::Outflow, &InitialCondition::paper_pulse(), 1)
                .record(5);
        let strided =
            SnapshotRecorder::new(cfg, Boundary::Outflow, &InitialCondition::paper_pulse(), 2)
                .record(3);
        // Strided snapshot 1 equals every-step snapshot 2.
        assert_eq!(strided.snapshot(1), every.snapshot(2));
        assert!((strided.dt() - 2.0 * every.dt()).abs() < 1e-15);
    }

    #[test]
    fn save_load_round_trip() {
        let ds = tiny_dataset();
        let path = std::env::temp_dir().join("pde_euler_ds_test/roundtrip.pdeds");
        ds.save(&path).unwrap();
        let back = DataSet::load(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.dt(), ds.dt());
        for k in 0..ds.len() {
            assert_eq!(back.snapshot(k), ds.snapshot(k));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let mut garbage: &[u8] = &[0u8; 64];
        assert!(DataSet::read_from(&mut garbage).is_err());
    }

    #[test]
    fn load_rejects_truncation() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        ds.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 3);
        assert!(DataSet::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "leaves no validation")]
    fn split_requires_validation_pairs() {
        let ds = tiny_dataset();
        let _ = ds.chronological_split(11);
    }
}
