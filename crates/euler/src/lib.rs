//! # pde-euler
//!
//! A from-scratch 2-D **linearized Euler** solver — the substitute for the
//! Ateles discontinuous-Galerkin framework used by the paper to generate
//! training data (see DESIGN.md §2).
//!
//! The PDE (paper Eq. (8)) describes acoustic perturbations `(ρ', u', v', p')`
//! around a constant background `(ρ_c, u_c, v_c, p_c)`:
//!
//! ```text
//! ∂t ρ' + ∇·(u_c ρ' + ρ_c u')          = 0
//! ∂t u' + ∇·(u_c u') + (1/ρ_c) ∇p'     = 0
//! ∂t p' + ∇·(u_c p' + γ p_c u')        = 0
//! ```
//!
//! a constant-coefficient linear hyperbolic system `q_t + A q_x + B q_y = 0`.
//! The solver is a cell-centered finite-volume scheme with a Rusanov
//! (local Lax–Friedrichs) numerical flux, ghost-cell boundary conditions and
//! SSP-RK2 / classical RK4 time integration. The paper's setup — Gaussian
//! pressure pulse, outflow boundaries (p' = 0, homogeneous Neumann for the
//! rest), fluid initially at rest — is [`ic::InitialCondition::GaussianPulse`]
//! plus [`bc::Boundary::Outflow`].
//!
//! Correctness is anchored by the analytic plane-wave solution in
//! [`analytic`] (grid-convergence tested) and conservation checks on
//! periodic domains.

pub mod analytic;
pub mod bc;
pub mod config;
pub mod dataset;
pub mod flux;
pub mod ic;
pub mod solver;
pub mod state;

pub use bc::Boundary;
pub use config::{Background, Domain, SolverConfig, TimeScheme};
pub use dataset::{DataSet, SnapshotRecorder};
pub use ic::InitialCondition;
pub use solver::EulerSolver;
pub use state::{EulerState, FIELD_NAMES, N_FIELDS};
