//! The conventional data-parallel baseline (Viviani et al., PDP 2019).
//!
//! The paper's introduction contrasts its scheme against the standard
//! approach: "the available training data are split into smaller chunks.
//! Each chunk is given to a network and one step training is applied.
//! Through a global reduction operation, the networks … share their
//! weights. The weights are averaged and constitute a new network … This
//! approach is able to reduce the training time. However, it alters the
//! learning algorithm resulting in decreased learning. In addition, the
//! global reduction operations are potential performance bottlenecks."
//!
//! [`DataParallelTrainer`] implements that scheme faithfully: every rank
//! holds a **full-domain replica** of the network, the *time steps* (not
//! the domain) are chunked across ranks, each rank takes one optimizer step
//! per batch, and after every batch the weights are averaged with a global
//! allreduce. The per-rank traffic counters expose the communication cost
//! (O(P · weights) per step) that the paper's scheme avoids entirely.

use crate::arch::ArchSpec;
use crate::data::SubdomainDataset;
use crate::norm::ChannelNorm;
use crate::padding::PaddingStrategy;
use crate::train::{check_geometry, fit_norm, TrainConfig, TrainError};
use pde_commsim::World;
use pde_domain::GridPartition;
use pde_euler::dataset::DataSet;
use pde_nn::serialize::snapshot;
use pde_nn::Layer;
use std::time::Instant;

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// The averaged (identical on every rank) final weights.
    pub weights: Vec<f64>,
    /// Mean training loss per epoch, averaged over ranks.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds end to end.
    pub wall_seconds: f64,
    /// Per-rank traffic counters.
    pub traffic: Vec<pde_commsim::TrafficReport>,
    /// Channel normalization the replicas were trained in.
    pub norm: ChannelNorm,
}

impl BaselineOutcome {
    /// Total bytes all ranks pushed through the allreduce.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.iter().map(|t| t.bytes_sent).sum()
    }
}

/// Viviani-style data-parallel trainer with per-batch weight averaging.
pub struct DataParallelTrainer {
    arch: ArchSpec,
    strategy: PaddingStrategy,
    config: TrainConfig,
}

impl DataParallelTrainer {
    /// New baseline trainer. The strategy only controls input/target
    /// geometry of the full-domain network (use `ZeroPad` to mirror the
    /// paper's same-size setup).
    pub fn new(arch: ArchSpec, strategy: PaddingStrategy, config: TrainConfig) -> Self {
        arch.validate();
        config.validate();
        Self {
            arch,
            strategy,
            config,
        }
    }

    /// Trains on the first `n_train_pairs` pairs with `n_ranks` data-parallel
    /// replicas.
    pub fn train(
        &self,
        data: &DataSet,
        n_train_pairs: usize,
        n_ranks: usize,
    ) -> Result<BaselineOutcome, TrainError> {
        if n_train_pairs == 0 || n_train_pairs > data.pair_count() {
            return Err(TrainError::EmptyData);
        }
        if n_train_pairs < n_ranks {
            return Err(TrainError::Geometry(format!(
                "data-parallel baseline: {n_train_pairs} pairs cannot be chunked over \
                 {n_ranks} ranks"
            )));
        }
        let (_, h, w) = data.shape();
        // Full-domain network: a 1×1 "partition".
        let part = GridPartition::new(h, w, 1, 1);
        check_geometry(&part, &self.arch, self.strategy)?;

        let arch = &self.arch;
        let strategy = self.strategy;
        let cfg = &self.config;
        let norm = fit_norm(cfg, &data.view(0, n_train_pairs), arch);
        let norm_ref = &norm;
        let t0 = Instant::now();
        let (results, traffic) = World::new(n_ranks).run_with_stats(|mut comm| {
            let rank = comm.rank();
            // Chunk the time steps: rank r gets pairs r, r+P, r+2P, …
            // (interleaved so every rank sees the whole trajectory's
            // dynamics — contiguous chunks would bias early ranks to the
            // initial transient).
            let my_pairs: Vec<usize> = (rank..n_train_pairs).step_by(n_ranks).collect();
            let view = data.view(0, n_train_pairs);
            let full = SubdomainDataset::build(&view, &part, 0, arch.halo(), strategy, norm_ref);
            // Every replica starts from the SAME init (seed is shared).
            let mut net = arch.build_for(strategy, cfg.seed);
            let loss = cfg.loss.build();
            let mut opt = cfg.optimizer.build(cfg.lr);
            let inv_p = 1.0 / comm.size() as f64;
            // Collectives must run the same number of times on every rank
            // or the allreduce deadlocks. Rank 0 always has the largest
            // shard, so its batch count is the global round count; ranks
            // that run out of batches still contribute their current
            // (unchanged) weights to the average — the convention
            // synchronous data-parallel frameworks use for ragged tails.
            let batch_size = cfg.batch_size.max(1);
            let rounds = n_train_pairs.div_ceil(n_ranks).div_ceil(batch_size);
            let mut epoch_losses = Vec::with_capacity(cfg.epochs);
            for epoch in 0..cfg.epochs {
                opt.set_learning_rate(cfg.rate(epoch));
                let mut sum = 0.0;
                let mut batches = 0usize;
                for round in 0..rounds {
                    let chunk_start = round * batch_size;
                    if chunk_start < my_pairs.len() {
                        let chunk =
                            &my_pairs[chunk_start..(chunk_start + batch_size).min(my_pairs.len())];
                        net.zero_grad();
                        let x = full.inputs().select(chunk);
                        let y = full.targets().select(chunk);
                        let pred = net.forward(&x, true);
                        let (l, grad) = loss.value_and_grad(&pred, &y);
                        let _ = net.backward(&grad);
                        opt.step(&mut net.param_groups());
                        sum += l;
                        batches += 1;
                    }
                    // Global weight averaging — the baseline's defining
                    // (and costly) step. Executed by EVERY rank each round.
                    let mine = snapshot(&mut net);
                    let summed = comm.allreduce_sum(&mine);
                    let averaged: Vec<f64> = summed.iter().map(|v| v * inv_p).collect();
                    pde_nn::serialize::restore(&mut net, &averaged);
                }
                epoch_losses.push(sum / batches.max(1) as f64);
            }
            (snapshot(&mut net), epoch_losses)
        });

        let n_epochs = self.config.epochs;
        let mut epoch_losses = vec![0.0; n_epochs];
        for (_, losses) in &results {
            for (e, l) in losses.iter().enumerate() {
                epoch_losses[e] += l / results.len() as f64;
            }
        }
        // All replicas end identical (same init, same averaged updates) —
        // modulo ranks having one batch more or fewer; take rank 0's.
        Ok(BaselineOutcome {
            weights: results[0].0.clone(),
            epoch_losses,
            wall_seconds: t0.elapsed().as_secs_f64(),
            traffic,
            norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_euler::dataset::paper_dataset;

    fn data() -> DataSet {
        paper_dataset(16, 10)
    }

    #[test]
    fn baseline_communicates_weights_every_batch() {
        let d = data();
        let cfg = TrainConfig::quick_test();
        let out = DataParallelTrainer::new(ArchSpec::tiny(), PaddingStrategy::ZeroPad, cfg.clone())
            .train(&d, 8, 4)
            .unwrap();
        assert!(out.total_bytes() > 0, "baseline must communicate");
        // Every rank participates in the allreduce every batch: with 8
        // pairs over 4 ranks and batch_size 4, each rank has 1 batch per
        // epoch × 2 epochs. Weight vector length = param_count.
        let params = ArchSpec::tiny().param_count() as u64;
        // Rank 0 receives P−1 reduce contributions and sends P−1 broadcast
        // copies per allreduce; others send 1 and receive 1.
        let r1_bytes = out.traffic[1].bytes_sent;
        assert_eq!(r1_bytes, 2 /*batch*/ * params * 8);
    }

    #[test]
    fn baseline_replicas_agree() {
        // Every rank must finish with identical weights when batch counts
        // align.
        let d = data();
        let mut cfg = TrainConfig::quick_test();
        cfg.batch_size = 2;
        let arch = ArchSpec::tiny();
        let out = DataParallelTrainer::new(arch.clone(), PaddingStrategy::ZeroPad, cfg)
            .train(&d, 8, 2)
            .unwrap();
        assert_eq!(out.weights.len(), arch.param_count());
        assert!(out.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn baseline_learns() {
        let d = data();
        let mut cfg = TrainConfig::paper();
        cfg.epochs = 10;
        cfg.batch_size = 4;
        let out = DataParallelTrainer::new(ArchSpec::tiny(), PaddingStrategy::ZeroPad, cfg)
            .train(&d, 9, 2)
            .unwrap();
        assert!(
            out.epoch_losses.last().unwrap() < &out.epoch_losses[0],
            "baseline loss did not decrease: {:?}",
            out.epoch_losses
        );
    }

    #[test]
    fn baseline_rejects_too_few_pairs() {
        let d = data();
        let t = DataParallelTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::ZeroPad,
            TrainConfig::quick_test(),
        );
        assert!(matches!(t.train(&d, 2, 4), Err(TrainError::Geometry(_))));
    }
}
