//! The §III dimension-reconciliation strategies.
//!
//! An unpadded stack of `L` convolutions with `k×k` kernels shrinks the
//! spatial extent by `L·(k−1)` cells, so the network output cannot be
//! compared directly with the same-size target. The paper lists four
//! remedies and uses the first two; the third is implemented for the
//! ablation study (X1 in DESIGN.md):
//!
//! 1. **Zero padding** ([`PaddingStrategy::ZeroPad`]): every conv layer
//!    zero-pads ("same" convolution). Inputs are bare subdomain interiors;
//!    inference needs no neighbor data at all, but the network never sees
//!    true cross-subdomain context.
//! 2. **Neighbor-data padding** ([`PaddingStrategy::NeighborPad`]): the
//!    input is the subdomain interior *extended by a halo of real data* from
//!    neighboring subdomains (overlapping inputs); convs are unpadded, so
//!    the output lands exactly on the interior. Training reads the halo
//!    straight from the global training snapshot (still zero communication);
//!    inference exchanges halos point-to-point. Physical-boundary parts of
//!    the halo are synthesized with a [`PadMode`].
//! 3. **Inner crop** ([`PaddingStrategy::InnerCrop`]): unpadded convs, bare
//!    interior input, loss evaluated on the shrunken output against the
//!    matching inner crop of the target. As the paper notes, the missing
//!    boundary ring makes autonomous rollout impossible — the strategy is
//!    train/eval only.

use pde_tensor::PadMode;

/// How conv-stack shrinkage is reconciled with target dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaddingStrategy {
    /// "Same" convolutions with zero padding (paper approach 1).
    ZeroPad,
    /// Overlapping inputs from neighbor data, unpadded convolutions (paper
    /// approach 2 — the full scheme).
    NeighborPad,
    /// Unpadded convolutions, loss on the inner region only (paper
    /// approach 3; no rollout).
    InnerCrop,
    /// Unpadded convolutions followed by one transposed-convolution layer
    /// that restores the spatial extent (paper approach 4, "adding
    /// de-convolutional layers or the transpose convolution", listed as
    /// under investigation). Communication-free at inference like
    /// [`PaddingStrategy::ZeroPad`], but the up-sampling is *learned*
    /// instead of hallucinated zeros.
    Deconv,
}

impl PaddingStrategy {
    /// Whether the network is built with internally padded ("same") convs.
    pub fn internally_padded(&self) -> bool {
        matches!(self, PaddingStrategy::ZeroPad)
    }

    /// Input halo width for an architecture with one-sided shrink `arch_halo`.
    pub fn input_halo(&self, arch_halo: usize) -> usize {
        match self {
            PaddingStrategy::ZeroPad | PaddingStrategy::InnerCrop | PaddingStrategy::Deconv => 0,
            PaddingStrategy::NeighborPad => arch_halo,
        }
    }

    /// How much the *target* must be cropped per side to match the network
    /// output.
    pub fn target_crop(&self, arch_halo: usize) -> usize {
        match self {
            PaddingStrategy::ZeroPad | PaddingStrategy::NeighborPad | PaddingStrategy::Deconv => 0,
            PaddingStrategy::InnerCrop => arch_halo,
        }
    }

    /// Whether autonomous multi-step rollout is possible.
    pub fn supports_rollout(&self) -> bool {
        !matches!(self, PaddingStrategy::InnerCrop)
    }

    /// Whether inference requires neighbor halo exchange.
    pub fn needs_halo_exchange(&self) -> bool {
        matches!(self, PaddingStrategy::NeighborPad)
    }

    /// Pad mode used to synthesize halo data outside the *physical* domain.
    ///
    /// Zeros matches the paper's approach-1 fallback and is consistent with
    /// the outflow boundary's vanishing pressure perturbation.
    pub fn boundary_pad_mode(&self) -> PadMode {
        PadMode::Zeros
    }

    /// All strategies, for ablation sweeps.
    pub const ALL: [PaddingStrategy; 4] = [
        PaddingStrategy::ZeroPad,
        PaddingStrategy::NeighborPad,
        PaddingStrategy::InnerCrop,
        PaddingStrategy::Deconv,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PaddingStrategy::ZeroPad => "zero-pad",
            PaddingStrategy::NeighborPad => "neighbor-pad",
            PaddingStrategy::InnerCrop => "inner-crop",
            PaddingStrategy::Deconv => "deconv",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_per_strategy() {
        let h = 8; // paper arch halo
        assert_eq!(PaddingStrategy::ZeroPad.input_halo(h), 0);
        assert_eq!(PaddingStrategy::NeighborPad.input_halo(h), 8);
        assert_eq!(PaddingStrategy::InnerCrop.input_halo(h), 0);
        assert_eq!(PaddingStrategy::ZeroPad.target_crop(h), 0);
        assert_eq!(PaddingStrategy::NeighborPad.target_crop(h), 0);
        assert_eq!(PaddingStrategy::InnerCrop.target_crop(h), 8);
    }

    #[test]
    fn only_zero_pad_is_internally_padded() {
        assert!(PaddingStrategy::ZeroPad.internally_padded());
        assert!(!PaddingStrategy::NeighborPad.internally_padded());
        assert!(!PaddingStrategy::InnerCrop.internally_padded());
    }

    #[test]
    fn rollout_support() {
        assert!(PaddingStrategy::ZeroPad.supports_rollout());
        assert!(PaddingStrategy::NeighborPad.supports_rollout());
        assert!(!PaddingStrategy::InnerCrop.supports_rollout());
    }

    #[test]
    fn only_neighbor_pad_exchanges_halos() {
        assert!(PaddingStrategy::NeighborPad.needs_halo_exchange());
        assert!(!PaddingStrategy::ZeroPad.needs_halo_exchange());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = PaddingStrategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
        for i in 0..labels.len() {
            for j in i + 1..labels.len() {
                assert_ne!(labels[i], labels[j]);
            }
        }
    }

    #[test]
    fn deconv_geometry_is_communication_free() {
        let d = PaddingStrategy::Deconv;
        assert_eq!(d.input_halo(8), 0);
        assert_eq!(d.target_crop(8), 0);
        assert!(d.supports_rollout());
        assert!(!d.needs_halo_exchange());
        assert!(!d.internally_padded());
    }
}
