//! Per-subdomain supervised datasets.
//!
//! Each rank trains on `(q(t) restricted to its input region, q(t+1)
//! restricted to its interior)` pairs cut from the global solver snapshots.
//! With [`PaddingStrategy::NeighborPad`] the input region overlaps the
//! neighboring subdomains (paper §III: "input data for neighboring
//! processes are overlapping") — during *training* that halo is read
//! directly from the stored global snapshot, so no communication happens.

use crate::norm::ChannelNorm;
use crate::padding::PaddingStrategy;
use crate::train::PredictionMode;
use pde_domain::{Block, GridPartition};
use pde_euler::dataset::{DataSet, DataSetView};
use pde_tensor::pad::pad_tensor3;
use pde_tensor::{PadMode, Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cuts the input region of `block` (interior + `halo`) out of a global
/// snapshot, synthesizing out-of-domain halo cells with `mode`.
pub fn extract_input(snapshot: &Tensor3, block: &Block, halo: usize, mode: PadMode) -> Tensor3 {
    let (clipped, m) = block.extended(halo, snapshot.h(), snapshot.w());
    let window = snapshot.window(clipped.i0, clipped.j0, clipped.h, clipped.w);
    if m.is_zero() {
        window
    } else {
        pad_tensor3(&window, m.top, m.bottom, m.left, m.right, mode)
    }
}

/// Cuts the target region of `block` out of a global snapshot: the interior,
/// shrunk by `crop` per side for the inner-crop strategy.
pub fn extract_target(snapshot: &Tensor3, block: &Block, crop: usize) -> Tensor3 {
    assert!(
        block.h > 2 * crop && block.w > 2 * crop,
        "extract_target: crop {crop} consumes the {}x{} block",
        block.h,
        block.w
    );
    snapshot.window(
        block.i0 + crop,
        block.j0 + crop,
        block.h - 2 * crop,
        block.w - 2 * crop,
    )
}

/// Builds a *time-windowed* per-rank dataset directly from a [`DataSet`]:
/// sample `k` has input channels `[q(t_{k-w+1}), …, q(t_k)]` (oldest first,
/// each cut to the rank's input region) and target `q(t_{k+1})` on the
/// rank's target region. With `window == 1` this equals
/// [`SubdomainDataset::build_with_mode`] over the same pair range.
///
/// This is the cheap step toward the temporal connectivity the paper's §V
/// leaves to future work (recurrent/LSTM layers): the network sees a short
/// history instead of a single state.
///
/// `start..start+count` indexes supervised pairs; the first usable sample
/// needs `window - 1` snapshots of history, so `start ≥ window - 1` is
/// required.
#[allow(clippy::too_many_arguments)]
pub fn build_windowed(
    data: &DataSet,
    start: usize,
    count: usize,
    part: &GridPartition,
    rank: usize,
    arch_halo: usize,
    strategy: PaddingStrategy,
    norm: &ChannelNorm,
    prediction: PredictionMode,
    window: usize,
) -> SubdomainDataset {
    assert!(window >= 1, "build_windowed: window must be >= 1");
    assert!(count >= 1, "build_windowed: empty range");
    assert!(
        start + 1 >= window,
        "build_windowed: pair {start} lacks {window}-snapshot history"
    );
    assert!(
        start + count <= data.pair_count(),
        "build_windowed: range exceeds dataset"
    );
    let block = part.block_of_rank(rank);
    let halo = strategy.input_halo(arch_halo);
    let crop = strategy.target_crop(arch_halo);
    let mode = strategy.boundary_pad_mode();
    let mut inputs = Vec::with_capacity(count);
    let mut targets = Vec::with_capacity(count);
    for k in start..start + count {
        let history: Vec<Tensor3> = (k + 1 - window..=k)
            .map(|s| norm.normalize3(&extract_input(data.snapshot(s), &block, halo, mode)))
            .collect();
        let refs: Vec<&Tensor3> = history.iter().collect();
        inputs.push(Tensor3::concat_channels(&refs));
        let mut target = norm.normalize3(&extract_target(data.snapshot(k + 1), &block, crop));
        if prediction == PredictionMode::Residual {
            let base = norm.normalize3(&extract_target(data.snapshot(k), &block, crop));
            target.axpy(-1.0, &base);
        }
        targets.push(target);
    }
    SubdomainDataset {
        inputs: Tensor4::stack(&inputs),
        targets: Tensor4::stack(&targets),
        block,
        halo,
    }
}

/// The assembled training set of one rank: stacked inputs and targets.
pub struct SubdomainDataset {
    inputs: Tensor4,
    targets: Tensor4,
    block: Block,
    halo: usize,
}

impl SubdomainDataset {
    /// Builds the dataset for `rank` from a view of supervised pairs,
    /// mapping inputs and targets into normalized space with `norm`.
    ///
    /// `arch_halo` is the architecture's one-sided shrink
    /// ([`crate::arch::ArchSpec::halo`]).
    pub fn build(
        view: &DataSetView<'_>,
        part: &GridPartition,
        rank: usize,
        arch_halo: usize,
        strategy: PaddingStrategy,
        norm: &ChannelNorm,
    ) -> Self {
        Self::build_with_mode(
            view,
            part,
            rank,
            arch_halo,
            strategy,
            norm,
            PredictionMode::Absolute,
        )
    }

    /// Like [`SubdomainDataset::build`], with an explicit prediction mode:
    /// for [`PredictionMode::Residual`] the supervised target is the
    /// normalized increment `q(t+1) − q(t)` on the rank's target region.
    pub fn build_with_mode(
        view: &DataSetView<'_>,
        part: &GridPartition,
        rank: usize,
        arch_halo: usize,
        strategy: PaddingStrategy,
        norm: &ChannelNorm,
        prediction: PredictionMode,
    ) -> Self {
        assert!(!view.is_empty(), "SubdomainDataset: empty pair view");
        let block = part.block_of_rank(rank);
        let halo = strategy.input_halo(arch_halo);
        let crop = strategy.target_crop(arch_halo);
        let mode = strategy.boundary_pad_mode();
        let mut inputs = Vec::with_capacity(view.len());
        let mut targets = Vec::with_capacity(view.len());
        for k in 0..view.len() {
            let (x, y) = view.pair(k);
            inputs.push(norm.normalize3(&extract_input(x, &block, halo, mode)));
            let mut target = norm.normalize3(&extract_target(y, &block, crop));
            if prediction == PredictionMode::Residual {
                let base = norm.normalize3(&extract_target(x, &block, crop));
                target.axpy(-1.0, &base);
            }
            targets.push(target);
        }
        Self {
            inputs: Tensor4::stack(&inputs),
            targets: Tensor4::stack(&targets),
            block,
            halo,
        }
    }

    /// Number of supervised pairs.
    pub fn len(&self) -> usize {
        self.inputs.n()
    }

    /// True when there are no pairs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.inputs.n() == 0
    }

    /// The rank's interior block.
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// The input halo width in use.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// All inputs, stacked `(n, c, h+2halo, w+2halo)`.
    pub fn inputs(&self) -> &Tensor4 {
        &self.inputs
    }

    /// All targets, stacked `(n, c, h−2crop, w−2crop)`.
    pub fn targets(&self) -> &Tensor4 {
        &self.targets
    }

    /// Mini-batch index order for one epoch: a seeded shuffle when
    /// `shuffle` is set, identity otherwise. Deterministic in
    /// `(seed, epoch)`.
    pub fn epoch_order(&self, shuffle: bool, seed: u64, epoch: usize) -> Vec<usize> {
        let mut order = Vec::new();
        self.fill_epoch_order(shuffle, seed, epoch, &mut order);
        order
    }

    /// [`SubdomainDataset::epoch_order`] into a caller-owned buffer: once
    /// `order` has capacity for `len()` indices this never allocates.
    pub fn fill_epoch_order(&self, shuffle: bool, seed: u64, epoch: usize, order: &mut Vec<usize>) {
        order.clear();
        order.extend(0..self.len());
        if shuffle {
            let mut rng = StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
            order.shuffle(&mut rng);
        }
    }

    /// Cuts `order` into `(input, target)` mini-batches of at most
    /// `batch_size` samples.
    pub fn batches(&self, order: &[usize], batch_size: usize) -> Vec<(Tensor4, Tensor4)> {
        assert!(batch_size >= 1, "batches: batch_size must be >= 1");
        order
            .chunks(batch_size)
            .map(|idx| (self.inputs.select(idx), self.targets.select(idx)))
            .collect()
    }

    /// Lazy mini-batch iterator over `order`: each call to
    /// [`BatchCursor::next_into`] fills two caller-owned tensors instead of
    /// allocating a fresh pair per batch.
    pub fn batch_cursor<'a>(&'a self, order: &'a [usize], batch_size: usize) -> BatchCursor<'a> {
        assert!(batch_size >= 1, "batch_cursor: batch_size must be >= 1");
        BatchCursor {
            ds: self,
            rest: order,
            batch_size,
        }
    }

    /// Copies the samples named by `idx` into two reusable batch tensors,
    /// resizing them in place (allocation-free once grown).
    pub fn fill_batch(&self, idx: &[usize], x: &mut Tensor4, y: &mut Tensor4) {
        let (n, ci, hi, wi) = self.inputs.shape();
        let (_, ct, ht, wt) = self.targets.shape();
        x.resize(idx.len(), ci, hi, wi);
        y.resize(idx.len(), ct, ht, wt);
        for (i, &s) in idx.iter().enumerate() {
            assert!(s < n, "fill_batch: sample index {s} out of range (n={n})");
            x.sample_mut(i).copy_from_slice(self.inputs.sample(s));
            y.sample_mut(i).copy_from_slice(self.targets.sample(s));
        }
    }
}

/// Walks an epoch's index order in mini-batch chunks, filling reusable
/// tensors. Created by [`SubdomainDataset::batch_cursor`].
pub struct BatchCursor<'a> {
    ds: &'a SubdomainDataset,
    rest: &'a [usize],
    batch_size: usize,
}

impl BatchCursor<'_> {
    /// Fills `x`/`y` with the next mini-batch; `false` when exhausted.
    /// The final batch may be smaller than `batch_size` (the tensors are
    /// resized to match, which shrinks within retained capacity).
    pub fn next_into(&mut self, x: &mut Tensor4, y: &mut Tensor4) -> bool {
        if self.rest.is_empty() {
            return false;
        }
        let take = self.batch_size.min(self.rest.len());
        let (idx, rest) = self.rest.split_at(take);
        self.rest = rest;
        self.ds.fill_batch(idx, x, y);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_euler::dataset::paper_dataset;

    fn setup() -> (pde_euler::DataSet, GridPartition) {
        (paper_dataset(16, 8), GridPartition::new(16, 16, 2, 2))
    }

    #[test]
    fn extract_input_interior_rank_has_real_halo() {
        let (ds, part) = setup();
        // 4×4 partition of a 16×16 grid: rank 5 (pos 1,1) is interior.
        let part16 = GridPartition::new(16, 16, 4, 4);
        let block = part16.block_of_rank(5);
        let x = extract_input(ds.snapshot(0), &block, 2, PadMode::Zeros);
        assert_eq!(x.shape(), (4, 8, 8));
        // Matches a direct window of the global snapshot.
        let direct = ds.snapshot(0).window(block.i0 - 2, block.j0 - 2, 8, 8);
        assert_eq!(x, direct);
        let _ = part;
    }

    #[test]
    fn extract_input_corner_rank_pads_with_zeros() {
        let (ds, part) = setup();
        let block = part.block_of_rank(0); // top-left corner (i0=j0=0)
        let x = extract_input(ds.snapshot(0), &block, 2, PadMode::Zeros);
        assert_eq!(x.shape(), (4, 12, 12));
        // The first two rows/cols are synthesized zeros.
        for c in 0..4 {
            for k in 0..12 {
                assert_eq!(x[(c, 0, k)], 0.0);
                assert_eq!(x[(c, k, 1)], 0.0);
            }
        }
        // Interior cell matches the global snapshot.
        assert_eq!(x[(0, 2, 2)], ds.snapshot(0)[(0, 0, 0)]);
    }

    #[test]
    fn extract_target_inner_crop() {
        let (ds, part) = setup();
        let block = part.block_of_rank(3);
        let y = extract_target(ds.snapshot(1), &block, 2);
        assert_eq!(y.shape(), (4, 4, 4));
        assert_eq!(
            y[(0, 0, 0)],
            ds.snapshot(1)[(0, block.i0 + 2, block.j0 + 2)]
        );
    }

    #[test]
    fn dataset_shapes_per_strategy() {
        let (ds, part) = setup();
        let (train, _) = ds.chronological_split(5);
        let arch_halo = 2;
        for (strategy, in_hw, tgt_hw) in [
            (PaddingStrategy::ZeroPad, 8, 8),
            (PaddingStrategy::NeighborPad, 12, 8),
            (PaddingStrategy::InnerCrop, 8, 4),
        ] {
            let sd = SubdomainDataset::build(
                &train,
                &part,
                1,
                arch_halo,
                strategy,
                &ChannelNorm::identity(4),
            );
            assert_eq!(sd.len(), 5);
            assert_eq!(sd.inputs().shape(), (5, 4, in_hw, in_hw), "{strategy:?}");
            assert_eq!(sd.targets().shape(), (5, 4, tgt_hw, tgt_hw), "{strategy:?}");
        }
    }

    #[test]
    fn neighbor_pad_input_overlaps_neighbor_interior() {
        let (ds, part) = setup();
        let (train, _) = ds.chronological_split(5);
        let sd0 = SubdomainDataset::build(
            &train,
            &part,
            0,
            2,
            PaddingStrategy::NeighborPad,
            &ChannelNorm::identity(4),
        );
        // Rank 0's input right halo equals rank 1's interior left columns.
        let b1 = part.block_of_rank(1);
        let x0 = sd0.inputs().sample_tensor(0);
        let snap = ds.snapshot(0);
        // x0 spans rows -2..10, cols -2..10 (clamped+padded to 12×12 with
        // interior offset (2,2)); its columns 10..12 are global cols 8..10.
        for c in 0..4 {
            for i in 0..8 {
                assert_eq!(x0[(c, i + 2, 10)], snap[(c, i, b1.j0)]);
                assert_eq!(x0[(c, i + 2, 11)], snap[(c, i, b1.j0 + 1)]);
            }
        }
    }

    #[test]
    fn epoch_order_deterministic_and_permuting() {
        let (ds, part) = setup();
        let (train, _) = ds.chronological_split(6);
        let sd = SubdomainDataset::build(
            &train,
            &part,
            0,
            2,
            PaddingStrategy::ZeroPad,
            &ChannelNorm::identity(4),
        );
        let o1 = sd.epoch_order(true, 9, 3);
        let o2 = sd.epoch_order(true, 9, 3);
        assert_eq!(o1, o2);
        let o3 = sd.epoch_order(true, 9, 4);
        assert_ne!(o1, o3, "different epochs should shuffle differently");
        let mut sorted = o1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        assert_eq!(sd.epoch_order(false, 9, 3), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn batches_cover_all_samples() {
        let ds = paper_dataset(16, 9); // 8 pairs
        let part = GridPartition::new(16, 16, 2, 2);
        let (train, _) = ds.chronological_split(7);
        let sd = SubdomainDataset::build(
            &train,
            &part,
            2,
            2,
            PaddingStrategy::ZeroPad,
            &ChannelNorm::identity(4),
        );
        let order = sd.epoch_order(false, 0, 0);
        let batches = sd.batches(&order, 3);
        assert_eq!(batches.len(), 3); // 3 + 3 + 1
        assert_eq!(batches[0].0.n(), 3);
        assert_eq!(batches[2].0.n(), 1);
        let total: usize = batches.iter().map(|(x, _)| x.n()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn batch_cursor_matches_eager_batches() {
        let ds = paper_dataset(16, 9); // 8 pairs
        let part = GridPartition::new(16, 16, 2, 2);
        let (train, _) = ds.chronological_split(7);
        let sd = SubdomainDataset::build(
            &train,
            &part,
            2,
            2,
            PaddingStrategy::ZeroPad,
            &ChannelNorm::identity(4),
        );
        let order = sd.epoch_order(true, 11, 2);
        let eager = sd.batches(&order, 3);
        let mut cursor = sd.batch_cursor(&order, 3);
        let mut x = Tensor4::zeros(0, 0, 0, 0);
        let mut y = Tensor4::zeros(0, 0, 0, 0);
        let mut k = 0;
        while cursor.next_into(&mut x, &mut y) {
            assert_eq!(x.as_slice(), eager[k].0.as_slice());
            assert_eq!(y.as_slice(), eager[k].1.as_slice());
            assert_eq!(x.shape(), eager[k].0.shape());
            k += 1;
        }
        assert_eq!(k, eager.len());
    }

    #[test]
    fn fill_epoch_order_matches_epoch_order() {
        let (ds, part) = setup();
        let (train, _) = ds.chronological_split(6);
        let sd = SubdomainDataset::build(
            &train,
            &part,
            0,
            2,
            PaddingStrategy::ZeroPad,
            &ChannelNorm::identity(4),
        );
        let mut order = Vec::new();
        sd.fill_epoch_order(true, 9, 3, &mut order);
        assert_eq!(order, sd.epoch_order(true, 9, 3));
        sd.fill_epoch_order(false, 9, 3, &mut order);
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }
}
