//! Anomaly-triggered flight recorder for serve mode.
//!
//! In serve mode the [`pde_trace`] ring stays continuously armed: spans
//! from every request land in the per-thread drop-oldest rings at the usual
//! near-zero cost, and nothing is written anywhere — until an anomaly trips
//! the recorder (a request over the latency SLO, a dead peer, a rank
//! panic). On a trip the armed session is finished and dumped as
//!
//! * `flight-{unix_ms}-{seq}-{reason}.trace.json` — the Chrome-trace view
//!   of the last ~ring-capacity spans leading up to the anomaly, and
//! * `flight-{unix_ms}-{seq}-{reason}.metrics.prom` — the full metrics
//!   registry rendered at the moment of the trip,
//!
//! then a fresh session is armed immediately, so consecutive anomalies each
//! get their own dump. Trigger rules and the trade-offs are in DESIGN.md
//! §4g.
//!
//! Arming uses the same global trace-session slot as `--trace`; the most
//! recent `begin` wins, so a serve process uses either the flight recorder
//! or a whole-run trace file, not both.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Ring capacity the recorder arms with: large enough to hold several
/// 4-rank requests' spans, small enough that an armed idle engine costs
/// a few MB.
pub const FLIGHT_RING_CAPACITY: usize = 1 << 15;

/// A continuously armed trace session plus a dump directory.
pub struct FlightRecorder {
    dir: PathBuf,
    armed: Option<pde_trace::TraceHandle>,
    seq: u64,
}

/// Where one trip's artifacts landed.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// The Chrome-trace JSON file.
    pub trace_path: PathBuf,
    /// The Prometheus-text metrics snapshot.
    pub metrics_path: PathBuf,
    /// Events captured in the dumped session.
    pub events: usize,
}

impl FlightRecorder {
    /// Creates `dir` and arms the first session.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<FlightRecorder> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FlightRecorder {
            dir,
            armed: Some(pde_trace::begin_with_capacity(FLIGHT_RING_CAPACITY)),
            seq: 0,
        })
    }

    /// The dump directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Dumps the armed session under `reason` (a short slug like
    /// `"slo-exceeded"`, `"peer-dead"`, `"rank-panic"`) and re-arms.
    pub fn trip(&mut self, reason: &str) -> io::Result<FlightDump> {
        let handle = self
            .armed
            .take()
            .expect("flight recorder is always re-armed after a trip");
        let trace = handle.finish();
        // Re-arm FIRST: even if the dump write fails, serving continues
        // with a live ring.
        self.armed = Some(pde_trace::begin_with_capacity(FLIGHT_RING_CAPACITY));
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        self.seq += 1;
        let stem = format!("flight-{unix_ms}-{}-{reason}", self.seq);
        let trace_path = self.dir.join(format!("{stem}.trace.json"));
        let metrics_path = self.dir.join(format!("{stem}.metrics.prom"));
        std::fs::write(&trace_path, trace.chrome_json())?;
        std::fs::write(&metrics_path, pde_telemetry::render_prometheus())?;
        Ok(FlightDump {
            trace_path,
            metrics_path,
            events: trace.events.len(),
        })
    }

    /// Number of trips so far.
    pub fn trips(&self) -> u64 {
        self.seq
    }
}

/// Maps a caught rank-panic payload to a dump-reason slug: panics whose
/// message mentions a dead/disconnected peer (the fatal `PeerDead` path in
/// `core::infer::resolve_halo` and commsim's `Disconnected`) file as
/// `peer-dead`; everything else as `rank-panic`.
pub fn classify_panic(payload: &(dyn std::any::Any + Send)) -> &'static str {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    if msg.contains("dead") || msg.contains("disconnected") || msg.contains("Disconnected") {
        "peer-dead"
    } else {
        "rank-panic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_flight_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pdeml_flight_{tag}_{}", std::process::id()))
    }

    #[test]
    fn trip_writes_both_artifacts_and_rearms() {
        let dir = temp_flight_dir("basic");
        let mut fr = FlightRecorder::new(&dir).unwrap();
        pde_trace::instant(pde_trace::Category::Comm, pde_trace::names::SEND, 1, 8);
        let dump = fr.trip("slo-exceeded").unwrap();
        assert!(dump.trace_path.exists(), "{:?}", dump.trace_path);
        assert!(dump.metrics_path.exists());
        let json = std::fs::read_to_string(&dump.trace_path).unwrap();
        assert!(json.contains("traceEvents"), "valid chrome-trace envelope");
        let name = dump.trace_path.file_name().unwrap().to_string_lossy();
        assert!(name.starts_with("flight-") && name.contains("slo-exceeded"));
        // Re-armed: a second trip writes a distinct pair of files.
        let dump2 = fr.trip("rank-panic").unwrap();
        assert_ne!(dump.trace_path, dump2.trace_path);
        assert_eq!(fr.trips(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_payloads_classify_by_message() {
        let dead: Box<dyn std::any::Any + Send> =
            Box::new("rank 1's Left neighbor is dead — a lost subdomain is fatal".to_string());
        assert_eq!(classify_panic(dead.as_ref()), "peer-dead");
        let other: Box<dyn std::any::Any + Send> = Box::new("index out of bounds".to_string());
        assert_eq!(classify_panic(other.as_ref()), "rank-panic");
        let opaque: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(classify_panic(opaque.as_ref()), "rank-panic");
    }
}
