//! The paper's CNN architecture (Table I), parameterized.
//!
//! Table I specifies four convolution layers with channel widths
//! 4 → 6 → 16 → 6 → 4, 5×5 kernels and padding; leaky ReLU (ε = 0.01)
//! activations. [`ArchSpec::paper`] reproduces that exactly;
//! [`ArchSpec::tiny`] is a shrunken variant for fast tests at small grids.

use crate::padding::PaddingStrategy;
use pde_nn::init::{init_conv, Init};
use pde_nn::{Conv2d, ConvTranspose2d, LeakyReLu, Sequential};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A conv-stack architecture: channel widths, square kernel, activation
/// slope.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchSpec {
    /// Channel widths, input first: `[c_in, h1, …, c_out]`. One conv layer
    /// per adjacent pair.
    pub channels: Vec<usize>,
    /// Square kernel edge (odd).
    pub kernel: usize,
    /// Leaky-ReLU negative slope (paper: 0.01).
    pub leak: f64,
}

/// One row of the Table-I summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerRow {
    /// 1-based layer number.
    pub layer: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel shape as `(in, out, kh, kw)` like the paper's column.
    pub kernel: (usize, usize, usize, usize),
    /// Whether the layer zero-pads to preserve dims in the `ZeroPad`
    /// strategy.
    pub padding: bool,
    /// Learnable parameters (weights + biases).
    pub params: usize,
}

impl ArchSpec {
    /// Table I of the paper: 4 layers, channels 4→6→16→6→4, 5×5 kernels.
    pub fn paper() -> Self {
        Self {
            channels: vec![4, 6, 16, 6, 4],
            kernel: 5,
            leak: 0.01,
        }
    }

    /// A two-layer 3×3 variant (halo 2) for fast tests on small grids.
    pub fn tiny() -> Self {
        Self {
            channels: vec![4, 6, 4],
            kernel: 3,
            leak: 0.01,
        }
    }

    /// Number of conv layers.
    pub fn n_layers(&self) -> usize {
        self.channels.len() - 1
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.channels[0]
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        *self.channels.last().unwrap()
    }

    /// Total one-sided spatial shrink of the unpadded stack:
    /// `n_layers * (kernel-1) / 2`. This is the input-halo width the
    /// neighbor-padding strategy needs.
    pub fn halo(&self) -> usize {
        self.n_layers() * (self.kernel - 1) / 2
    }

    /// Total learnable parameter count.
    pub fn param_count(&self) -> usize {
        self.layer_rows().iter().map(|r| r.params).sum()
    }

    /// The Table-I rows for reporting.
    pub fn layer_rows(&self) -> Vec<LayerRow> {
        self.channels
            .windows(2)
            .enumerate()
            .map(|(l, io)| LayerRow {
                layer: l + 1,
                in_channels: io[0],
                out_channels: io[1],
                kernel: (io[0], io[1], self.kernel, self.kernel),
                padding: true,
                params: io[0] * io[1] * self.kernel * self.kernel + io[1],
            })
            .collect()
    }

    /// Validates the spec (≥1 layer, odd kernel, sane leak).
    pub fn validate(&self) {
        assert!(
            self.channels.len() >= 2,
            "ArchSpec: need at least one layer"
        );
        assert!(
            self.kernel % 2 == 1 && self.kernel >= 1,
            "ArchSpec: kernel must be odd"
        );
        assert!((0.0..1.0).contains(&self.leak), "ArchSpec: leak in [0, 1)");
        assert!(
            self.channels.iter().all(|&c| c > 0),
            "ArchSpec: zero-width layer"
        );
    }

    /// Builds the network with Kaiming-initialized weights.
    ///
    /// `internally_padded` selects between "same" convolutions (the
    /// zero-padding strategy — every layer preserves spatial dims) and
    /// unpadded convolutions (the neighbor-padding / inner-crop strategies —
    /// each layer shrinks by `kernel − 1`).
    ///
    /// The final layer has no activation (linear regression head); all
    /// earlier layers are followed by leaky ReLU.
    pub fn build(&self, internally_padded: bool, seed: u64) -> Sequential {
        self.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        let n = self.n_layers();
        for (l, io) in self.channels.windows(2).enumerate() {
            let mut conv = if internally_padded {
                Conv2d::same(io[0], io[1], self.kernel)
            } else {
                Conv2d::new(pde_tensor::Conv2dSpec::square(io[0], io[1], self.kernel, 0))
            }
            .named(&format!("conv{}", l + 1));
            init_conv(
                &mut conv,
                Init::KaimingUniform {
                    neg_slope: self.leak,
                },
                &mut rng,
            );
            net.push_boxed(Box::new(conv));
            if l + 1 < n {
                net.push_boxed(Box::new(LeakyReLu::new(self.leak)));
            }
        }
        net
    }

    /// Builds the network a padding strategy requires:
    /// * `ZeroPad` — internally padded ("same") convolutions;
    /// * `NeighborPad` / `InnerCrop` — unpadded convolutions;
    /// * `Deconv` — unpadded convolutions plus a final
    ///   [`ConvTranspose2d`] with kernel `2·halo + 1` that restores the
    ///   spatial extent (paper §III approach 4).
    pub fn build_for(&self, strategy: PaddingStrategy, seed: u64) -> Sequential {
        let mut net = self.build(
            !matches!(
                strategy,
                PaddingStrategy::NeighborPad | PaddingStrategy::InnerCrop | PaddingStrategy::Deconv
            ),
            seed,
        );
        if strategy == PaddingStrategy::Deconv {
            let k = 2 * self.halo() + 1;
            let c = self.out_channels();
            let mut up = ConvTranspose2d::new(c, c, k).named("deconv");
            // Kaiming-uniform on the transpose kernel (fan_in = c·k²),
            // derived from the same seed stream position the convs left off.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDE_C0_11);
            let fan_in = (c * k * k) as f64;
            let gain = (2.0f64 / (1.0 + self.leak * self.leak)).sqrt();
            let bound = gain * (3.0 / fan_in).sqrt();
            for w in up.weight_mut().as_mut_slice() {
                *w = rng.gen_range(-bound..bound);
            }
            net.push_boxed(Box::new(up));
        }
        net
    }

    /// Total learnable parameters of the network [`ArchSpec::build_for`]
    /// produces (the Deconv strategy adds its up-sampling layer).
    pub fn param_count_for(&self, strategy: PaddingStrategy) -> usize {
        let base = self.param_count();
        if strategy == PaddingStrategy::Deconv {
            let k = 2 * self.halo() + 1;
            let c = self.out_channels();
            base + c * c * k * k + c
        } else {
            base
        }
    }

    /// Renders the Table-I summary as fixed-width text (one line per layer),
    /// matching the paper's columns.
    pub fn table(&self) -> String {
        let mut s = String::from(
            "layer | input    | output   | kernel            | padding\n\
             number| channels | channels | size              |\n",
        );
        for r in self.layer_rows() {
            s.push_str(&format!(
                "{:<6}| {:<9}| {:<9}| {}x{}x{}x{}          | {}\n",
                r.layer,
                r.in_channels,
                r.out_channels,
                r.kernel.0,
                r.kernel.1,
                r.kernel.2,
                r.kernel.3,
                if r.padding { "Yes" } else { "No" }
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_nn::Layer;
    use pde_tensor::Tensor4;

    #[test]
    fn paper_spec_matches_table1() {
        let a = ArchSpec::paper();
        assert_eq!(a.n_layers(), 4);
        assert_eq!(a.in_channels(), 4);
        assert_eq!(a.out_channels(), 4);
        let rows = a.layer_rows();
        assert_eq!(rows[0].kernel, (4, 6, 5, 5));
        assert_eq!(rows[1].kernel, (6, 16, 5, 5));
        assert_eq!(rows[2].kernel, (16, 6, 5, 5));
        assert_eq!(rows[3].kernel, (6, 4, 5, 5));
        assert!(rows.iter().all(|r| r.padding));
        // Parameter count: 4·6·25+6 + 6·16·25+16 + 16·6·25+6 + 6·4·25+4.
        assert_eq!(a.param_count(), 606 + 2416 + 2406 + 604);
    }

    #[test]
    fn halo_is_total_one_sided_shrink() {
        assert_eq!(ArchSpec::paper().halo(), 8); // 4 layers × 2
        assert_eq!(ArchSpec::tiny().halo(), 2); // 2 layers × 1
    }

    #[test]
    fn padded_build_preserves_dims() {
        let mut net = ArchSpec::paper().build(true, 1);
        let x = Tensor4::zeros(1, 4, 12, 12);
        assert_eq!(net.forward(&x, false).shape(), (1, 4, 12, 12));
        assert_eq!(net.param_count(), ArchSpec::paper().param_count());
    }

    #[test]
    fn unpadded_build_shrinks_by_twice_the_halo() {
        let a = ArchSpec::tiny();
        let mut net = a.build(false, 1);
        let x = Tensor4::zeros(1, 4, 12, 10);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), (1, 4, 12 - 2 * a.halo(), 10 - 2 * a.halo()));
    }

    #[test]
    fn build_is_deterministic_in_seed() {
        let a = ArchSpec::tiny();
        let mut n1 = a.build(true, 42);
        let mut n2 = a.build(true, 42);
        let x = Tensor4::from_fn(1, 4, 8, 8, |_, c, i, j| (c + i + j) as f64 * 0.1);
        assert_eq!(n1.forward(&x, false), n2.forward(&x, false));
        let mut n3 = a.build(true, 43);
        assert_ne!(n1.forward(&x, false), n3.forward(&x, false));
    }

    #[test]
    fn activation_count_is_layers_minus_one() {
        let net = ArchSpec::paper().build(true, 0);
        // 4 convs + 3 activations.
        assert_eq!(net.len(), 7);
    }

    #[test]
    fn table_renders_all_layers() {
        let t = ArchSpec::paper().table();
        assert!(t.contains("4x6x5x5"));
        assert!(t.contains("6x16x5x5"));
        assert!(t.contains("16x6x5x5"));
        assert!(t.contains("6x4x5x5"));
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn rejects_even_kernel() {
        let a = ArchSpec {
            channels: vec![4, 4],
            kernel: 4,
            leak: 0.01,
        };
        a.validate();
    }
}
