//! # pde-ml-core
//!
//! The paper's contribution: **domain-decomposed parallel training and
//! inference of CNN surrogates for PDEs** (Totounferoush et al., PDSEC/IPDPS
//! 2021), assembled from the workspace substrates:
//!
//! * [`arch`] — the Table-I four-layer CNN (4→6→16→6→4 channels, 5×5
//!   kernels, leaky ReLU) as a parameterized [`arch::ArchSpec`];
//! * [`padding`] — the §III strategies for reconciling conv-output and
//!   target dimensions (zero padding, neighbor-data padding, inner crop);
//! * [`data`] — per-subdomain supervised datasets with overlapping input
//!   halos, built from solver snapshots;
//! * [`train`] — the communication-free parallel trainer (one rank = one
//!   network = one subdomain), the single-network sequential reference, and
//!   instrumentation proving the zero-communication property;
//! * [`infer`] — parallel rollout with fully point-to-point halo exchange
//!   (two-phase, corners included) over `pde-commsim`;
//! * [`baseline`] — the Viviani-style data-parallel weight-averaging
//!   trainer the paper contrasts against (global allreduce every step);
//! * [`metrics`] — per-field accuracy reports (MAPE, RMSE, L∞, Pearson);
//! * [`observe`] — merges collected [`pde_trace`] traces with the runtime's
//!   perf/traffic counters into per-rank metrics rows;
//! * [`report`] — tiny CSV emission for the experiment harnesses.
//!
//! ## Quickstart
//!
//! ```
//! use pde_ml_core::prelude::*;
//!
//! // 1. Generate data with the Euler solver (tiny sizes for the doctest).
//! let data = pde_euler::dataset::paper_dataset(16, 6);
//! // 2. Decompose the 16×16 domain over 4 ranks and train in parallel.
//! let arch = ArchSpec::tiny();
//! let cfg = TrainConfig::quick_test();
//! let outcome = ParallelTrainer::new(arch, PaddingStrategy::NeighborPad, cfg)
//!     .train(&data, 4)
//!     .unwrap();
//! assert_eq!(outcome.rank_results.len(), 4);
//! // Training is communication-free: no rank sent a single byte.
//! assert!(outcome.rank_results.iter().all(|r| r.bytes_sent == 0));
//! ```

pub mod arch;
pub mod baseline;
pub mod data;
pub mod engine;
pub mod flight;
pub mod infer;
mod live;
pub mod metrics;
pub mod norm;
pub mod observe;
pub mod padding;
pub mod report;
pub mod schedule;
pub mod train;

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::arch::ArchSpec;
    pub use crate::baseline::{BaselineOutcome, DataParallelTrainer};
    pub use crate::data::SubdomainDataset;
    pub use crate::engine::{EngineConfig, EngineError, EnginePhases, InferEngine};
    pub use crate::flight::{FlightDump, FlightRecorder};
    pub use crate::infer::{
        HaloFallback, HaloPolicy, InferError, ParallelInference, RankRolloutState, RejectReason,
        RolloutResult,
    };
    pub use crate::metrics::FieldErrors;
    pub use crate::norm::ChannelNorm;
    pub use crate::padding::PaddingStrategy;
    pub use crate::schedule::{RequestId, RequestPhases, Scheduler, SchedulerConfig, Ticket};
    pub use crate::train::{ParallelTrainer, SequentialTrainer, TrainConfig, TrainOutcome};
    pub use pde_commsim::{FaultPlan, TrafficReport};
    pub use pde_domain::GridPartition;
}
