//! Parallel inference: autonomous rollout with point-to-point halo exchange.
//!
//! §III, inference: "The network receives the input at time t and predicts
//! the output at time t+1. … the output can not be directly fed into the
//! network, since its dimension is small. Extra data points must be
//! received from the neighboring processes. … Each processor communicates
//! directly to its neighbors and no central instance is used."
//!
//! [`ParallelInference::rollout`] implements exactly that protocol: each
//! rank keeps its subdomain state, and before every forward pass performs a
//! two-phase (x then y) neighbor exchange that also fills the diagonal
//! corners — the standard stencil-code halo pattern. With the zero-padding
//! strategy no exchange is needed at all; with inner-crop, rollout is
//! impossible (the output ring is missing) and construction fails.

use crate::arch::ArchSpec;
use crate::norm::ChannelNorm;
use crate::padding::PaddingStrategy;
use crate::train::{PredictionMode, TrainOutcome};
use pde_commsim::{
    CartComm, Comm, Direction, FaultPlan, HaloRecv, TrafficReport, TransportKind, World,
};
use pde_domain::halo::{pack_cols, pack_rows, place_rows};
use pde_domain::{gather, scatter, GridPartition};
use pde_nn::serialize::restore;
use pde_nn::{Layer, Sequential};
use pde_tensor::{perf, PerfCounters, Tensor3, Tensor4};
use std::time::{Duration, Instant};

/// Why a rollout request was rejected before any rank ran. Returned (not
/// panicked) so a serving layer can refuse one bad request without tearing
/// down the engine — and so the CLI can print a hint instead of a
/// backtrace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InferError {
    /// A history state's spatial shape does not match the trained
    /// partition.
    ShapeMismatch {
        /// `(h, w)` the partition was built for.
        expected: (usize, usize),
        /// `(h, w)` of the offending state.
        got: (usize, usize),
    },
    /// A history state's channel count does not match the trained
    /// normalization.
    ChannelMismatch {
        /// Channels the model was trained on.
        expected: usize,
        /// Channels of the offending state.
        got: usize,
    },
    /// The number of history states does not match the training window.
    WindowMismatch {
        /// The model's time-window width.
        expected: usize,
        /// States supplied.
        got: usize,
    },
    /// The request named a model the engine has never been given.
    UnknownModel {
        /// The name the request asked for.
        name: String,
    },
    /// A rank died while serving and the engine could not bring the world
    /// back within its retry budget. The request was not served; the
    /// caller may retry once recovery completes (or rebuild the engine if
    /// it keeps failing).
    Recovering {
        /// Kill-and-heal rounds attempted before giving up.
        attempts: usize,
    },
    /// The scheduler refused admission before the request touched any
    /// rank: load shedding, not failure. The reason names which admission
    /// gate fired (and labels the `pdeml_requests_rejected_total` series).
    Rejected {
        /// Which admission gate refused the request.
        reason: RejectReason,
    },
}

/// Why the scheduler's admission control shed a request (the `reason`
/// label on `pdeml_requests_rejected_total`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue is at capacity.
    QueueFull,
    /// The health model reports Degraded or Failed — new traffic is
    /// refused while the engine recovers.
    Unhealthy,
    /// The rolling p99.9 latency breached the configured `--slo-ms`
    /// objective; shedding now beats collapsing later.
    SloBreach,
}

impl RejectReason {
    /// The metric label value (`reason="…"`).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::Unhealthy => "unhealthy",
            RejectReason::SloBreach => "slo",
        }
    }
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::ShapeMismatch { expected, got } => write!(
                f,
                "state is {}x{} but the model was trained on a {}x{} grid — \
                 pass a state from the same simulation resolution (or retrain)",
                got.0, got.1, expected.0, expected.1
            ),
            InferError::ChannelMismatch { expected, got } => write!(
                f,
                "state has {got} channels but the model expects {expected} — \
                 the dataset and model disagree on the field set"
            ),
            InferError::WindowMismatch { expected, got } => write!(
                f,
                "model was trained with a time window of {expected} state(s) but {got} were \
                 supplied — pass exactly {expected} consecutive states (oldest first) to \
                 rollout_from_history"
            ),
            InferError::UnknownModel { name } => write!(
                f,
                "no model named '{name}' is registered with the engine — \
                 call InferEngine::register (or register_outcome) first"
            ),
            InferError::Recovering { attempts } => write!(
                f,
                "a rank died while serving and {attempts} heal-and-retry round(s) did not \
                 produce a healthy world — the request was not served; retry it, and if \
                 recovery keeps failing rebuild the engine"
            ),
            InferError::Rejected { reason } => {
                let why = match reason {
                    RejectReason::QueueFull => "the request queue is full",
                    RejectReason::Unhealthy => "the health model reports degraded/failed",
                    RejectReason::SloBreach => "rolling p99.9 latency breached the SLO",
                };
                write!(
                    f,
                    "request rejected ({}): {why} — the scheduler is shedding load; \
                     back off and retry",
                    reason.as_str()
                )
            }
        }
    }
}

impl std::error::Error for InferError {}

/// What replaces a halo strip whose message was lost (under
/// [`HaloPolicy::Degrade`]). A *dead peer* is never replaced — see
/// [`HaloPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaloFallback {
    /// Leave the halo cells zero — the same treatment a physical boundary
    /// gets, so the network sees in-distribution (if wrong-place) values.
    ZeroFill,
    /// Reuse the strip last received from that neighbor (bitwise), on the
    /// grounds that the flow field decorrelates over a few steps, not one.
    /// Falls back to zeros when nothing was ever received (counted as
    /// zero-filled, not stale).
    LastKnown,
}

/// How [`ParallelInference::rollout`] treats halo-exchange failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HaloPolicy {
    /// Block until every strip arrives; a lost message hangs the rollout
    /// and a dead peer panics. This is the exact pre-resilience code path —
    /// bitwise-equal to [`ParallelInference::reference_rollout`] — and
    /// assumes a reliable transport.
    #[default]
    Strict,
    /// Give each exchange phase (x, then y) a single `timeout` budget shared
    /// by its timed receives — armed once per phase, so a step is bounded by
    /// `2 × timeout` no matter how many strips are lost — then substitute
    /// `fallback` for whatever never arrived and keep rolling. Lost and
    /// substituted strips
    /// are counted per rank in the [`TrafficReport`]. A dead *peer* is
    /// still fatal: its entire subdomain is gone, and silently zero-filling
    /// a missing quarter of the domain would corrupt the result without a
    /// trace — that distinction (loss vs. death) is the reason
    /// [`pde_commsim::HaloStatus`] exists.
    Degrade {
        /// The budget one exchange phase's receives share before the
        /// stragglers are declared lost.
        timeout: Duration,
        /// What fills the hole a lost strip leaves.
        fallback: HaloFallback,
    },
}

/// A rollout's outputs.
#[derive(Clone, Debug)]
pub struct RolloutResult {
    /// Global states: `states[0]` is the initial condition, `states[k]` the
    /// prediction after `k` network steps.
    pub states: Vec<Tensor3>,
    /// Per-rank traffic and halo-resilience counters during the rollout.
    pub traffic: Vec<TrafficReport>,
    /// Per-rank compute counters (FLOPs, GEMM calls, heap allocations)
    /// measured on each rank thread over the rollout loop — reset/steps
    /// only, excluding model construction. `allocs` is how the zero-alloc
    /// suite observes that a warm engine request stays off the heap.
    pub rank_perf: Vec<PerfCounters>,
}

impl RolloutResult {
    /// Number of prediction steps taken.
    pub fn n_steps(&self) -> usize {
        self.states.len() - 1
    }

    /// Total bytes moved between ranks.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.iter().map(|t| t.bytes_sent).sum()
    }

    /// Total halo receives (across ranks) that timed out.
    pub fn total_halos_lost(&self) -> u64 {
        self.traffic.iter().map(|t| t.halos_lost).sum()
    }

    /// Total fallback substitutions (zero-filled + stale) across ranks.
    pub fn total_fallbacks(&self) -> u64 {
        self.traffic.iter().map(|t| t.fallbacks()).sum()
    }

    /// True when any rank lost a halo or substituted fallback data — i.e.
    /// the states were NOT produced by the exact reference protocol.
    pub fn degraded(&self) -> bool {
        self.traffic.iter().any(|t| t.degraded())
    }
}

/// Trained per-subdomain networks ready for parallel inference.
#[derive(Clone)]
pub struct ParallelInference {
    arch: ArchSpec,
    strategy: PaddingStrategy,
    part: GridPartition,
    weights: Vec<Vec<f64>>,
    norm: ChannelNorm,
    prediction: PredictionMode,
    window: usize,
    halo_policy: HaloPolicy,
    fault_plan: Option<FaultPlan>,
    transport: TransportKind,
}

impl ParallelInference {
    /// Builds from explicit per-rank weight snapshots.
    ///
    /// # Panics
    /// If the weight count does not match the partition's rank count, or
    /// the strategy cannot roll out (inner-crop).
    pub fn new(
        arch: ArchSpec,
        strategy: PaddingStrategy,
        part: GridPartition,
        weights: Vec<Vec<f64>>,
        norm: ChannelNorm,
        prediction: PredictionMode,
    ) -> Self {
        Self::with_window(arch, strategy, part, weights, norm, prediction, 1)
    }

    /// Like [`ParallelInference::new`] with an explicit input time-window
    /// width (must match training).
    #[allow(clippy::too_many_arguments)]
    pub fn with_window(
        arch: ArchSpec,
        strategy: PaddingStrategy,
        part: GridPartition,
        weights: Vec<Vec<f64>>,
        norm: ChannelNorm,
        prediction: PredictionMode,
        window: usize,
    ) -> Self {
        assert!(window >= 1, "ParallelInference: window must be >= 1");
        assert!(
            strategy.supports_rollout(),
            "ParallelInference: the {} strategy cannot roll out (its output lacks the \
             boundary ring, as §III of the paper notes)",
            strategy.label()
        );
        assert_eq!(
            weights.len(),
            part.rank_count(),
            "ParallelInference: one weight set per rank"
        );
        let expected = arch.param_count_for(strategy);
        for (r, w) in weights.iter().enumerate() {
            assert_eq!(
                w.len(),
                expected,
                "ParallelInference: rank {r} weight snapshot length"
            );
        }
        assert_eq!(
            norm.channels() * window,
            arch.in_channels(),
            "ParallelInference: window {window} over {}-channel states does not feed a \
             {}-channel network",
            norm.channels(),
            arch.in_channels()
        );
        Self {
            arch,
            strategy,
            part,
            weights,
            norm,
            prediction,
            window,
            halo_policy: HaloPolicy::default(),
            fault_plan: None,
            transport: TransportKind::default(),
        }
    }

    /// Sets the halo-failure policy for subsequent rollouts (builder
    /// style). The default is [`HaloPolicy::Strict`].
    pub fn with_halo_policy(mut self, policy: HaloPolicy) -> Self {
        self.halo_policy = policy;
        self
    }

    /// Injects a communication fault plan into subsequent rollouts
    /// (builder style) — the rollout-level entry point for resilience
    /// experiments and the CLI's `--fault` flag.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Selects the transport the in-process rollout world runs over
    /// (builder style). The default [`TransportKind::Channel`] is the
    /// original channel mesh; [`TransportKind::Tcp`] moves every halo
    /// message over localhost sockets — same protocol, real network stack.
    pub fn with_transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// The halo-failure policy rollouts will use.
    pub fn halo_policy(&self) -> HaloPolicy {
        self.halo_policy
    }

    /// The time-window width the model was trained with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The input halo width rollouts exchange (0 = communication-free).
    pub fn input_halo(&self) -> usize {
        self.strategy.input_halo(self.arch.halo())
    }

    /// Builds from a [`TrainOutcome`] (same arch/strategy as training).
    pub fn from_outcome(arch: ArchSpec, strategy: PaddingStrategy, outcome: &TrainOutcome) -> Self {
        let weights = outcome
            .rank_results
            .iter()
            .map(|r| r.weights.clone())
            .collect();
        Self::with_window(
            arch,
            strategy,
            outcome.partition,
            weights,
            outcome.norm.clone(),
            outcome.prediction,
            outcome.window,
        )
    }

    /// The partition in use.
    pub fn partition(&self) -> &GridPartition {
        &self.part
    }

    /// Checks one request's history against the trained configuration —
    /// the single validation path shared by [`ParallelInference::rollout`],
    /// [`ParallelInference::rollout_from_history`] and the serving engine.
    pub fn validate_history(&self, history: &[Tensor3]) -> Result<(), InferError> {
        if history.len() != self.window {
            return Err(InferError::WindowMismatch {
                expected: self.window,
                got: history.len(),
            });
        }
        for state in history {
            if (state.h(), state.w()) != (self.part.global_h(), self.part.global_w()) {
                return Err(InferError::ShapeMismatch {
                    expected: (self.part.global_h(), self.part.global_w()),
                    got: (state.h(), state.w()),
                });
            }
            if state.c() != self.norm.channels() {
                return Err(InferError::ChannelMismatch {
                    expected: self.norm.channels(),
                    got: state.c(),
                });
            }
        }
        Ok(())
    }

    /// Scatters a (validated) global history into per-rank normalized local
    /// histories, oldest first — the networks operate in normalized space.
    /// Public so a multi-process world node can cut its own rank's slice
    /// from a shared global history.
    pub fn scatter_history(&self, history: &[Tensor3]) -> Vec<Vec<Tensor3>> {
        let mut acc: Vec<Vec<Tensor3>> = vec![Vec::new(); self.part.rank_count()];
        for g in history {
            for (r, local) in scatter(&self.norm.normalize3(g), &self.part)
                .into_iter()
                .enumerate()
            {
                acc[r].push(local);
            }
        }
        acc
    }

    /// Builds rank `rank`'s resident rollout machine: the restored network
    /// plus history ring, halo caches and scratch tensors sized for that
    /// rank's block. The serving engine keeps these alive across requests;
    /// the one-shot rollout below builds one per call.
    pub fn rank_state(&self, rank: usize) -> RankRolloutState {
        let mut net = self.arch.build_for(self.strategy, 0);
        restore(&mut net, &self.weights[rank]);
        let block = self.part.block_of_rank(rank);
        RankRolloutState::new(
            net,
            self.window,
            self.strategy.input_halo(self.arch.halo()),
            self.halo_policy,
            self.prediction,
            self.norm.channels(),
            block.h,
            block.w,
        )
    }

    /// Stitches per-rank normalized step outputs back into global physical
    /// states: `states[0]` is the caller's own initial state, `states[k]`
    /// the gathered, denormalized prediction after `k` steps. Public so a
    /// multi-process driver can reassemble gathered rank trajectories.
    pub fn stitch_states(
        &self,
        initial: &Tensor3,
        histories: &[Vec<Tensor3>],
        n_steps: usize,
    ) -> Vec<Tensor3> {
        let mut states = Vec::with_capacity(n_steps + 1);
        states.push(initial.clone());
        for k in 1..=n_steps {
            let step_locals: Vec<Tensor3> = histories.iter().map(|h| h[k].clone()).collect();
            states.push(self.norm.denormalize3(&gather(&step_locals, &self.part)));
        }
        states
    }

    /// Runs an `n_steps` autonomous rollout from `initial` with one thread
    /// per rank and p2p halo exchange.
    ///
    /// Fails with [`InferError`] when `initial` does not match the trained
    /// configuration — including models trained with a time window > 1,
    /// which need [`ParallelInference::rollout_from_history`].
    pub fn rollout(&self, initial: &Tensor3, n_steps: usize) -> Result<RolloutResult, InferError> {
        if self.window != 1 {
            return Err(InferError::WindowMismatch {
                expected: self.window,
                got: 1,
            });
        }
        self.rollout_from_history(std::slice::from_ref(initial), n_steps)
    }

    /// Windowed rollout: `history` holds the last `window` global states,
    /// oldest first; the model then predicts `n_steps` further states.
    ///
    /// Returns states `[history.last(), pred_1, …, pred_n]`, or an
    /// [`InferError`] when the history does not match the trained
    /// configuration.
    pub fn rollout_from_history(
        &self,
        history: &[Tensor3],
        n_steps: usize,
    ) -> Result<RolloutResult, InferError> {
        self.validate_history(history)?;
        let initial = history.last().expect("window >= 1");
        let part = self.part;
        let per_rank_history = self.scatter_history(history);
        let halo = self.strategy.input_halo(self.arch.halo());
        let window = self.window;
        let policy = self.halo_policy;

        let mut world = World::new(part.rank_count()).with_transport(self.transport);
        if let Some(plan) = &self.fault_plan {
            world = world.with_fault_plan(plan.clone());
        }
        let (outs, traffic) = world.run_with_stats(|comm| {
            let rank = comm.rank();
            let mut cart = CartComm::new(comm, part.py(), part.px(), false);
            let mut st = self.rank_state(rank);
            st.reset(&per_rank_history[rank]);
            let perf0 = perf::snapshot();
            let mut produced = Vec::with_capacity(n_steps + 1);
            produced.push(st.latest().clone());
            for step in 0..n_steps {
                let next = st.step(&mut cart, (step * window) as u32);
                produced.push(next.clone());
            }
            // Quiesce under Degrade: a healthy rank can run several steps
            // ahead of a neighbor that is waiting out timeouts; exiting
            // (dropping the Comm) would make that neighbor's remaining
            // receives read as peer death. The barrier (fault-exempt, like
            // every collective) keeps each rank alive until all are done.
            if matches!(policy, HaloPolicy::Degrade { .. }) && halo > 0 {
                cart.comm_mut().barrier();
            }
            (produced, perf::snapshot().since(&perf0))
        });
        let (histories, rank_perf): (Vec<Vec<Tensor3>>, Vec<PerfCounters>) =
            outs.into_iter().unzip();

        Ok(RolloutResult {
            states: self.stitch_states(initial, &histories, n_steps),
            traffic,
            rank_perf,
        })
    }

    /// Thread-free reference rollout: at every step the *global* state is
    /// known, each rank's input is cut from it directly (the same
    /// construction training uses), and outputs are stitched back.
    ///
    /// Must agree with [`ParallelInference::rollout`] bit-for-bit — the
    /// integration tests enforce it — because the halo exchange is supposed
    /// to reproduce precisely the overlapping-window inputs.
    pub fn reference_rollout(&self, initial: &Tensor3, n_steps: usize) -> Vec<Tensor3> {
        assert_eq!(
            self.window, 1,
            "reference_rollout: use reference_rollout_from_history"
        );
        self.reference_rollout_from_history(std::slice::from_ref(initial), n_steps)
    }

    /// Windowed thread-free reference (see [`ParallelInference::reference_rollout`]).
    pub fn reference_rollout_from_history(
        &self,
        history: &[Tensor3],
        n_steps: usize,
    ) -> Vec<Tensor3> {
        assert_eq!(
            history.len(),
            self.window,
            "reference_rollout_from_history: history length"
        );
        let part = self.part;
        let halo = self.strategy.input_halo(self.arch.halo());
        let mode = self.strategy.boundary_pad_mode();
        let mut nets: Vec<Sequential> = self
            .weights
            .iter()
            .map(|w| {
                let mut n = self.arch.build_for(self.strategy, 0);
                restore(&mut n, w);
                n
            })
            .collect();
        let mut recent: Vec<Tensor3> = history.iter().map(|g| self.norm.normalize3(g)).collect();
        let mut states = vec![history.last().expect("history").clone()];
        for _ in 0..n_steps {
            let locals: Vec<Tensor3> = (0..part.rank_count())
                .map(|r| {
                    let block = part.block_of_rank(r);
                    let padded: Vec<Tensor3> = recent
                        .iter()
                        .map(|g| crate::data::extract_input(g, &block, halo, mode))
                        .collect();
                    let refs: Vec<&Tensor3> = padded.iter().collect();
                    let input = Tensor3::concat_channels(&refs);
                    let y = nets[r]
                        .forward(&Tensor4::from_sample(&input), false)
                        .sample_tensor(0);
                    match self.prediction {
                        PredictionMode::Absolute => y,
                        PredictionMode::Residual => {
                            let mut next = crate::data::extract_target(
                                recent.last().expect("history"),
                                &block,
                                0,
                            );
                            next.axpy(1.0, &y);
                            next
                        }
                    }
                })
                .collect();
            let next = gather(&locals, &part);
            states.push(self.norm.denormalize3(&next));
            recent.remove(0);
            recent.push(next);
        }
        states
    }
}

/// One rank's resident rollout machine — the old ~150-line rollout closure
/// made into a value you can keep, test, and reuse.
///
/// Owns the rank's restored [`Sequential`], its window history ring, the
/// per-slot last-known [`HaloCache`]s, and resident input/output scratch
/// tensors. [`RankRolloutState::reset`] rewinds it to a new initial
/// history; each [`RankRolloutState::step`] advances one prediction step
/// (halo exchange → forward pass → ring rotation). Communication goes
/// through the [`CartComm`] the *caller* owns, so one communicator can
/// serve several resident models on the same rank.
///
/// The step path is engineered to stay off the heap once warm: the input
/// is assembled straight into a resident `Tensor4`, the forward pass uses
/// the network's ping-pong workspace, and the prediction overwrites the
/// ring's oldest buffer in place. With a communication-free strategy
/// (`halo == 0`, e.g. zero-padding) a warm step performs **zero**
/// allocations; with halo exchange the transported strips still allocate
/// (payloads travel through channels by value).
pub struct RankRolloutState {
    net: Sequential,
    window: usize,
    halo: usize,
    policy: HaloPolicy,
    prediction: PredictionMode,
    /// Last `window` local states in normalized space, oldest first. Ring
    /// storage: `step` rotates it and overwrites the freed buffer.
    recent: Vec<Tensor3>,
    /// One last-known-strip cache per window slot (the slots cycle through
    /// `recent` positions, so slot s at step k holds the same physical
    /// field as slot s at step k−1 did one step ago).
    caches: Vec<HaloCache>,
    /// Resident network input: the window states' padded channels
    /// concatenated, batch dimension 1.
    input: Tensor4,
    /// Resident network output.
    output: Tensor4,
    /// When set (by a self-healing engine), a dead neighbor degrades like a
    /// lost strip instead of panicking — the supervisor is about to respawn
    /// the peer, so the gap is temporary. Default `false`: in an
    /// unrecovered world a dead rank's subdomain is gone for good and
    /// serving past it would silently corrupt results.
    survive_dead: bool,
}

impl RankRolloutState {
    /// Builds the machine for a `c × h × w` local block. `net` must already
    /// hold the rank's weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: Sequential,
        window: usize,
        halo: usize,
        policy: HaloPolicy,
        prediction: PredictionMode,
        c: usize,
        h: usize,
        w: usize,
    ) -> Self {
        assert!(window >= 1, "RankRolloutState: window must be >= 1");
        Self {
            net,
            window,
            halo,
            policy,
            prediction,
            recent: (0..window).map(|_| Tensor3::zeros(c, h, w)).collect(),
            caches: vec![HaloCache::default(); window],
            input: Tensor4::zeros(1, window * c, h + 2 * halo, w + 2 * halo),
            output: Tensor4::zeros(0, 0, 0, 0),
            survive_dead: false,
        }
    }

    /// Arms (or disarms) dead-neighbor survival: under
    /// [`HaloPolicy::Degrade`], a [`pde_commsim::HaloRecv::PeerDead`] is
    /// then handled like a lost strip (fallback substitution) instead of
    /// panicking. Only a supervisor that guarantees the peer comes back
    /// should set this — see [`HaloPolicy`] for why death is otherwise
    /// fatal.
    pub fn set_survive_dead(&mut self, survive: bool) {
        self.survive_dead = survive;
    }

    /// The model's time-window width.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The newest local state (normalized space) — after `reset`, the
    /// initial condition; after `step`, the latest prediction.
    pub fn latest(&self) -> &Tensor3 {
        self.recent.last().expect("window >= 1")
    }

    /// Rewinds to a new request: copies the `window` local history states
    /// (normalized, oldest first) into the ring and forgets all last-known
    /// halo strips. Allocation-free: the ring buffers are reused.
    ///
    /// # Panics
    /// If the history length or any state's shape does not match — the
    /// driver validates requests before they reach rank state, so a
    /// mismatch here is a bug, not bad user input.
    pub fn reset(&mut self, history: &[Tensor3]) {
        assert_eq!(
            history.len(),
            self.window,
            "RankRolloutState::reset: history length"
        );
        for (slot, state) in history.iter().enumerate() {
            assert_eq!(
                state.shape(),
                self.recent[slot].shape(),
                "RankRolloutState::reset: slot {slot} shape"
            );
            self.recent[slot]
                .as_mut_slice()
                .copy_from_slice(state.as_slice());
        }
        for cache in &mut self.caches {
            *cache = HaloCache::default();
        }
    }

    /// One prediction step: assembles the (halo-exchanged) padded input of
    /// every window slot, runs the forward pass, applies the prediction
    /// mode and rotates the ring. Returns the new latest state.
    ///
    /// `tag_base` namespaces this step's exchanges: slot `s` uses tag
    /// `tag_base + s`, so concurrent exchanges of different slots cannot
    /// cross. Callers advance it by `window` per step (and rely on
    /// generation tagging, not tags, for isolation *between* requests on a
    /// persistent world).
    pub fn step(&mut self, cart: &mut CartComm, tag_base: u32) -> &Tensor3 {
        let _step_span = pde_trace::span_args(
            pde_trace::Category::Infer,
            pde_trace::names::STEP,
            tag_base as u64,
            0,
        );
        let (c, h, w) = self.recent[0].shape();
        let plane = c * (h + 2 * self.halo) * (w + 2 * self.halo);
        for slot in 0..self.window {
            let state = &self.recent[slot];
            let dst = &mut self.input.sample_mut(0)[slot * plane..(slot + 1) * plane];
            if self.halo == 0 {
                dst.copy_from_slice(state.as_slice());
            } else {
                let tag = tag_base + slot as u32;
                let padded = match self.policy {
                    HaloPolicy::Strict => assemble_halo_input(cart, state, self.halo, tag),
                    HaloPolicy::Degrade { timeout, fallback } => assemble_halo_input_degraded(
                        cart,
                        state,
                        self.halo,
                        tag,
                        timeout,
                        fallback,
                        self.survive_dead,
                        &mut self.caches[slot],
                    ),
                };
                dst.copy_from_slice(padded.as_slice());
            }
        }
        self.net.forward_into(&self.input, false, &mut self.output);
        // Rotate the ring: the oldest state's buffer becomes the slot the
        // new prediction is written into.
        self.recent.rotate_left(1);
        let (older, newest) = self.recent.split_at_mut(self.window - 1);
        let dst = &mut newest[0];
        let y = self.output.sample(0);
        match self.prediction {
            PredictionMode::Absolute => dst.as_mut_slice().copy_from_slice(y),
            PredictionMode::Residual => {
                // next = last + y. After the rotation the previous state
                // sits at the end of `older` — except at window 1, where
                // `dst` itself still holds it.
                if let Some(last) = older.last() {
                    dst.as_mut_slice().copy_from_slice(last.as_slice());
                }
                for (d, dy) in dst.as_mut_slice().iter_mut().zip(y) {
                    *d += *dy;
                }
            }
        }
        self.latest()
    }
}

/// Assembles the `(c, h+2halo, w+2halo)` padded input of one rank by the
/// two-phase halo exchange. Physical-boundary halo cells stay zero
/// (`PadMode::Zeros`, consistent with training-input construction).
///
/// Phase 1 swaps `h × halo` column strips with the x-neighbors; phase 2
/// swaps `halo × (w+2halo)` row strips **of the partially assembled padded
/// tensor**, so corner cells arrive from diagonal neighbors without any
/// extra messages.
pub fn assemble_halo_input(
    cart: &mut CartComm,
    local: &Tensor3,
    halo: usize,
    step: u32,
) -> Tensor3 {
    let (c, h, w) = local.shape();
    assert!(
        halo <= h && halo <= w,
        "assemble_halo_input: halo {halo} exceeds local {h}x{w}"
    );
    let _span = pde_trace::span_args(
        pde_trace::Category::Infer,
        pde_trace::names::ASSEMBLE,
        step as u64,
        0,
    );
    let mut padded = Tensor3::zeros(c, h + 2 * halo, w + 2 * halo);
    padded.set_window(halo, halo, local);

    use pde_commsim::Direction::*;
    let rank = cart.comm().rank();
    // Phase 1: x-axis (column strips from the raw interior).
    let to_left = cart.neighbor(Left).map(|_| pack_cols(local, 0, halo));
    let to_right = cart
        .neighbor(Right)
        .map(|_| pack_cols(local, w - halo, halo));
    crate::live::halo_bytes_out().add(rank, strip_bytes(&to_left) + strip_bytes(&to_right));
    let (from_left, from_right) = cart.exchange_x(to_left, to_right, step * 2);
    crate::live::halo_bytes_in().add(rank, strip_bytes(&from_left) + strip_bytes(&from_right));
    if let Some(buf) = from_left {
        let strip = Tensor3::from_vec(c, h, halo, buf);
        padded.set_window(halo, 0, &strip);
    }
    if let Some(buf) = from_right {
        let strip = Tensor3::from_vec(c, h, halo, buf);
        padded.set_window(halo, w + halo, &strip);
    }

    // Phase 2: y-axis (row strips from the partially padded tensor — they
    // carry the freshly received x-halos, which become the corners).
    let to_down = cart.neighbor(Down).map(|_| pack_rows(&padded, halo, halo));
    let to_up = cart.neighbor(Up).map(|_| pack_rows(&padded, h, halo));
    crate::live::halo_bytes_out().add(rank, strip_bytes(&to_down) + strip_bytes(&to_up));
    let (from_down, from_up) = cart.exchange_y(to_down, to_up, step * 2 + 1);
    crate::live::halo_bytes_in().add(rank, strip_bytes(&from_down) + strip_bytes(&from_up));
    if let Some(buf) = from_down {
        place_rows(&mut padded, 0, halo, &buf);
    }
    if let Some(buf) = from_up {
        place_rows(&mut padded, h + halo, halo, &buf);
    }
    padded
}

/// Payload bytes of an optional halo strip (8 per f64 value).
fn strip_bytes(strip: &Option<Vec<f64>>) -> u64 {
    strip.as_ref().map_or(0, |v| v.len() as u64 * 8)
}

/// Last strip successfully received from each of the four neighbors (the
/// [`HaloFallback::LastKnown`] source), indexed like [`Direction::ALL`].
#[derive(Clone, Debug, Default)]
pub struct HaloCache {
    strips: [Option<Vec<f64>>; 4],
}

/// Loss-tolerant [`assemble_halo_input`]: the same two-phase exchange, but
/// *synchronized* — each phase posts its sends, crosses a barrier, and only
/// then runs the timed receives. After the barrier every delivered strip is
/// already in the inbox (sends enqueue before the sender can enter the
/// barrier), so a timeout can only fire for a message the fault plan
/// actually dropped (or delayed longer than `timeout`). That is what makes
/// degraded rollouts deterministic: which strips are lost is a pure
/// function of the fault plan, never of thread scheduling.
///
/// A lost strip is replaced per `fallback` and the substitution is counted
/// in this rank's [`TrafficReport`]. A **dead** neighbor panics under every
/// policy: its whole subdomain is missing, and no strip-level fallback can
/// stand in for a quarter of the domain. (The per-phase barriers cost
/// `2⌈log₂P⌉` extra empty messages per rank per assembly — the price of
/// determinism, visible in `msgs_sent` but not in `bytes_sent`.)
#[allow(clippy::too_many_arguments)]
pub fn assemble_halo_input_degraded(
    cart: &mut CartComm,
    local: &Tensor3,
    halo: usize,
    step: u32,
    timeout: Duration,
    fallback: HaloFallback,
    survive_dead: bool,
    cache: &mut HaloCache,
) -> Tensor3 {
    let (c, h, w) = local.shape();
    assert!(
        halo <= h && halo <= w,
        "assemble_halo_input_degraded: halo {halo} exceeds local {h}x{w}"
    );
    let _span = pde_trace::span_args(
        pde_trace::Category::Infer,
        pde_trace::names::ASSEMBLE,
        step as u64,
        0,
    );
    let mut padded = Tensor3::zeros(c, h + 2 * halo, w + 2 * halo);
    padded.set_window(halo, halo, local);

    use Direction::*;
    // Phase 1: x-axis (column strips from the raw interior).
    let to_left = cart.neighbor(Left).map(|_| pack_cols(local, 0, halo));
    let to_right = cart
        .neighbor(Right)
        .map(|_| pack_cols(local, w - halo, halo));
    crate::live::halo_bytes_out().add(
        cart.comm().rank(),
        strip_bytes(&to_left) + strip_bytes(&to_right),
    );
    cart.post_x_sends(to_left, to_right, step * 2);
    cart.comm_mut().barrier(); // delivered x strips are now all inboxed
                               // One deadline for the whole phase, armed ONCE: the per-direction
                               // receives share the budget instead of each re-arming the full
                               // `timeout`, so losing both neighbors costs `timeout`, not 2×. Delivered
                               // strips are already inboxed (post-barrier) and a zero-remainder receive
                               // still drains the inbox non-blockingly, so sharing the budget can never
                               // misclassify a delivered strip as lost.
    let x_deadline = Instant::now() + timeout;
    for dir in [Left, Right] {
        let remaining = x_deadline.saturating_duration_since(Instant::now());
        if let Some(recv) = cart.recv_halo_dir(dir, step * 2, remaining) {
            if let Some(buf) = resolve_halo(cart.comm(), recv, dir, fallback, survive_dead, cache) {
                let strip = Tensor3::from_vec(c, h, halo, buf);
                let col = if dir == Left { 0 } else { w + halo };
                padded.set_window(halo, col, &strip);
            }
        }
    }

    // Phase 2: y-axis (row strips of the partially padded tensor — they
    // carry the x-halos just placed, which become the corners; a
    // zero-filled x-halo therefore propagates zeros into the corner it
    // feeds, exactly as if that corner were a physical boundary).
    let to_down = cart.neighbor(Down).map(|_| pack_rows(&padded, halo, halo));
    let to_up = cart.neighbor(Up).map(|_| pack_rows(&padded, h, halo));
    crate::live::halo_bytes_out().add(
        cart.comm().rank(),
        strip_bytes(&to_down) + strip_bytes(&to_up),
    );
    cart.post_y_sends(to_down, to_up, step * 2 + 1);
    cart.comm_mut().barrier(); // delivered y strips are now all inboxed
    let y_deadline = Instant::now() + timeout; // fresh budget for phase 2
    for dir in [Down, Up] {
        let remaining = y_deadline.saturating_duration_since(Instant::now());
        if let Some(recv) = cart.recv_halo_dir(dir, step * 2 + 1, remaining) {
            if let Some(buf) = resolve_halo(cart.comm(), recv, dir, fallback, survive_dead, cache) {
                let row = if dir == Down { 0 } else { h + halo };
                place_rows(&mut padded, row, halo, &buf);
            }
        }
    }
    padded
}

/// Classifies one directional [`HaloRecv`] under `fallback`: the strip to
/// place, or `None` to leave the (zeroed) halo cells alone. Maintains the
/// last-known cache and the per-rank substitution counters.
fn resolve_halo(
    comm: &Comm,
    recv: HaloRecv,
    dir: Direction,
    fallback: HaloFallback,
    survive_dead: bool,
    cache: &mut HaloCache,
) -> Option<Vec<f64>> {
    match recv {
        HaloRecv::Ok(buf) => {
            crate::live::halo_bytes_in().add(comm.rank(), buf.len() as u64 * 8);
            if fallback == HaloFallback::LastKnown {
                cache.strips[dir.index()] = Some(buf.clone());
            }
            Some(buf)
        }
        HaloRecv::Lost => match fallback {
            HaloFallback::ZeroFill => {
                comm.stats().note_halo_zero_filled();
                crate::live::halos_zero_filled().inc(comm.rank());
                None
            }
            HaloFallback::LastKnown => match &cache.strips[dir.index()] {
                Some(buf) => {
                    comm.stats().note_halo_stale();
                    crate::live::halos_stale().inc(comm.rank());
                    Some(buf.clone())
                }
                None => {
                    comm.stats().note_halo_zero_filled();
                    crate::live::halos_zero_filled().inc(comm.rank());
                    None
                }
            },
        },
        // Maskable only under a supervisor that will respawn the peer
        // (`survive_dead`): the gap is then served like a lost strip and
        // the retried request runs on the healed world. Otherwise
        // deliberately fatal: see `HaloPolicy::Degrade`.
        HaloRecv::PeerDead if survive_dead => {
            resolve_halo(comm, HaloRecv::Lost, dir, fallback, survive_dead, cache)
        }
        HaloRecv::PeerDead => panic!(
            "halo exchange: rank {}'s {dir:?} neighbor is dead — a lost subdomain is fatal \
             under every halo policy",
            comm.rank()
        ),
    }
}

/// Single-network rollout over the whole domain (no decomposition): the
/// reference used by the Fig.-3 accuracy study and the P = 1 scaling point.
pub fn single_network_rollout(
    net: &mut Sequential,
    arch: &ArchSpec,
    strategy: PaddingStrategy,
    norm: &ChannelNorm,
    prediction: PredictionMode,
    initial: &Tensor3,
    n_steps: usize,
) -> Vec<Tensor3> {
    assert!(
        strategy.supports_rollout(),
        "single_network_rollout: {} cannot roll out",
        strategy.label()
    );
    let halo = strategy.input_halo(arch.halo());
    let mode = strategy.boundary_pad_mode();
    let mut normalized = vec![norm.normalize3(initial)];
    let mut states = vec![initial.clone()];
    for _ in 0..n_steps {
        let cur = normalized.last().unwrap();
        let input = if halo == 0 {
            cur.clone()
        } else {
            pde_tensor::pad::pad_tensor3(cur, halo, halo, halo, halo, mode)
        };
        let y = net
            .forward(&Tensor4::from_sample(&input), false)
            .sample_tensor(0);
        let next = match prediction {
            PredictionMode::Absolute => y,
            PredictionMode::Residual => {
                let mut n = cur.clone();
                n.axpy(1.0, &y);
                n
            }
        };
        states.push(norm.denormalize3(&next));
        normalized.push(next);
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{ParallelTrainer, TrainConfig};
    use pde_euler::dataset::paper_dataset;
    use pde_tensor::assert_slice_close;

    fn trained(
        strategy: PaddingStrategy,
        n_ranks: usize,
    ) -> (pde_euler::DataSet, ParallelInference) {
        let data = paper_dataset(16, 8);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(arch.clone(), strategy, TrainConfig::quick_test())
            .train_view(&data, 6, n_ranks)
            .unwrap();
        let inf = ParallelInference::from_outcome(arch, strategy, &outcome);
        (data, inf)
    }

    #[test]
    fn parallel_rollout_matches_reference_neighbor_pad() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let initial = data.snapshot(6).clone();
        let par = inf.rollout(&initial, 3).unwrap();
        let refr = inf.reference_rollout(&initial, 3);
        assert_eq!(par.states.len(), 4);
        for (k, (a, b)) in par.states.iter().zip(&refr).enumerate() {
            assert_slice_close(
                a.as_slice(),
                b.as_slice(),
                1e-12,
                1e-12,
                &format!("step {k}"),
            );
        }
    }

    #[test]
    fn parallel_rollout_matches_reference_zero_pad() {
        let (data, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let initial = data.snapshot(6).clone();
        let par = inf.rollout(&initial, 2).unwrap();
        let refr = inf.reference_rollout(&initial, 2);
        for (a, b) in par.states.iter().zip(&refr) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_pad_rollout_is_communication_free() {
        let (data, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let r = inf.rollout(data.snapshot(0), 3).unwrap();
        assert_eq!(r.total_bytes(), 0);
        for t in &r.traffic {
            assert_eq!(t.msgs_sent, 0);
        }
    }

    #[test]
    fn neighbor_pad_traffic_is_boundary_sized() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let steps = 3;
        let r = inf.rollout(data.snapshot(0), steps).unwrap();
        // 2×2 grid, halo 2, 16×16 global → 8×8 blocks. Per step each rank
        // sends one x-strip (4·8·2 values) and one y-strip (4·2·12 values).
        let per_rank_per_step = 4 * 8 * 2 + 4 * 2 * 12;
        for (rank, t) in r.traffic.iter().enumerate() {
            assert_eq!(t.msgs_sent, 2 * steps as u64, "rank {rank} message count");
            assert_eq!(
                t.bytes_sent,
                (per_rank_per_step * steps * 8) as u64,
                "rank {rank} bytes"
            );
            assert!(!t.degraded(), "rank {rank} healthy strict rollout");
        }
    }

    #[test]
    fn rollout_includes_initial_state() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let initial = data.snapshot(2).clone();
        let r = inf.rollout(&initial, 1).unwrap();
        assert_eq!(&r.states[0], &initial);
        assert_eq!(r.n_steps(), 1);
    }

    #[test]
    fn single_rank_rollout_equals_single_network() {
        // With P = 1 the parallel machinery must degenerate exactly to the
        // monolithic network.
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 1);
        let initial = data.snapshot(0).clone();
        let par = inf.rollout(&initial, 2).unwrap();
        let mut net = inf.arch.build(false, 0);
        restore(&mut net, &inf.weights[0]);
        let single = single_network_rollout(
            &mut net,
            &inf.arch,
            PaddingStrategy::NeighborPad,
            &inf.norm,
            inf.prediction,
            &initial,
            2,
        );
        for (a, b) in par.states.iter().zip(&single) {
            assert_eq!(a, b);
        }
        assert_eq!(par.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot roll out")]
    fn inner_crop_rollout_is_rejected() {
        let data = paper_dataset(32, 6);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(
            arch.clone(),
            PaddingStrategy::InnerCrop,
            TrainConfig::quick_test(),
        )
        .train_view(&data, 4, 4)
        .unwrap();
        let _ = ParallelInference::from_outcome(arch, PaddingStrategy::InnerCrop, &outcome);
    }

    #[test]
    fn rollout_rejects_wrong_initial_shape_with_typed_error() {
        let (_, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let bad = Tensor3::zeros(4, 8, 8);
        let err = inf.rollout(&bad, 1).unwrap_err();
        assert_eq!(
            err,
            InferError::ShapeMismatch {
                expected: (16, 16),
                got: (8, 8),
            }
        );
        // The Display form carries the hint the CLI prints.
        assert!(err.to_string().contains("trained on a 16x16 grid"));
    }

    #[test]
    fn rollout_rejects_wrong_channel_count_with_typed_error() {
        let (_, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let bad = Tensor3::zeros(1, 16, 16);
        assert_eq!(
            inf.rollout(&bad, 1).unwrap_err(),
            InferError::ChannelMismatch {
                expected: 4,
                got: 1,
            }
        );
    }

    #[test]
    fn rollout_from_history_rejects_wrong_window_with_typed_error() {
        let (data, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let history = vec![data.snapshot(0).clone(), data.snapshot(1).clone()];
        assert_eq!(
            inf.rollout_from_history(&history, 1).unwrap_err(),
            InferError::WindowMismatch {
                expected: 1,
                got: 2,
            }
        );
    }

    #[test]
    fn rollout_reports_per_rank_perf_counters() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let r = inf.rollout(data.snapshot(0), 2).unwrap();
        assert_eq!(r.rank_perf.len(), 4);
        for (rank, p) in r.rank_perf.iter().enumerate() {
            assert!(p.flops > 0, "rank {rank} reported no FLOPs");
            assert!(p.gemm_calls > 0, "rank {rank} reported no GEMM calls");
        }
    }

    #[test]
    fn rank_state_step_matches_one_shot_rollout() {
        // Drive RankRolloutState directly (single rank, no communication)
        // and compare against the rollout driver — the refactor contract:
        // the extracted machine IS the rollout loop.
        let (data, inf) = trained(PaddingStrategy::ZeroPad, 1);
        let initial = data.snapshot(3).clone();
        let expect = inf.rollout(&initial, 3).unwrap();
        let normalized = inf.norm.normalize3(&initial);
        let out = pde_commsim::World::new(1).run(|comm| {
            let mut cart = CartComm::new(comm, 1, 1, false);
            let mut st = inf.rank_state(0);
            st.reset(std::slice::from_ref(&normalized));
            (0..3)
                .map(|step| st.step(&mut cart, step as u32).clone())
                .collect::<Vec<_>>()
        });
        for (k, local) in out[0].iter().enumerate() {
            assert_eq!(
                &inf.norm.denormalize3(local),
                &expect.states[k + 1],
                "step {k}"
            );
        }
    }

    #[test]
    fn degraded_assembly_arms_one_deadline_per_phase() {
        // Regression: the per-direction receives each re-armed the full
        // `timeout`, so the middle rank of a 1x3 row losing BOTH x strips
        // waited 2x the configured budget per step. With the shared
        // per-phase deadline the whole x phase costs one `timeout`.
        let timeout = Duration::from_millis(600);
        let plan = FaultPlan::new(|s, d, _| {
            if d == 1 && (s == 0 || s == 2) {
                pde_commsim::FaultAction::Drop
            } else {
                pde_commsim::FaultAction::Deliver
            }
        });
        let out = World::new(3).with_fault_plan(plan).run(|comm| {
            let rank = comm.rank();
            let mut cart = CartComm::new(comm, 1, 3, false);
            let local = Tensor3::zeros(1, 4, 4);
            let mut cache = HaloCache::default();
            let t0 = Instant::now();
            let padded = assemble_halo_input_degraded(
                &mut cart,
                &local,
                1,
                0,
                timeout,
                HaloFallback::ZeroFill,
                false,
                &mut cache,
            );
            let dt = t0.elapsed();
            assert_eq!(padded.shape(), (1, 6, 6));
            // Keep every sender alive until all timed receives resolved, so
            // a fast rank's exit cannot read as peer death elsewhere.
            cart.comm_mut().barrier();
            (rank, dt)
        });
        let (_, dt) = out.into_iter().find(|&(r, _)| r == 1).expect("rank 1");
        assert!(
            dt < timeout * 2,
            "two lost strips in one phase must share one {timeout:?} budget, took {dt:?}"
        );
    }
}
