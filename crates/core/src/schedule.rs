//! Concurrent serving: a bounded request queue feeding sub-world engines,
//! LRU-bounded multi-tenant residency, and SLO-aware admission control.
//!
//! [`crate::engine::InferEngine`] serves one request at a time — all of the
//! SIMD throughput below it sits behind a single-file queue. The
//! [`Scheduler`] fixes the shape: the caller splits one big world into
//! disjoint sub-worlds ([`pde_commsim::World::split`]), wraps each in an
//! engine, and the scheduler fans independent requests out to whichever
//! sub-world is idle. Because sub-worlds share nothing (own mesh, own
//! traffic stats, own generation counter), a request served on a 2-rank
//! sub-world is bitwise what a plain 2-rank engine would have served — the
//! equivalence suite pins this on both transports.
//!
//! ## Admission control
//!
//! `submit` decides admission synchronously, under one lock, in arrival
//! order — so for a fixed request trace (the sequence of submissions and
//! completions) the accept/reject outcome of every request is a pure
//! function of the trace, with no randomness and no sampling:
//!
//! 1. **Unhealthy** — the configured [`HealthModel`] reports Degraded or
//!    Failed: new traffic is refused while the stack recovers;
//! 2. **SLO breach** — the rolling p99.9 over the last
//!    [`LATENCY_WINDOW`] served requests exceeds `slo_ms`: shedding now
//!    beats collapsing later;
//! 3. **Queue full** — the bounded queue is at `queue_depth`.
//!
//! A shed request returns [`InferError::Rejected`] immediately and counts
//! on `pdeml_requests_rejected_total{reason=…}`; it never touches a rank.
//!
//! ## Residency
//!
//! Registered models are replicated on every sub-world (any sub-world can
//! serve any request). [`Residency`] bounds how many stay resident:
//! registering past `max_models` evicts the least-recently-used model that
//! has **no pending or in-flight requests** — an in-flight model is never
//! evicted; if every resident model is busy the registration fails with
//! [`EngineError::ResidencyFull`] instead.

use crate::engine::{EngineConfig, EngineError, InferEngine};
use crate::infer::{InferError, ParallelInference, RejectReason, RolloutResult};
use pde_commsim::World;
use pde_telemetry::health::{Health, HealthModel};
use pde_telemetry::DRIVER;
use pde_tensor::Tensor3;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Rolling latency samples the SLO admission gate looks at.
pub const LATENCY_WINDOW: usize = 256;

/// How a [`Scheduler`] admits, queues and evicts.
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Admitted requests that may wait for an idle sub-world before
    /// admission starts refusing with `queue_full`.
    pub queue_depth: usize,
    /// Resident-model cap across the registry (LRU eviction past it).
    pub max_models: usize,
    /// Rolling-p99.9 objective in milliseconds; `None` disarms the gate.
    pub slo_ms: Option<u64>,
    /// Served-request samples required before the SLO gate arms — a cold
    /// scheduler must not reject on one slow warm-up request.
    pub slo_min_samples: usize,
    /// Health model consulted at admission (Degraded/Failed ⇒ reject).
    pub health: Option<Arc<HealthModel>>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_depth: 32,
            max_models: 8,
            slo_ms: None,
            slo_min_samples: 32,
            health: None,
        }
    }
}

impl SchedulerConfig {
    /// Bounds the admitted-but-waiting queue.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Caps resident models (LRU eviction past the cap).
    pub fn with_max_models(mut self, cap: usize) -> Self {
        self.max_models = cap;
        self
    }

    /// Arms the rolling-p99.9 SLO admission gate.
    pub fn with_slo_ms(mut self, slo_ms: u64) -> Self {
        self.slo_ms = Some(slo_ms);
        self
    }

    /// Attaches the health model admission consults.
    pub fn with_health(mut self, health: Arc<HealthModel>) -> Self {
        self.health = Some(health);
        self
    }
}

/// Pure LRU residency bookkeeping: which models are resident, in what
/// recency order, and how many requests each has pending or in flight.
/// Factored out of the scheduler so the property suite can drive it
/// against a naive model without threads.
pub struct Residency {
    cap: usize,
    /// Resident names, least recently used first.
    order: Vec<String>,
    /// Pending + in-flight requests per resident model.
    busy: BTreeMap<String, usize>,
}

impl Residency {
    /// An empty residency with room for `cap` models.
    ///
    /// # Panics
    /// If `cap` is 0 — a scheduler that can hold no model serves nothing.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "Residency: need room for at least one model");
        Residency {
            cap,
            order: Vec::new(),
            busy: BTreeMap::new(),
        }
    }

    /// Resident names, least recently used first.
    pub fn order(&self) -> &[String] {
        &self.order
    }

    /// Whether `name` is resident.
    pub fn is_resident(&self, name: &str) -> bool {
        self.busy.contains_key(name)
    }

    /// Pending + in-flight requests charged to `name`.
    pub fn busy_count(&self, name: &str) -> usize {
        self.busy.get(name).copied().unwrap_or(0)
    }

    /// Makes `name` resident (most recently used), evicting the
    /// least-recently-used **idle** model if the cap is exceeded. Returns
    /// the evicted name, if any; errors when the cap is reached and every
    /// resident model has requests pending or in flight.
    pub fn admit(&mut self, name: &str) -> Result<Option<String>, EngineError> {
        if self.is_resident(name) {
            self.touch(name);
            return Ok(None);
        }
        let mut evicted = None;
        if self.order.len() >= self.cap {
            let victim = self
                .order
                .iter()
                .find(|m| self.busy[m.as_str()] == 0)
                .cloned()
                .ok_or_else(|| EngineError::ResidencyFull {
                    model: name.to_string(),
                    cap: self.cap,
                })?;
            self.order.retain(|m| m != &victim);
            self.busy.remove(&victim);
            evicted = Some(victim);
        }
        self.order.push(name.to_string());
        self.busy.insert(name.to_string(), 0);
        Ok(evicted)
    }

    /// Marks `name` most recently used.
    ///
    /// # Panics
    /// If `name` is not resident.
    pub fn touch(&mut self, name: &str) {
        assert!(self.is_resident(name), "touch('{name}'): not resident");
        self.order.retain(|m| m != name);
        self.order.push(name.to_string());
    }

    /// Charges one pending/in-flight request to `name` (admission).
    pub fn begin(&mut self, name: &str) {
        *self
            .busy
            .get_mut(name)
            .unwrap_or_else(|| panic!("begin('{name}'): not resident")) += 1;
    }

    /// Releases one request from `name` and marks it most recently used.
    pub fn finish(&mut self, name: &str) {
        let n = self
            .busy
            .get_mut(name)
            .unwrap_or_else(|| panic!("finish('{name}'): not resident"));
        assert!(*n > 0, "finish('{name}'): nothing in flight");
        *n -= 1;
        self.touch(name);
    }
}

/// One admitted request waiting for (or running on) a sub-world.
struct QueuedRequest {
    name: String,
    history: Vec<Tensor3>,
    n_steps: usize,
    tx: mpsc::Sender<Result<RolloutResult, InferError>>,
}

/// Registry maintenance shipped to a dispatcher, processed strictly before
/// it picks up queued requests — so a request admitted after `register`
/// returned can never reach a sub-world that has not registered the model.
enum Command {
    Register(String, ParallelInference),
    Evict(String),
}

struct SchedState {
    queue: VecDeque<QueuedRequest>,
    /// Per-dispatcher command queues (FIFO each).
    commands: Vec<VecDeque<Command>>,
    residency: Residency,
    /// Driver-side blueprints for request validation at admission.
    blueprints: BTreeMap<String, ParallelInference>,
    /// `(py, px)` fixed by the first registration (see the engine's rule).
    layout: Option<(usize, usize)>,
    /// Rolling served-request latencies (ms) the SLO gate inspects.
    latencies_ms: VecDeque<u64>,
    shutdown: bool,
    /// Dispatchers still alive (a panicked engine retires its dispatcher).
    live_workers: usize,
}

impl SchedState {
    /// Rolling p99.9 over the latency window, via the shared nearest-rank
    /// rule — the same index the serve-bench percentile would report.
    fn p999_ms(&self) -> Option<u64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let mut sorted: Vec<u64> = self.latencies_ms.iter().copied().collect();
        sorted.sort_unstable();
        let idx = pde_telemetry::nearest_rank(sorted.len() as u64, 0.999) as usize;
        Some(sorted[idx])
    }
}

struct Shared {
    state: Mutex<SchedState>,
    work: Condvar,
}

/// A pending result from [`Scheduler::submit`]. Dropping it abandons the
/// request's result (the request itself still runs).
pub struct Ticket {
    rx: mpsc::Receiver<Result<RolloutResult, InferError>>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket(pending)")
    }
}

impl Ticket {
    /// Blocks until the request completes. A request stranded by a died
    /// scheduler (every sub-world lost) reports as [`InferError::Recovering`].
    pub fn wait(self) -> Result<RolloutResult, InferError> {
        self.rx
            .recv()
            .unwrap_or(Err(InferError::Recovering { attempts: 0 }))
    }
}

/// Fans independent rollout requests out to idle sub-world engines behind
/// a bounded queue with SLO-aware admission. See the module docs for the
/// state machine.
pub struct Scheduler {
    shared: Arc<Shared>,
    cfg: SchedulerConfig,
    sub_worlds: usize,
    ranks_per_world: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Splits `world` into `sub_worlds` equal groups and schedules over
    /// them. The common construction for `pdeml serve`.
    pub fn over_world(
        world: World,
        sub_worlds: usize,
        cfg: SchedulerConfig,
    ) -> Result<Self, String> {
        let engines = world
            .split_even(sub_worlds)?
            .into_iter()
            .map(|sub| InferEngine::from_world(sub, EngineConfig::new(0)))
            .collect();
        Ok(Self::new(engines, cfg))
    }

    /// Schedules over caller-built engines (e.g. from [`World::split`] with
    /// custom groups). Engines must be freshly built — same rank count
    /// each, nothing registered yet; the scheduler owns the registry.
    ///
    /// # Panics
    /// If `engines` is empty, rank counts differ, or a model is already
    /// registered on one of them.
    pub fn new(engines: Vec<InferEngine>, cfg: SchedulerConfig) -> Self {
        assert!(!engines.is_empty(), "Scheduler: need at least one engine");
        let ranks_per_world = engines[0].size();
        for e in &engines {
            assert_eq!(
                e.size(),
                ranks_per_world,
                "Scheduler: every sub-world must have the same rank count"
            );
            assert!(
                e.model_names().is_empty(),
                "Scheduler: engines must be fresh — registration goes through the scheduler"
            );
        }
        let sub_worlds = engines.len();
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                commands: (0..sub_worlds).map(|_| VecDeque::new()).collect(),
                residency: Residency::new(cfg.max_models),
                blueprints: BTreeMap::new(),
                layout: None,
                latencies_ms: VecDeque::with_capacity(LATENCY_WINDOW),
                shutdown: false,
                live_workers: sub_worlds,
            }),
            work: Condvar::new(),
        });
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(idx, engine)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("pdeml-dispatch-{idx}"))
                    .spawn(move || dispatcher(idx, engine, shared))
                    .expect("spawn sub-world dispatcher")
            })
            .collect();
        Scheduler {
            shared,
            cfg,
            sub_worlds,
            ranks_per_world,
            workers,
        }
    }

    /// Sub-worlds serving requests.
    pub fn sub_worlds(&self) -> usize {
        self.sub_worlds
    }

    /// Ranks per sub-world — the rank count registered models must match.
    pub fn ranks_per_world(&self) -> usize {
        self.ranks_per_world
    }

    /// Registers `inf` on **every** sub-world (any of them can then serve
    /// it), bounded by the resident-model cap: past it, the
    /// least-recently-used idle model is evicted first. Validation
    /// (rank count, layout) happens here, synchronously; the per-rank
    /// network loading happens on each dispatcher before its next request.
    pub fn register(&self, name: &str, inf: ParallelInference) -> Result<(), EngineError> {
        let part = inf.partition();
        if part.rank_count() != self.ranks_per_world {
            return Err(EngineError::RankCountMismatch {
                model: name.to_string(),
                model_ranks: part.rank_count(),
                world_ranks: self.ranks_per_world,
            });
        }
        let layout = (part.py(), part.px());
        let mut st = self.shared.state.lock().unwrap();
        match st.layout {
            Some(fixed) if fixed != layout => {
                return Err(EngineError::LayoutMismatch {
                    model: name.to_string(),
                    model_layout: layout,
                    fixed,
                });
            }
            Some(_) => {}
            None => st.layout = Some(layout),
        }
        let evicted = st.residency.admit(name)?;
        if let Some(victim) = &evicted {
            st.blueprints.remove(victim);
        }
        st.blueprints.insert(name.to_string(), inf.clone());
        for cmds in st.commands.iter_mut() {
            if let Some(victim) = &evicted {
                cmds.push_back(Command::Evict(victim.clone()));
            }
            cmds.push_back(Command::Register(name.to_string(), inf.clone()));
        }
        drop(st);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Submits one rollout request. Admission happens here, synchronously
    /// and in arrival order (see the module docs); an accepted request
    /// returns a [`Ticket`] for its eventual result, a shed one returns
    /// [`InferError::Rejected`] without touching any rank.
    pub fn submit(
        &self,
        name: &str,
        history: &[Tensor3],
        n_steps: usize,
    ) -> Result<Ticket, InferError> {
        // Gate 1: health. Outside the queue lock — checks may take their
        // own locks (HealthModel's registry) and must not nest inside ours.
        if let Some(health) = &self.cfg.health {
            if health.report().overall != Health::Healthy {
                return Err(self.reject(RejectReason::Unhealthy));
            }
        }
        let mut st = self.shared.state.lock().unwrap();
        // Caller errors before load shedding: an unknown model or a
        // malformed history is a 4xx, not back-pressure.
        let inf = st
            .blueprints
            .get(name)
            .ok_or_else(|| InferError::UnknownModel {
                name: name.to_string(),
            })?;
        inf.validate_history(history)?;
        // Gate 2: every sub-world lost ⇒ nothing can serve.
        if st.live_workers == 0 {
            drop(st);
            return Err(self.reject(RejectReason::Unhealthy));
        }
        // Gate 3: rolling p99.9 vs the SLO.
        if let Some(slo) = self.cfg.slo_ms {
            if st.latencies_ms.len() >= self.cfg.slo_min_samples {
                if let Some(p999) = st.p999_ms() {
                    if p999 > slo {
                        drop(st);
                        return Err(self.reject(RejectReason::SloBreach));
                    }
                }
            }
        }
        // Gate 4: the bounded queue.
        if st.queue.len() >= self.cfg.queue_depth {
            drop(st);
            return Err(self.reject(RejectReason::QueueFull));
        }
        st.residency.begin(name);
        let (tx, rx) = mpsc::channel();
        st.queue.push_back(QueuedRequest {
            name: name.to_string(),
            history: history.to_vec(),
            n_steps,
            tx,
        });
        crate::live::request_queue_depth().set(DRIVER, st.queue.len() as i64);
        drop(st);
        self.shared.work.notify_one();
        Ok(Ticket { rx })
    }

    fn reject(&self, reason: RejectReason) -> InferError {
        crate::live::requests_rejected(reason).inc(DRIVER);
        InferError::Rejected { reason }
    }

    /// The rolling p99.9 (ms) the SLO gate currently sees.
    pub fn rolling_p999_ms(&self) -> Option<u64> {
        self.shared.state.lock().unwrap().p999_ms()
    }

    /// Requests admitted and waiting (not yet picked up).
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Sub-worlds still serving (dispatchers retire when their engine's
    /// world is poisoned by a rank panic).
    pub fn live_sub_worlds(&self) -> usize {
        self.shared.state.lock().unwrap().live_workers
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// What one dispatcher iteration picked up under the lock.
enum Work {
    Cmd(Command),
    Req(QueuedRequest),
    Exit,
}

/// One sub-world's serving loop: drain registry commands first, then serve
/// queued requests until shutdown (the queue is drained before exit). A
/// panicked request poisons this engine's world only — the dispatcher
/// retires and the remaining sub-worlds keep serving.
fn dispatcher(idx: usize, mut engine: InferEngine, shared: Arc<Shared>) {
    loop {
        let work = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(cmd) = st.commands[idx].pop_front() {
                    break Work::Cmd(cmd);
                }
                if let Some(req) = st.queue.pop_front() {
                    crate::live::request_queue_depth().set(DRIVER, st.queue.len() as i64);
                    crate::live::requests_inflight().add(DRIVER, 1);
                    break Work::Req(req);
                }
                if st.shutdown {
                    break Work::Exit;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        match work {
            Work::Cmd(Command::Register(name, inf)) => {
                engine
                    .register(&name, inf)
                    .expect("scheduler validated the registration at admission");
            }
            Work::Cmd(Command::Evict(name)) => {
                engine.deregister(&name);
            }
            Work::Req(req) => {
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    engine.rollout_from_history(&req.name, &req.history, req.n_steps)
                }));
                let elapsed_ms = started.elapsed().as_millis() as u64;
                let died = outcome.is_err();
                let result = match outcome {
                    Ok(r) => r,
                    // The panic already killed the rank and poisoned the
                    // engine's world; the requester gets a typed error.
                    Err(_) => Err(InferError::Recovering { attempts: 1 }),
                };
                let served = result.is_ok();
                {
                    let mut st = shared.state.lock().unwrap();
                    st.residency.finish(&req.name);
                    crate::live::requests_inflight().add(DRIVER, -1);
                    if served {
                        if st.latencies_ms.len() == LATENCY_WINDOW {
                            st.latencies_ms.pop_front();
                        }
                        st.latencies_ms.push_back(elapsed_ms);
                    }
                    if died {
                        st.live_workers -= 1;
                    }
                }
                let _ = req.tx.send(result);
                if died {
                    // Wake peers in case this was the last worker and
                    // submitters need to observe live_workers == 0.
                    shared.work.notify_all();
                    return;
                }
            }
            Work::Exit => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSpec;
    use crate::padding::PaddingStrategy;
    use crate::train::{ParallelTrainer, TrainConfig};
    use pde_euler::dataset::paper_dataset;
    use pde_telemetry::health::CheckStatus;

    fn trained(n_ranks: usize) -> (pde_euler::DataSet, ParallelInference) {
        let data = paper_dataset(16, 8);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(
            arch.clone(),
            PaddingStrategy::NeighborPad,
            TrainConfig::quick_test(),
        )
        .train_view(&data, 6, n_ranks)
        .unwrap();
        (
            data,
            ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome),
        )
    }

    fn scheduler(sub_worlds: usize, cfg: SchedulerConfig) -> Scheduler {
        Scheduler::over_world(World::new(2 * sub_worlds), sub_worlds, cfg).unwrap()
    }

    #[test]
    fn concurrent_requests_over_sub_worlds_match_serial_bitwise() {
        let (data, inf) = trained(2);
        let mut serial = InferEngine::new(2);
        serial.register("m", inf.clone()).unwrap();
        let want: Vec<_> = (0..6)
            .map(|k| serial.rollout("m", data.snapshot(k), 2).unwrap())
            .collect();

        let sched = scheduler(2, SchedulerConfig::default());
        sched.register("m", inf).unwrap();
        let tickets: Vec<Ticket> = (0..6)
            .map(|k| {
                sched
                    .submit("m", std::slice::from_ref(data.snapshot(k)), 2)
                    .unwrap()
            })
            .collect();
        for (k, t) in tickets.into_iter().enumerate() {
            let got = t.wait().unwrap();
            assert_eq!(got.states, want[k].states, "request {k}");
        }
    }

    #[test]
    fn unknown_model_and_bad_shape_are_caller_errors_not_rejections() {
        let (data, inf) = trained(2);
        let sched = scheduler(1, SchedulerConfig::default());
        sched.register("m", inf).unwrap();
        let err = sched
            .submit("nope", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap_err();
        assert!(matches!(err, InferError::UnknownModel { .. }));
        let wrong = Tensor3::zeros(4, 8, 8);
        let err = sched
            .submit("m", std::slice::from_ref(&wrong), 1)
            .unwrap_err();
        assert!(matches!(err, InferError::ShapeMismatch { .. }));
        // Caller errors never charge the residency ledger.
        assert_eq!(
            sched.shared.state.lock().unwrap().residency.busy_count("m"),
            0
        );
    }

    #[test]
    fn unhealthy_model_sheds_with_a_typed_rejection() {
        let (data, inf) = trained(2);
        let health = Arc::new(HealthModel::new());
        health.register("always_degraded", || CheckStatus::Degraded("drill".into()));
        let sched = scheduler(1, SchedulerConfig::default().with_health(health));
        sched.register("m", inf).unwrap();
        let err = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap_err();
        assert_eq!(
            err,
            InferError::Rejected {
                reason: RejectReason::Unhealthy
            }
        );
    }

    #[test]
    fn slo_breach_sheds_once_the_window_is_warm() {
        let (data, inf) = trained(2);
        let cfg = SchedulerConfig::default().with_slo_ms(5);
        let min = cfg.slo_min_samples;
        let sched = scheduler(1, cfg);
        sched.register("m", inf).unwrap();
        // Seed the rolling window past the arming threshold with samples
        // far over the 5 ms objective.
        {
            let mut st = sched.shared.state.lock().unwrap();
            for _ in 0..min {
                st.latencies_ms.push_back(1000);
            }
        }
        let err = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap_err();
        assert_eq!(
            err,
            InferError::Rejected {
                reason: RejectReason::SloBreach
            }
        );
    }

    #[test]
    fn queue_overflow_sheds_instead_of_collapsing() {
        let (data, inf) = trained(2);
        let sched = scheduler(1, SchedulerConfig::default().with_queue_depth(1));
        sched.register("m", inf).unwrap();
        // One long request occupies the single sub-world; rapid-fire
        // submissions behind it overflow the depth-1 queue.
        let slow = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 400)
            .unwrap();
        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for _ in 0..8 {
            match sched.submit("m", std::slice::from_ref(data.snapshot(1)), 1) {
                Ok(t) => admitted.push(t),
                Err(InferError::Rejected {
                    reason: RejectReason::QueueFull,
                }) => rejected += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected >= 1, "a depth-1 queue must shed under burst");
        assert!(slow.wait().is_ok());
        for t in admitted {
            assert!(t.wait().is_ok(), "admitted requests are always served");
        }
    }

    #[test]
    fn residency_cap_evicts_lru_and_protects_busy_models() {
        let mut r = Residency::new(2);
        assert_eq!(r.admit("a").unwrap(), None);
        assert_eq!(r.admit("b").unwrap(), None);
        // "a" is LRU → evicted for "c".
        assert_eq!(r.admit("c").unwrap(), Some("a".to_string()));
        // Touch "b" (now MRU), admit "d": victim is "c".
        r.touch("b");
        assert_eq!(r.admit("d").unwrap(), Some("c".to_string()));
        // A busy model is skipped: "b" is LRU but has work in flight.
        r.begin("b");
        assert_eq!(r.admit("e").unwrap(), Some("d".to_string()));
        // Every resident busy → typed error.
        r.begin("e");
        assert_eq!(
            r.admit("f").unwrap_err(),
            EngineError::ResidencyFull {
                model: "f".to_string(),
                cap: 2
            }
        );
        // Finishing unblocks admission again.
        r.finish("e");
        assert_eq!(r.admit("f").unwrap(), Some("e".to_string()));
    }

    #[test]
    fn scheduler_register_past_cap_evicts_and_still_serves() {
        let (data, inf) = trained(2);
        let sched = scheduler(1, SchedulerConfig::default().with_max_models(1));
        sched.register("first", inf.clone()).unwrap();
        let want = sched
            .submit("first", std::slice::from_ref(data.snapshot(0)), 2)
            .unwrap()
            .wait()
            .unwrap();
        // Registering a second model evicts "first" (cap 1, idle).
        sched.register("second", inf).unwrap();
        let err = sched
            .submit("first", std::slice::from_ref(data.snapshot(0)), 2)
            .unwrap_err();
        assert!(matches!(err, InferError::UnknownModel { .. }));
        let got = sched
            .submit("second", std::slice::from_ref(data.snapshot(0)), 2)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(got.states, want.states, "same weights, same rollout");
    }
}
