//! Concurrent serving: a bounded request queue feeding sub-world engines,
//! LRU-bounded multi-tenant residency, and SLO-aware admission control.
//!
//! [`crate::engine::InferEngine`] serves one request at a time — all of the
//! SIMD throughput below it sits behind a single-file queue. The
//! [`Scheduler`] fixes the shape: the caller splits one big world into
//! disjoint sub-worlds ([`pde_commsim::World::split`]), wraps each in an
//! engine, and the scheduler fans independent requests out to whichever
//! sub-world is idle. Because sub-worlds share nothing (own mesh, own
//! traffic stats, own generation counter), a request served on a 2-rank
//! sub-world is bitwise what a plain 2-rank engine would have served — the
//! equivalence suite pins this on both transports.
//!
//! ## Admission control
//!
//! `submit` decides admission synchronously, under one lock, in arrival
//! order — so for a fixed request trace (the sequence of submissions and
//! completions) the accept/reject outcome of every request is a pure
//! function of the trace, with no randomness and no sampling:
//!
//! 1. **Unhealthy** — the configured [`HealthModel`] reports Degraded or
//!    Failed: new traffic is refused while the stack recovers;
//! 2. **SLO breach** — the rolling p99.9 over the last
//!    `latency_window` served requests ([`LATENCY_WINDOW`] by default,
//!    [`SchedulerConfig::with_latency_window`] to resize) exceeds
//!    `slo_ms`: shedding now beats collapsing later;
//! 3. **Queue full** — the bounded queue is at `queue_depth`.
//!
//! A shed request returns [`InferError::Rejected`] immediately and counts
//! on `pdeml_requests_rejected_total{reason=…}`; it never touches a rank.
//!
//! ## Residency
//!
//! Registered models are replicated on every sub-world (any sub-world can
//! serve any request). [`Residency`] bounds how many stay resident:
//! registering past `max_models` evicts the least-recently-used model that
//! has **no pending or in-flight requests** — an in-flight model is never
//! evicted; if every resident model is busy the registration fails with
//! [`EngineError::ResidencyFull`] instead.

use crate::engine::{EngineConfig, EngineError, InferEngine};
use crate::infer::{InferError, ParallelInference, RejectReason, RolloutResult};
use pde_commsim::World;
use pde_telemetry::health::{Health, HealthModel};
use pde_telemetry::DRIVER;
use pde_tensor::Tensor3;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Rolling latency samples the SLO admission gate looks at, by default —
/// [`SchedulerConfig::with_latency_window`] resizes the ring.
pub const LATENCY_WINDOW: usize = 256;

/// Process-unique id of one serving request, allocated at ingress (the
/// HTTP front end, or [`RequestId::fresh`] for library callers) and
/// threaded through admission → queue → dispatcher → engine → the per-rank
/// trace spans, where it appears as the `"req"` arg. Ids start at 1; 0 is
/// the "untraced" sentinel throughout the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl RequestId {
    /// Allocates the next process-unique id.
    pub fn fresh() -> RequestId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        RequestId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id — what the trace layer stamps into spans.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Where one served request's latency went, in microseconds: admitted but
/// waiting for a dispatcher (`queue_us`), driver-side work around the rank
/// jobs (`dispatch_us`), and the rank jobs themselves (`rollout_us`).
/// Mirrored by the `pdeml_request_queue_wait_us` / `_dispatch_us` /
/// `_rollout_us` histograms and the HTTP `Server-Timing` header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestPhases {
    /// Admission to dispatcher pickup.
    pub queue_us: u64,
    /// Driver-side scatter/stitch and bookkeeping around the rank jobs.
    pub dispatch_us: u64,
    /// Rank-job wall time (reset + steps + quiesce).
    pub rollout_us: u64,
}

impl RequestPhases {
    /// Sum of the three phases — the request's end-to-end service time as
    /// the scheduler accounts it.
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.dispatch_us + self.rollout_us
    }
}

/// How a [`Scheduler`] admits, queues and evicts.
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Admitted requests that may wait for an idle sub-world before
    /// admission starts refusing with `queue_full`.
    pub queue_depth: usize,
    /// Resident-model cap across the registry (LRU eviction past it).
    pub max_models: usize,
    /// Rolling-p99.9 objective in milliseconds; `None` disarms the gate.
    pub slo_ms: Option<u64>,
    /// Served-request samples required before the SLO gate arms — a cold
    /// scheduler must not reject on one slow warm-up request.
    pub slo_min_samples: usize,
    /// Health model consulted at admission (Degraded/Failed ⇒ reject).
    pub health: Option<Arc<HealthModel>>,
    /// Served-latency samples the rolling ring retains
    /// ([`LATENCY_WINDOW`] by default). The SLO gate arms at
    /// `slo_min_samples` regardless of the window size.
    pub latency_window: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_depth: 32,
            max_models: 8,
            slo_ms: None,
            slo_min_samples: 32,
            health: None,
            latency_window: LATENCY_WINDOW,
        }
    }
}

impl SchedulerConfig {
    /// Bounds the admitted-but-waiting queue.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Caps resident models (LRU eviction past the cap).
    pub fn with_max_models(mut self, cap: usize) -> Self {
        self.max_models = cap;
        self
    }

    /// Arms the rolling-p99.9 SLO admission gate.
    pub fn with_slo_ms(mut self, slo_ms: u64) -> Self {
        self.slo_ms = Some(slo_ms);
        self
    }

    /// Attaches the health model admission consults.
    pub fn with_health(mut self, health: Arc<HealthModel>) -> Self {
        self.health = Some(health);
        self
    }

    /// Resizes the rolling latency ring the p99.9 gate inspects (clamped
    /// to ≥ 1). A smaller window reacts faster and forgets faster; the
    /// arming threshold stays `slo_min_samples` either way.
    pub fn with_latency_window(mut self, window: usize) -> Self {
        self.latency_window = window.max(1);
        self
    }
}

/// Pure LRU residency bookkeeping: which models are resident, in what
/// recency order, and how many requests each has pending or in flight.
/// Factored out of the scheduler so the property suite can drive it
/// against a naive model without threads.
pub struct Residency {
    cap: usize,
    /// Resident names, least recently used first.
    order: Vec<String>,
    /// Pending + in-flight requests per resident model.
    busy: BTreeMap<String, usize>,
}

impl Residency {
    /// An empty residency with room for `cap` models.
    ///
    /// # Panics
    /// If `cap` is 0 — a scheduler that can hold no model serves nothing.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "Residency: need room for at least one model");
        Residency {
            cap,
            order: Vec::new(),
            busy: BTreeMap::new(),
        }
    }

    /// Resident names, least recently used first.
    pub fn order(&self) -> &[String] {
        &self.order
    }

    /// Whether `name` is resident.
    pub fn is_resident(&self, name: &str) -> bool {
        self.busy.contains_key(name)
    }

    /// Pending + in-flight requests charged to `name`.
    pub fn busy_count(&self, name: &str) -> usize {
        self.busy.get(name).copied().unwrap_or(0)
    }

    /// Makes `name` resident (most recently used), evicting the
    /// least-recently-used **idle** model if the cap is exceeded. Returns
    /// the evicted name, if any; errors when the cap is reached and every
    /// resident model has requests pending or in flight.
    pub fn admit(&mut self, name: &str) -> Result<Option<String>, EngineError> {
        if self.is_resident(name) {
            self.touch(name);
            return Ok(None);
        }
        let mut evicted = None;
        if self.order.len() >= self.cap {
            let victim = self
                .order
                .iter()
                .find(|m| self.busy[m.as_str()] == 0)
                .cloned()
                .ok_or_else(|| EngineError::ResidencyFull {
                    model: name.to_string(),
                    cap: self.cap,
                })?;
            self.order.retain(|m| m != &victim);
            self.busy.remove(&victim);
            evicted = Some(victim);
        }
        self.order.push(name.to_string());
        self.busy.insert(name.to_string(), 0);
        Ok(evicted)
    }

    /// Marks `name` most recently used.
    ///
    /// # Panics
    /// If `name` is not resident.
    pub fn touch(&mut self, name: &str) {
        assert!(self.is_resident(name), "touch('{name}'): not resident");
        self.order.retain(|m| m != name);
        self.order.push(name.to_string());
    }

    /// Charges one pending/in-flight request to `name` (admission).
    pub fn begin(&mut self, name: &str) {
        *self
            .busy
            .get_mut(name)
            .unwrap_or_else(|| panic!("begin('{name}'): not resident")) += 1;
    }

    /// Releases one request from `name` and marks it most recently used.
    pub fn finish(&mut self, name: &str) {
        let n = self
            .busy
            .get_mut(name)
            .unwrap_or_else(|| panic!("finish('{name}'): not resident"));
        assert!(*n > 0, "finish('{name}'): nothing in flight");
        *n -= 1;
        self.touch(name);
    }
}

/// One admitted request waiting for (or running on) a sub-world.
struct QueuedRequest {
    id: RequestId,
    name: String,
    history: Vec<Tensor3>,
    n_steps: usize,
    /// Admission time — the dispatcher's pickup gap is the queue-wait
    /// phase of the request's latency.
    submitted_at: Instant,
    tx: mpsc::Sender<(Result<RolloutResult, InferError>, RequestPhases)>,
}

/// Registry maintenance shipped to a dispatcher, processed strictly before
/// it picks up queued requests — so a request admitted after `register`
/// returned can never reach a sub-world that has not registered the model.
enum Command {
    Register(String, ParallelInference),
    Evict(String),
}

struct SchedState {
    queue: VecDeque<QueuedRequest>,
    /// Per-dispatcher command queues (FIFO each).
    commands: Vec<VecDeque<Command>>,
    residency: Residency,
    /// Driver-side blueprints for request validation at admission.
    blueprints: BTreeMap<String, ParallelInference>,
    /// `(py, px)` fixed by the first registration (see the engine's rule).
    layout: Option<(usize, usize)>,
    /// Rolling served-request latencies (ms) the SLO gate inspects.
    latencies_ms: VecDeque<u64>,
    /// Samples `latencies_ms` retains ([`SchedulerConfig::latency_window`]).
    latency_window: usize,
    shutdown: bool,
    /// Dispatchers still alive (a panicked engine retires its dispatcher).
    live_workers: usize,
}

impl SchedState {
    /// Rolling p99.9 over the latency window, via the shared nearest-rank
    /// rule — the same index the serve-bench percentile would report.
    fn p999_ms(&self) -> Option<u64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let mut sorted: Vec<u64> = self.latencies_ms.iter().copied().collect();
        sorted.sort_unstable();
        let idx = pde_telemetry::nearest_rank(sorted.len() as u64, 0.999) as usize;
        Some(sorted[idx])
    }
}

struct Shared {
    state: Mutex<SchedState>,
    work: Condvar,
}

/// A pending result from [`Scheduler::submit`]. Dropping it abandons the
/// request's result (the request itself still runs).
pub struct Ticket {
    id: RequestId,
    rx: mpsc::Receiver<(Result<RolloutResult, InferError>, RequestPhases)>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ticket(request {}, pending)", self.id)
    }
}

impl Ticket {
    /// The admitted request's id — what the response echoes back to the
    /// client and the trace spans carry.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the request completes. A request stranded by a died
    /// scheduler (every sub-world lost) reports as [`InferError::Recovering`].
    pub fn wait(self) -> Result<RolloutResult, InferError> {
        self.wait_traced().0
    }

    /// [`Ticket::wait`] plus the request's [`RequestPhases`] latency split
    /// (zeroed when the request never reached a dispatcher).
    pub fn wait_traced(self) -> (Result<RolloutResult, InferError>, RequestPhases) {
        self.rx.recv().unwrap_or((
            Err(InferError::Recovering { attempts: 0 }),
            RequestPhases::default(),
        ))
    }
}

/// Fans independent rollout requests out to idle sub-world engines behind
/// a bounded queue with SLO-aware admission. See the module docs for the
/// state machine.
pub struct Scheduler {
    shared: Arc<Shared>,
    cfg: SchedulerConfig,
    sub_worlds: usize,
    ranks_per_world: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Splits `world` into `sub_worlds` equal groups and schedules over
    /// them. The common construction for `pdeml serve`.
    pub fn over_world(
        world: World,
        sub_worlds: usize,
        cfg: SchedulerConfig,
    ) -> Result<Self, String> {
        let engines = world
            .split_even(sub_worlds)?
            .into_iter()
            .map(|sub| InferEngine::from_world(sub, EngineConfig::new(0)))
            .collect();
        Ok(Self::new(engines, cfg))
    }

    /// Schedules over caller-built engines (e.g. from [`World::split`] with
    /// custom groups). Engines must be freshly built — same rank count
    /// each, nothing registered yet; the scheduler owns the registry.
    ///
    /// # Panics
    /// If `engines` is empty, rank counts differ, or a model is already
    /// registered on one of them.
    pub fn new(engines: Vec<InferEngine>, cfg: SchedulerConfig) -> Self {
        assert!(!engines.is_empty(), "Scheduler: need at least one engine");
        let ranks_per_world = engines[0].size();
        for e in &engines {
            assert_eq!(
                e.size(),
                ranks_per_world,
                "Scheduler: every sub-world must have the same rank count"
            );
            assert!(
                e.model_names().is_empty(),
                "Scheduler: engines must be fresh — registration goes through the scheduler"
            );
        }
        let sub_worlds = engines.len();
        let latency_window = cfg.latency_window.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                commands: (0..sub_worlds).map(|_| VecDeque::new()).collect(),
                residency: Residency::new(cfg.max_models),
                blueprints: BTreeMap::new(),
                layout: None,
                latencies_ms: VecDeque::with_capacity(latency_window),
                latency_window,
                shutdown: false,
                live_workers: sub_worlds,
            }),
            work: Condvar::new(),
        });
        // Dispatchers join the trace session active on the constructing
        // thread (a `--trace-out` whole-run capture, or an armed flight
        // recorder), so request spans from their engines' rank jobs are
        // collected. No-op when tracing is off.
        let trace_session = pde_trace::session();
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(idx, engine)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("pdeml-dispatch-{idx}"))
                    .spawn(move || {
                        pde_trace::adopt(trace_session, pde_trace::DRIVER_RANK);
                        dispatcher(idx, engine, shared)
                    })
                    .expect("spawn sub-world dispatcher")
            })
            .collect();
        Scheduler {
            shared,
            cfg,
            sub_worlds,
            ranks_per_world,
            workers,
        }
    }

    /// Sub-worlds serving requests.
    pub fn sub_worlds(&self) -> usize {
        self.sub_worlds
    }

    /// Ranks per sub-world — the rank count registered models must match.
    pub fn ranks_per_world(&self) -> usize {
        self.ranks_per_world
    }

    /// Registers `inf` on **every** sub-world (any of them can then serve
    /// it), bounded by the resident-model cap: past it, the
    /// least-recently-used idle model is evicted first. Validation
    /// (rank count, layout) happens here, synchronously; the per-rank
    /// network loading happens on each dispatcher before its next request.
    pub fn register(&self, name: &str, inf: ParallelInference) -> Result<(), EngineError> {
        let part = inf.partition();
        if part.rank_count() != self.ranks_per_world {
            return Err(EngineError::RankCountMismatch {
                model: name.to_string(),
                model_ranks: part.rank_count(),
                world_ranks: self.ranks_per_world,
            });
        }
        let layout = (part.py(), part.px());
        let mut st = self.shared.state.lock().unwrap();
        match st.layout {
            Some(fixed) if fixed != layout => {
                return Err(EngineError::LayoutMismatch {
                    model: name.to_string(),
                    model_layout: layout,
                    fixed,
                });
            }
            Some(_) => {}
            None => st.layout = Some(layout),
        }
        let evicted = st.residency.admit(name)?;
        if let Some(victim) = &evicted {
            st.blueprints.remove(victim);
        }
        st.blueprints.insert(name.to_string(), inf.clone());
        for cmds in st.commands.iter_mut() {
            if let Some(victim) = &evicted {
                cmds.push_back(Command::Evict(victim.clone()));
            }
            cmds.push_back(Command::Register(name.to_string(), inf.clone()));
        }
        drop(st);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Submits one rollout request under a freshly allocated
    /// [`RequestId`]. Admission happens here, synchronously and in arrival
    /// order (see the module docs); an accepted request returns a
    /// [`Ticket`] for its eventual result, a shed one returns
    /// [`InferError::Rejected`] without touching any rank.
    pub fn submit(
        &self,
        name: &str,
        history: &[Tensor3],
        n_steps: usize,
    ) -> Result<Ticket, InferError> {
        self.submit_with_id(RequestId::fresh(), name, history, n_steps)
    }

    /// [`Scheduler::submit`] under a caller-allocated id — the HTTP front
    /// end allocates at ingress so the id exists before admission and a
    /// *rejected* request is still attributable in the access log.
    pub fn submit_with_id(
        &self,
        id: RequestId,
        name: &str,
        history: &[Tensor3],
        n_steps: usize,
    ) -> Result<Ticket, InferError> {
        // Gate 1: health. Outside the queue lock — checks may take their
        // own locks (HealthModel's registry) and must not nest inside ours.
        if let Some(health) = &self.cfg.health {
            if health.report().overall != Health::Healthy {
                return Err(self.reject(RejectReason::Unhealthy));
            }
        }
        let mut st = self.shared.state.lock().unwrap();
        // Caller errors before load shedding: an unknown model or a
        // malformed history is a 4xx, not back-pressure.
        let inf = st
            .blueprints
            .get(name)
            .ok_or_else(|| InferError::UnknownModel {
                name: name.to_string(),
            })?;
        inf.validate_history(history)?;
        // Gate 2: every sub-world lost ⇒ nothing can serve.
        if st.live_workers == 0 {
            drop(st);
            return Err(self.reject(RejectReason::Unhealthy));
        }
        // Gate 3: rolling p99.9 vs the SLO.
        if let Some(slo) = self.cfg.slo_ms {
            if st.latencies_ms.len() >= self.cfg.slo_min_samples {
                if let Some(p999) = st.p999_ms() {
                    if p999 > slo {
                        drop(st);
                        return Err(self.reject(RejectReason::SloBreach));
                    }
                }
            }
        }
        // Gate 4: the bounded queue.
        if st.queue.len() >= self.cfg.queue_depth {
            drop(st);
            return Err(self.reject(RejectReason::QueueFull));
        }
        st.residency.begin(name);
        let (tx, rx) = mpsc::channel();
        st.queue.push_back(QueuedRequest {
            id,
            name: name.to_string(),
            history: history.to_vec(),
            n_steps,
            submitted_at: Instant::now(),
            tx,
        });
        crate::live::request_queue_depth().set(DRIVER, st.queue.len() as i64);
        drop(st);
        self.shared.work.notify_one();
        Ok(Ticket { id, rx })
    }

    fn reject(&self, reason: RejectReason) -> InferError {
        crate::live::requests_rejected(reason).inc(DRIVER);
        InferError::Rejected { reason }
    }

    /// The rolling p99.9 (ms) the SLO gate currently sees.
    pub fn rolling_p999_ms(&self) -> Option<u64> {
        self.shared.state.lock().unwrap().p999_ms()
    }

    /// Requests admitted and waiting (not yet picked up).
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Sub-worlds still serving (dispatchers retire when their engine's
    /// world is poisoned by a rank panic).
    pub fn live_sub_worlds(&self) -> usize {
        self.shared.state.lock().unwrap().live_workers
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// What one dispatcher iteration picked up under the lock.
enum Work {
    Cmd(Command),
    Req(QueuedRequest),
    Exit,
}

/// One sub-world's serving loop: drain registry commands first, then serve
/// queued requests until shutdown (the queue is drained before exit). A
/// panicked request poisons this engine's world only — the dispatcher
/// retires and the remaining sub-worlds keep serving.
fn dispatcher(idx: usize, mut engine: InferEngine, shared: Arc<Shared>) {
    loop {
        let work = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(cmd) = st.commands[idx].pop_front() {
                    break Work::Cmd(cmd);
                }
                if let Some(req) = st.queue.pop_front() {
                    crate::live::request_queue_depth().set(DRIVER, st.queue.len() as i64);
                    crate::live::requests_inflight().add(DRIVER, 1);
                    break Work::Req(req);
                }
                if st.shutdown {
                    break Work::Exit;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        match work {
            Work::Cmd(Command::Register(name, inf)) => {
                engine
                    .register(&name, inf)
                    .expect("scheduler validated the registration at admission");
            }
            Work::Cmd(Command::Evict(name)) => {
                engine.deregister(&name);
            }
            Work::Req(req) => {
                let queue_us = req.submitted_at.elapsed().as_micros() as u64;
                crate::live::request_queue_wait_us().record(queue_us);
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    engine.rollout_from_history_traced(
                        &req.name,
                        &req.history,
                        req.n_steps,
                        req.id.as_u64(),
                    )
                }));
                let elapsed_ms = started.elapsed().as_millis() as u64;
                let died = outcome.is_err();
                let (result, engine_phases) = match outcome {
                    Ok(Ok((r, p))) => (Ok(r), p),
                    Ok(Err(e)) => (Err(e), Default::default()),
                    // The panic already killed the rank and poisoned the
                    // engine's world; the requester gets a typed error.
                    Err(_) => (
                        Err(InferError::Recovering { attempts: 1 }),
                        Default::default(),
                    ),
                };
                let phases = RequestPhases {
                    queue_us,
                    dispatch_us: engine_phases.dispatch_us,
                    rollout_us: engine_phases.rollout_us,
                };
                let served = result.is_ok();
                {
                    let mut st = shared.state.lock().unwrap();
                    st.residency.finish(&req.name);
                    crate::live::requests_inflight().add(DRIVER, -1);
                    if served {
                        while st.latencies_ms.len() >= st.latency_window {
                            st.latencies_ms.pop_front();
                        }
                        st.latencies_ms.push_back(elapsed_ms);
                    }
                    if died {
                        st.live_workers -= 1;
                    }
                }
                let _ = req.tx.send((result, phases));
                if died {
                    // Wake peers in case this was the last worker and
                    // submitters need to observe live_workers == 0.
                    shared.work.notify_all();
                    return;
                }
            }
            Work::Exit => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSpec;
    use crate::padding::PaddingStrategy;
    use crate::train::{ParallelTrainer, TrainConfig};
    use pde_euler::dataset::paper_dataset;
    use pde_telemetry::health::CheckStatus;

    fn trained(n_ranks: usize) -> (pde_euler::DataSet, ParallelInference) {
        let data = paper_dataset(16, 8);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(
            arch.clone(),
            PaddingStrategy::NeighborPad,
            TrainConfig::quick_test(),
        )
        .train_view(&data, 6, n_ranks)
        .unwrap();
        (
            data,
            ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome),
        )
    }

    fn scheduler(sub_worlds: usize, cfg: SchedulerConfig) -> Scheduler {
        Scheduler::over_world(World::new(2 * sub_worlds), sub_worlds, cfg).unwrap()
    }

    #[test]
    fn concurrent_requests_over_sub_worlds_match_serial_bitwise() {
        let (data, inf) = trained(2);
        let mut serial = InferEngine::new(2);
        serial.register("m", inf.clone()).unwrap();
        let want: Vec<_> = (0..6)
            .map(|k| serial.rollout("m", data.snapshot(k), 2).unwrap())
            .collect();

        let sched = scheduler(2, SchedulerConfig::default());
        sched.register("m", inf).unwrap();
        let tickets: Vec<Ticket> = (0..6)
            .map(|k| {
                sched
                    .submit("m", std::slice::from_ref(data.snapshot(k)), 2)
                    .unwrap()
            })
            .collect();
        for (k, t) in tickets.into_iter().enumerate() {
            let got = t.wait().unwrap();
            assert_eq!(got.states, want[k].states, "request {k}");
        }
    }

    #[test]
    fn unknown_model_and_bad_shape_are_caller_errors_not_rejections() {
        let (data, inf) = trained(2);
        let sched = scheduler(1, SchedulerConfig::default());
        sched.register("m", inf).unwrap();
        let err = sched
            .submit("nope", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap_err();
        assert!(matches!(err, InferError::UnknownModel { .. }));
        let wrong = Tensor3::zeros(4, 8, 8);
        let err = sched
            .submit("m", std::slice::from_ref(&wrong), 1)
            .unwrap_err();
        assert!(matches!(err, InferError::ShapeMismatch { .. }));
        // Caller errors never charge the residency ledger.
        assert_eq!(
            sched.shared.state.lock().unwrap().residency.busy_count("m"),
            0
        );
    }

    #[test]
    fn unhealthy_model_sheds_with_a_typed_rejection() {
        let (data, inf) = trained(2);
        let health = Arc::new(HealthModel::new());
        health.register("always_degraded", || CheckStatus::Degraded("drill".into()));
        let sched = scheduler(1, SchedulerConfig::default().with_health(health));
        sched.register("m", inf).unwrap();
        let err = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap_err();
        assert_eq!(
            err,
            InferError::Rejected {
                reason: RejectReason::Unhealthy
            }
        );
    }

    #[test]
    fn slo_breach_sheds_once_the_window_is_warm() {
        let (data, inf) = trained(2);
        let cfg = SchedulerConfig::default().with_slo_ms(5);
        let min = cfg.slo_min_samples;
        let sched = scheduler(1, cfg);
        sched.register("m", inf).unwrap();
        // Seed the rolling window past the arming threshold with samples
        // far over the 5 ms objective.
        {
            let mut st = sched.shared.state.lock().unwrap();
            for _ in 0..min {
                st.latencies_ms.push_back(1000);
            }
        }
        let err = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap_err();
        assert_eq!(
            err,
            InferError::Rejected {
                reason: RejectReason::SloBreach
            }
        );
    }

    #[test]
    fn slo_gate_arms_at_min_samples_regardless_of_window_size() {
        let (data, inf) = trained(2);
        // A window far larger than the arming threshold: the gate must arm
        // at `slo_min_samples` (32), not when the ring fills.
        let cfg = SchedulerConfig::default()
            .with_slo_ms(5)
            .with_latency_window(512);
        let min = cfg.slo_min_samples;
        let sched = scheduler(1, cfg);
        sched.register("m", inf.clone()).unwrap();
        {
            let mut st = sched.shared.state.lock().unwrap();
            assert_eq!(st.latency_window, 512);
            for _ in 0..min - 1 {
                st.latencies_ms.push_back(1000);
            }
        }
        // One sample short of the threshold: admitted despite the breach.
        sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .expect("gate must stay disarmed below slo_min_samples")
            .wait()
            .unwrap();
        {
            let mut st = sched.shared.state.lock().unwrap();
            st.latencies_ms.clear();
            for _ in 0..min {
                st.latencies_ms.push_back(1000);
            }
        }
        let err = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap_err();
        assert_eq!(
            err,
            InferError::Rejected {
                reason: RejectReason::SloBreach
            },
            "gate arms at exactly slo_min_samples even in a 512-wide ring"
        );

        // And a tiny window stays bounded: the ring never outgrows it.
        let small = scheduler(1, SchedulerConfig::default().with_latency_window(4));
        small.register("m", inf).unwrap();
        for k in 0..6 {
            small
                .submit("m", std::slice::from_ref(data.snapshot(k)), 1)
                .unwrap()
                .wait()
                .unwrap();
        }
        let st = small.shared.state.lock().unwrap();
        assert!(
            st.latencies_ms.len() <= 4,
            "6 served requests, window 4 ⇒ at most 4 retained samples (got {})",
            st.latencies_ms.len()
        );
    }

    #[test]
    fn tickets_expose_ids_and_phase_latencies() {
        let (data, inf) = trained(2);
        let sched = scheduler(1, SchedulerConfig::default());
        sched.register("m", inf).unwrap();
        let id = RequestId::fresh();
        let ticket = sched
            .submit_with_id(id, "m", std::slice::from_ref(data.snapshot(0)), 2)
            .unwrap();
        assert_eq!(ticket.id(), id);
        let (result, phases) = ticket.wait_traced();
        assert!(result.is_ok());
        assert!(phases.rollout_us > 0, "a served request has rank time");
        assert!(
            phases.total_us() >= phases.queue_us + phases.rollout_us,
            "total covers its parts"
        );
        // Plain submits allocate monotonically fresh ids.
        let a = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap();
        let b = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 1)
            .unwrap();
        assert!(b.id().as_u64() > a.id().as_u64());
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
    }

    #[test]
    fn queue_overflow_sheds_instead_of_collapsing() {
        let (data, inf) = trained(2);
        let sched = scheduler(1, SchedulerConfig::default().with_queue_depth(1));
        sched.register("m", inf).unwrap();
        // One long request occupies the single sub-world; rapid-fire
        // submissions behind it overflow the depth-1 queue.
        let slow = sched
            .submit("m", std::slice::from_ref(data.snapshot(0)), 400)
            .unwrap();
        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for _ in 0..8 {
            match sched.submit("m", std::slice::from_ref(data.snapshot(1)), 1) {
                Ok(t) => admitted.push(t),
                Err(InferError::Rejected {
                    reason: RejectReason::QueueFull,
                }) => rejected += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected >= 1, "a depth-1 queue must shed under burst");
        assert!(slow.wait().is_ok());
        for t in admitted {
            assert!(t.wait().is_ok(), "admitted requests are always served");
        }
    }

    #[test]
    fn residency_cap_evicts_lru_and_protects_busy_models() {
        let mut r = Residency::new(2);
        assert_eq!(r.admit("a").unwrap(), None);
        assert_eq!(r.admit("b").unwrap(), None);
        // "a" is LRU → evicted for "c".
        assert_eq!(r.admit("c").unwrap(), Some("a".to_string()));
        // Touch "b" (now MRU), admit "d": victim is "c".
        r.touch("b");
        assert_eq!(r.admit("d").unwrap(), Some("c".to_string()));
        // A busy model is skipped: "b" is LRU but has work in flight.
        r.begin("b");
        assert_eq!(r.admit("e").unwrap(), Some("d".to_string()));
        // Every resident busy → typed error.
        r.begin("e");
        assert_eq!(
            r.admit("f").unwrap_err(),
            EngineError::ResidencyFull {
                model: "f".to_string(),
                cap: 2
            }
        );
        // Finishing unblocks admission again.
        r.finish("e");
        assert_eq!(r.admit("f").unwrap(), Some("e".to_string()));
    }

    #[test]
    fn scheduler_register_past_cap_evicts_and_still_serves() {
        let (data, inf) = trained(2);
        let sched = scheduler(1, SchedulerConfig::default().with_max_models(1));
        sched.register("first", inf.clone()).unwrap();
        let want = sched
            .submit("first", std::slice::from_ref(data.snapshot(0)), 2)
            .unwrap()
            .wait()
            .unwrap();
        // Registering a second model evicts "first" (cap 1, idle).
        sched.register("second", inf).unwrap();
        let err = sched
            .submit("first", std::slice::from_ref(data.snapshot(0)), 2)
            .unwrap_err();
        assert!(matches!(err, InferError::UnknownModel { .. }));
        let got = sched
            .submit("second", std::slice::from_ref(data.snapshot(0)), 2)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(got.states, want.states, "same weights, same rollout");
    }
}
