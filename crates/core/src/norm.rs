//! Per-channel normalization.
//!
//! The linearized-Euler perturbation fields live on wildly different
//! scales: with the paper's §IV-A setup, `p' ~ 1e-1`, `u', v' ~ 1e-4` and
//! `ρ' ~ 1e-7`. A CNN with shared-kernel arithmetic cannot express such a
//! dynamic range from a standard initialization, and no loss (MAPE
//! included) fixes that representational issue — so the pipeline maps each
//! channel to O(1) before training and inverts the map after inference.
//! The scales are fitted on *training* data only and are part of the
//! trained model (stored in `TrainOutcome`).
//!
//! This is standard surrogate-modelling practice; the paper does not
//! discuss it, and EXPERIMENTS.md records it as a necessary deviation.

use pde_euler::dataset::DataSetView;
use pde_tensor::{Tensor3, Tensor4};

/// Per-channel linear scaling `x ↦ x / scale[c]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelNorm {
    scales: Vec<f64>,
}

impl ChannelNorm {
    /// The identity map for `c` channels (normalization disabled).
    pub fn identity(c: usize) -> Self {
        Self {
            scales: vec![1.0; c],
        }
    }

    /// Builds from explicit per-channel scales.
    ///
    /// # Panics
    /// If any scale is not strictly positive and finite.
    pub fn from_scales(scales: Vec<f64>) -> Self {
        assert!(
            scales.iter().all(|s| s.is_finite() && *s > 0.0),
            "ChannelNorm: scales must be positive and finite, got {scales:?}"
        );
        Self { scales }
    }

    /// Fits per-channel scales as the maximum absolute value over all
    /// snapshots touched by the training view (inputs and targets), floored
    /// at `1e-12` so an identically zero channel maps through unchanged.
    pub fn fit(view: &DataSetView<'_>) -> Self {
        assert!(!view.is_empty(), "ChannelNorm::fit: empty view");
        let c = view.pair(0).0.c();
        let mut scales = vec![0.0f64; c];
        for k in 0..view.len() {
            let (x, y) = view.pair(k);
            for (ch, s) in scales.iter_mut().enumerate() {
                let mx = x.channel(ch).iter().fold(0.0f64, |m, v| m.max(v.abs()));
                let my = y.channel(ch).iter().fold(0.0f64, |m, v| m.max(v.abs()));
                *s = s.max(mx).max(my);
            }
        }
        for s in &mut scales {
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { scales }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.scales.len()
    }

    /// The fitted scales.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// True when every scale is exactly 1 (no-op).
    pub fn is_identity(&self) -> bool {
        self.scales.iter().all(|&s| s == 1.0)
    }

    fn check(&self, c: usize) {
        assert_eq!(c, self.scales.len(), "ChannelNorm: channel count mismatch");
    }

    /// Maps a snapshot into normalized space.
    pub fn normalize3(&self, t: &Tensor3) -> Tensor3 {
        self.check(t.c());
        let mut out = t.clone();
        for ch in 0..t.c() {
            let inv = 1.0 / self.scales[ch];
            for v in out.channel_mut(ch) {
                *v *= inv;
            }
        }
        out
    }

    /// Inverts [`ChannelNorm::normalize3`].
    pub fn denormalize3(&self, t: &Tensor3) -> Tensor3 {
        self.check(t.c());
        let mut out = t.clone();
        for ch in 0..t.c() {
            let s = self.scales[ch];
            for v in out.channel_mut(ch) {
                *v *= s;
            }
        }
        out
    }

    /// Maps a batch into normalized space.
    pub fn normalize4(&self, t: &Tensor4) -> Tensor4 {
        self.check(t.c());
        let (n, c, h, w) = t.shape();
        let mut out = t.clone();
        for s in 0..n {
            let sample = out.sample_mut(s);
            for ch in 0..c {
                let inv = 1.0 / self.scales[ch];
                for v in &mut sample[ch * h * w..(ch + 1) * h * w] {
                    *v *= inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_euler::dataset::paper_dataset;

    #[test]
    fn identity_is_noop() {
        let n = ChannelNorm::identity(4);
        assert!(n.is_identity());
        let t = Tensor3::from_fn(4, 3, 3, |c, i, j| (c * 9 + i * 3 + j) as f64);
        assert_eq!(n.normalize3(&t), t);
        assert_eq!(n.denormalize3(&t), t);
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let n = ChannelNorm::from_scales(vec![0.5, 2.0, 1e-6]);
        let t = Tensor3::from_fn(3, 4, 4, |c, i, j| (c + i + j) as f64 * 0.1 - 0.3);
        let back = n.denormalize3(&n.normalize3(&t));
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_captures_field_scales() {
        let data = paper_dataset(16, 6);
        let view = data.view(0, data.pair_count());
        let n = ChannelNorm::fit(&view);
        // Pressure is O(0.5), density O(1e-6): the fitted scales must keep
        // that ordering and both normalized fields must be within [-1, 1].
        assert!(
            n.scales()[0] > 100.0 * n.scales()[1],
            "scales {:?}",
            n.scales()
        );
        let normed = n.normalize3(data.snapshot(3));
        assert!(normed.max_abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn fit_handles_zero_channels() {
        // The initial snapshot alone: ρ', u', v' are identically zero.
        let data = paper_dataset(16, 2);
        let view = data.view(0, 1);
        let n = ChannelNorm::fit(&view);
        assert!(n.scales().iter().all(|s| *s > 0.0));
    }

    #[test]
    fn normalize4_matches_per_sample_normalize3() {
        let data = paper_dataset(16, 4);
        let view = data.view(0, 3);
        let n = ChannelNorm::fit(&view);
        let batch = Tensor4::stack(&[data.snapshot(0).clone(), data.snapshot(2).clone()]);
        let normed = n.normalize4(&batch);
        assert_eq!(normed.sample_tensor(0), n.normalize3(data.snapshot(0)));
        assert_eq!(normed.sample_tensor(1), n.normalize3(data.snapshot(2)));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_scale() {
        let _ = ChannelNorm::from_scales(vec![1.0, 0.0]);
    }
}
