//! Minimal CSV emission for experiment harnesses.
//!
//! Every bench/example writes its series as CSV (one file per figure/table)
//! so the paper's plots can be regenerated with any plotting tool. No
//! external dependency: the values here are plain floats and short labels.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The artifact directory every example, bench and flight-recorder dump
/// writes under: `$PDEML_RESULTS_DIR`, or `results/` (relative to the
/// working directory) when unset. One env knob, so CI runs and sandboxed
/// runs never collide on a hard-coded path. The directory is created.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = std::env::var_os("PDEML_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// A path for the artifact `name` inside [`results_dir`].
pub fn results_path(name: &str) -> io::Result<PathBuf> {
    Ok(results_dir()?.join(name))
}

/// An in-memory CSV table with a fixed header.
#[derive(Clone, Debug)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// New table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "Csv: empty header");
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already formatted cells.
    ///
    /// # Panics
    /// If the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "Csv: row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of floats (formatted with full precision).
    pub fn row_f64(&mut self, cells: &[f64]) {
        self.row(&cells.iter().map(|v| format!("{v}")).collect::<Vec<_>>());
    }

    /// Appends a labelled row: first column a string, the rest floats.
    pub fn row_labelled(&mut self, label: &str, cells: &[f64]) {
        let mut v = vec![label.to_string()];
        v.extend(cells.iter().map(|x| format!("{x}")));
        self.row(&v);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to CSV text (comma-separated; cells containing commas or
    /// quotes are quoted).
    pub fn to_string_csv(&self) -> String {
        let mut s = String::new();
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            s,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        s
    }

    /// Writes the table to a file, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_string_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(&["p", "time_s", "speedup"]);
        c.row_f64(&[1.0, 8.0, 1.0]);
        c.row_f64(&[4.0, 2.0, 4.0]);
        let s = c.to_string_csv();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "p,time_s,speedup");
        assert_eq!(lines[1], "1,8,1");
        assert_eq!(lines.len(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quotes_awkward_cells() {
        let mut c = Csv::new(&["label", "v"]);
        c.row(&["a,b".to_string(), "1".to_string()]);
        c.row(&["say \"hi\"".to_string(), "2".to_string()]);
        let s = c.to_string_csv();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn labelled_rows() {
        let mut c = Csv::new(&["field", "mape"]);
        c.row_labelled("pressure", &[1.25]);
        assert!(c.to_string_csv().contains("pressure,1.25"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pde_ml_report_test");
        let path = dir.join("t.csv");
        let mut c = Csv::new(&["a"]);
        c.row_f64(&[42.0]);
        c.write_to(&path).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a\n42\n");
        fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_wrong_arity() {
        let mut c = Csv::new(&["a", "b"]);
        c.row_f64(&[1.0]);
    }
}
