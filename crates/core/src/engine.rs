//! The persistent serving engine: one long-lived world, resident models,
//! repeated rollouts.
//!
//! [`crate::infer::ParallelInference::rollout`] is a *cold* path: every call
//! spawns rank threads, rebuilds and re-restores every rank's network,
//! re-allocates scratch, rolls out, and tears it all down. That is the right
//! shape for a one-shot experiment and the wrong shape for serving, where
//! the same trained model answers many requests.
//!
//! [`InferEngine`] keeps the expensive parts alive between requests:
//!
//! * a [`PersistentWorld`] whose rank threads (and their [`CartComm`]s)
//!   outlive any single request;
//! * a per-rank model registry — each registered model's
//!   [`crate::infer::RankRolloutState`] (restored network, window ring,
//!   halo caches, scratch tensors) is built **once** on its rank thread and
//!   then only `reset` between requests;
//! * generation-tagged request isolation: every request runs under a fresh
//!   [`pde_commsim::Comm`] generation, so a strip still in flight from
//!   request *k* can never satisfy a receive in request *k+1* (see
//!   DESIGN.md §4f).
//!
//! Warm rollouts are bitwise-identical to cold ones — same tags, same
//! seeded fault decisions (generations are deliberately invisible to
//! [`FaultPlan`] edge functions), same arithmetic — which the equivalence
//! suite enforces under both halo policies.

use crate::arch::ArchSpec;
use crate::infer::{HaloPolicy, InferError, ParallelInference, RolloutResult};
use crate::padding::PaddingStrategy;
use crate::train::TrainOutcome;
use pde_commsim::{
    CartComm, ChaosPlan, FaultPlan, PersistentWorld, RankContext, Supervisor, TrafficReport,
    TransportKind, World,
};
use pde_tensor::{perf, PerfCounters, Tensor3};
use std::collections::BTreeMap;

/// How to build an [`InferEngine`]: rank count plus an optional fault plan
/// for the engine's world (the plan applies to *every* request, exactly as
/// [`crate::infer::ParallelInference::with_fault_plan`] applies to every
/// cold rollout).
#[derive(Clone, Default)]
pub struct EngineConfig {
    /// Ranks the persistent world spawns; every registered model's
    /// partition must have exactly this many.
    pub n_ranks: usize,
    /// Optional message-fault injection for the engine's transport.
    pub fault_plan: Option<FaultPlan>,
    /// Intra-rank kernel thread budget for the engine's resident ranks
    /// (None = `PDEML_THREADS_PER_RANK` env, else `max(1, cores / ranks)`).
    pub threads_per_rank: Option<usize>,
    /// Transport the persistent world's ranks talk over
    /// ([`TransportKind::Channel`] by default; [`TransportKind::Tcp`] routes
    /// every message through localhost sockets).
    pub transport: TransportKind,
    /// Deterministic kill schedule injected at step boundaries
    /// (`kill:RANK:REQUEST[:STEP]`, request indices counted across the
    /// engine's lifetime). Each kill fires exactly once.
    pub chaos: Option<ChaosPlan>,
    /// When set, a rank death during a request triggers supervisor
    /// recovery (respawn + checkpoint restore + mesh rebuild) and the
    /// batch retries on the healed world, instead of poisoning the engine.
    pub self_heal: bool,
}

impl EngineConfig {
    /// A fault-free engine over `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        EngineConfig {
            n_ranks,
            fault_plan: None,
            threads_per_rank: None,
            transport: TransportKind::default(),
            chaos: None,
            self_heal: false,
        }
    }

    /// Injects `plan` into every request served by the engine.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Selects the transport the engine's persistent world runs over.
    pub fn with_transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Schedules deterministic rank kills (usually paired with
    /// [`EngineConfig::with_self_heal`] so the engine survives them).
    pub fn with_chaos_plan(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Turns on supervisor recovery for rank deaths during serving.
    pub fn with_self_heal(mut self) -> Self {
        self.self_heal = true;
        self
    }
}

/// Where one request's engine latency went, in microseconds: the rank jobs
/// themselves (`rollout_us` — reset + steps + quiesce, wall time of the
/// world's job round) vs everything the driver did around them
/// (`dispatch_us` — validation, scatter, generation allocation,
/// stitch/transpose). Queue wait is the scheduler's to measure; together
/// the three phases are the request's [`crate::schedule::RequestPhases`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnginePhases {
    /// Driver-side work around the rank jobs, per request.
    pub dispatch_us: u64,
    /// Rank-job wall time, per request (summed across self-heal retries).
    pub rollout_us: u64,
}

/// A configuration error from [`InferEngine::register`]: the model being
/// registered cannot live in this engine's world. Returned (not panicked)
/// so a serving layer — or the CLI — refuses the one bad model with a hint
/// instead of aborting a process that is serving other models fine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The model is partitioned over a different number of ranks than the
    /// engine's world has.
    RankCountMismatch {
        /// The model name being registered.
        model: String,
        /// Ranks the model's partition spans.
        model_ranks: usize,
        /// Ranks in the engine's world.
        world_ranks: usize,
    },
    /// The model's `(py, px)` decomposition differs from the layout the
    /// engine's resident `CartComm`s were built for.
    LayoutMismatch {
        /// The model name being registered.
        model: String,
        /// The model's `(py, px)` decomposition.
        model_layout: (usize, usize),
        /// The layout fixed by the first registration.
        fixed: (usize, usize),
    },
    /// The scheduler's resident-model cap is reached and every resident
    /// model has requests pending or in flight — nothing can be evicted.
    ResidencyFull {
        /// The model name being registered.
        model: String,
        /// The configured resident-model cap.
        cap: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RankCountMismatch {
                model,
                model_ranks,
                world_ranks,
            } => write!(
                f,
                "register('{model}'): model is partitioned over {model_ranks} ranks but the \
                 engine world has {world_ranks} — retrain (or re-partition) the model for \
                 {world_ranks} ranks, or build the engine with {model_ranks}"
            ),
            EngineError::LayoutMismatch {
                model,
                model_layout: (py, px),
                fixed: (fy, fx),
            } => write!(
                f,
                "register('{model}'): model decomposes as {py}x{px} but the engine's resident \
                 topology was fixed at {fy}x{fx} by the first registration — serve it from a \
                 separate engine, or register it first"
            ),
            EngineError::ResidencyFull { model, cap } => write!(
                f,
                "register('{model}'): resident-model cap {cap} reached and every resident \
                 model has requests in flight — raise --max-models or retry once traffic \
                 drains"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// What lives in each rank slot of the engine's world: the rank's Cartesian
/// communicator (moved out of the slot on first registration, so it
/// survives across jobs) and one resident rollout machine per registered
/// model.
struct EngineRankState {
    cart: CartComm,
    models: BTreeMap<String, crate::infer::RankRolloutState>,
    /// Resident trajectory buffer the request loop records into, regrown
    /// only when the served model's local shape or the step count changes.
    /// Steps copy into it and the outgoing result is cloned from it *after*
    /// the perf window closes, which is what keeps a warm request's
    /// measured [`PerfCounters::allocs`] at zero steady-state (for a
    /// communication-free model; sends inherently allocate payloads).
    trajectory: Vec<Tensor3>,
}

/// Whether rank states registered under a self-healing engine should mask
/// a dead neighbor during the respawn gap (only meaningful under
/// [`HaloPolicy::Degrade`] — Strict receives block without classifying the
/// peer).
fn survive_dead(self_heal: bool, inf: &ParallelInference) -> bool {
    self_heal && matches!(inf.halo_policy(), HaloPolicy::Degrade { .. })
}

/// Borrows the rank-resident state out of a job context. Panics only on
/// engine bugs — the driver never submits a request before registration.
fn resident<'a>(ctx: &'a mut RankContext<'_>) -> &'a mut EngineRankState {
    ctx.state()
        .as_mut()
        .expect("engine job ran before any model was registered")
        .downcast_mut::<EngineRankState>()
        .expect("engine rank slot holds EngineRankState")
}

/// A long-lived inference server: a [`PersistentWorld`] plus a registry of
/// resident models, serving repeated [`InferEngine::rollout`] /
/// [`InferEngine::rollout_from_history`] / [`InferEngine::rollout_batch`]
/// requests without re-spawning threads or re-loading weights.
///
/// ```
/// use pde_ml_core::prelude::*;
///
/// let data = pde_euler::dataset::paper_dataset(16, 6);
/// let arch = ArchSpec::tiny();
/// let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::ZeroPad,
///                                    TrainConfig::quick_test())
///     .train(&data, 4)
///     .unwrap();
/// let mut engine = InferEngine::new(4);
/// engine.register_outcome("pulse", arch, PaddingStrategy::ZeroPad, &outcome).unwrap();
/// let warm = engine.rollout("pulse", data.snapshot(0), 3).unwrap();
/// assert_eq!(warm.states.len(), 4);
/// ```
pub struct InferEngine {
    world: PersistentWorld,
    /// Driver-side blueprints: validation, scatter/stitch geometry and
    /// normalization per model name. The rank-side twins (restored nets +
    /// scratch) live on the worker threads.
    models: BTreeMap<String, ParallelInference>,
    /// The `(py, px)` Cartesian layout fixed by the first registration —
    /// the resident `CartComm`s are built for it, so every later model
    /// must decompose the same way.
    layout: Option<(usize, usize)>,
    /// Deterministic kill schedule (see [`EngineConfig::chaos`]).
    chaos: Option<ChaosPlan>,
    /// Supervisor recovery on rank death (see [`EngineConfig::self_heal`]).
    self_heal: bool,
    /// Requests served across the engine's lifetime — the request index a
    /// [`ChaosPlan`] kill matches against.
    request_base: usize,
}

impl InferEngine {
    /// Spawns a fault-free persistent world of `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        Self::with_config(EngineConfig::new(n_ranks))
    }

    /// Spawns the engine's world per `cfg` (rank count + fault plan) and
    /// installs each resident rank's kernel thread budget (explicit
    /// `cfg.threads_per_rank` > `PDEML_THREADS_PER_RANK` > cores / ranks).
    pub fn with_config(cfg: EngineConfig) -> Self {
        let mut world = World::new(cfg.n_ranks).with_transport(cfg.transport);
        if let Some(plan) = cfg.fault_plan.clone() {
            world = world.with_fault_plan(plan);
        }
        Self::from_world(world.spawn_persistent(), cfg)
    }

    /// Builds an engine over an already spawned world — the entry point for
    /// serving over [`pde_commsim::World::split`] sub-worlds, where the
    /// caller partitioned one big world and hands each piece its own
    /// engine. Only `cfg.threads_per_rank`, `cfg.chaos` and `cfg.self_heal`
    /// apply here; the world itself (rank count, fault plan, transport) was
    /// fixed when it was spawned.
    pub fn from_world(mut world: PersistentWorld, cfg: EngineConfig) -> Self {
        assert!(
            cfg.n_ranks == 0 || cfg.n_ranks == world.size(),
            "from_world: config says {} ranks but the world has {}",
            cfg.n_ranks,
            world.size()
        );
        if let Some(t) = cfg.threads_per_rank {
            let cores = pde_tensor::pool::available_cores();
            assert!(
                t >= 1,
                "EngineConfig: threads_per_rank must be >= 1 (use None to \
                 auto-size as cores / ranks)"
            );
            assert!(
                t <= cores,
                "EngineConfig: threads_per_rank = {t} exceeds the {cores} \
                 available core(s); oversubscription must be explicit via \
                 PDEML_THREADS_PER_RANK, not the config"
            );
        }
        let budget = pde_tensor::pool::resolve_budget(cfg.threads_per_rank, world.size());
        // One throwaway job pins the budget on every resident rank thread
        // before the first model registers.
        world.run(|_ctx| pde_tensor::pool::set_thread_budget(budget));
        InferEngine {
            world,
            models: BTreeMap::new(),
            layout: None,
            chaos: cfg.chaos,
            self_heal: cfg.self_heal,
            request_base: 0,
        }
    }

    /// Ranks in the engine's world.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// True once any request panicked a rank (the world refuses further
    /// jobs).
    pub fn is_poisoned(&self) -> bool {
        self.world.is_poisoned()
    }

    /// Shared handle on the world-poisoned flag, for health checks running
    /// on other threads (e.g. a metrics exporter).
    pub fn poisoned_flag(&self) -> std::sync::Arc<std::sync::atomic::AtomicBool> {
        self.world.poisoned_flag()
    }

    /// Per-rank aliveness flags of the engine's world (cleared when a rank
    /// dies), shared for health checks.
    pub fn alive_flags(&self) -> std::sync::Arc<Vec<std::sync::atomic::AtomicBool>> {
        self.world.alive_flags()
    }

    /// Cumulative per-rank traffic snapshots of the engine's world.
    pub fn traffic(&self) -> Vec<TrafficReport> {
        self.world.traffic()
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Whether `name` is registered.
    pub fn is_registered(&self, name: &str) -> bool {
        self.models.contains_key(name)
    }

    /// Registers `inf` under `name`, loading each rank's network **on its
    /// rank thread, once**. Later requests only `reset` the resident state.
    /// Re-registering a name replaces the model on every rank.
    ///
    /// Errors when the model's partition does not match the engine (rank
    /// count, or the `(py, px)` layout fixed by the first registration) —
    /// a configuration problem the caller can surface as a hint instead of
    /// a crash; nothing is mutated on the error path.
    ///
    /// The blueprint's own fault plan is ignored here: the engine's
    /// transport was configured once via [`EngineConfig::with_fault_plan`].
    pub fn register(&mut self, name: &str, inf: ParallelInference) -> Result<(), EngineError> {
        let part = inf.partition();
        if part.rank_count() != self.world.size() {
            return Err(EngineError::RankCountMismatch {
                model: name.to_string(),
                model_ranks: part.rank_count(),
                world_ranks: self.world.size(),
            });
        }
        let (py, px) = (part.py(), part.px());
        match self.layout {
            Some(fixed) if (py, px) != fixed => {
                return Err(EngineError::LayoutMismatch {
                    model: name.to_string(),
                    model_layout: (py, px),
                    fixed,
                });
            }
            Some(_) => {}
            None => self.layout = Some((py, px)),
        }
        let mask_dead = survive_dead(self.self_heal, &inf);
        self.world.run(|mut ctx| {
            if ctx.state().is_none() {
                let comm = ctx
                    .take_comm()
                    .expect("a freshly spawned world has a resident comm");
                let cart = CartComm::new(comm, py, px, false);
                *ctx.state() = Some(Box::new(EngineRankState {
                    cart,
                    models: BTreeMap::new(),
                    trajectory: Vec::new(),
                }));
            }
            let rank = ctx.rank();
            let ers = resident(&mut ctx);
            let mut st = inf.rank_state(rank);
            // Under a supervisor, surviving ranks serve the kill-to-respawn
            // gap degraded (dead neighbor → fallback strip) instead of
            // treating the death as fatal; meaningless under Strict, where
            // the blocked receive never classifies the peer at all.
            st.set_survive_dead(mask_dead);
            ers.models.insert(name.to_string(), st);
        });
        self.models.insert(name.to_string(), inf);
        Ok(())
    }

    /// Convenience: build the blueprint from a training outcome (weights,
    /// partition, normalization, prediction mode, window) and register it.
    pub fn register_outcome(
        &mut self,
        name: &str,
        arch: ArchSpec,
        strategy: PaddingStrategy,
        outcome: &TrainOutcome,
    ) -> Result<(), EngineError> {
        self.register(
            name,
            ParallelInference::from_outcome(arch, strategy, outcome),
        )
    }

    /// Evicts the resident model `name`: drops its driver-side blueprint
    /// and every rank's resident rollout state (restored net, window ring,
    /// scratch). Returns whether the name was registered. The engine's
    /// layout stays fixed — an evicted model's slot can be re-registered
    /// any time the same `(py, px)` decomposition.
    pub fn deregister(&mut self, name: &str) -> bool {
        if self.models.remove(name).is_none() {
            return false;
        }
        self.world.run(|mut ctx| {
            if ctx.state().is_some() {
                resident(&mut ctx).models.remove(name);
            }
        });
        true
    }

    /// Serves one rollout request against the resident model `name`
    /// (window-1 models; windowed models use
    /// [`InferEngine::rollout_from_history`]).
    pub fn rollout(
        &mut self,
        name: &str,
        initial: &Tensor3,
        n_steps: usize,
    ) -> Result<RolloutResult, InferError> {
        let inf = self
            .models
            .get(name)
            .ok_or_else(|| InferError::UnknownModel {
                name: name.to_string(),
            })?;
        if inf.window() != 1 {
            return Err(InferError::WindowMismatch {
                expected: inf.window(),
                got: 1,
            });
        }
        self.rollout_from_history(name, std::slice::from_ref(initial), n_steps)
    }

    /// Serves one windowed rollout request against the resident model
    /// `name`. Bitwise-identical to a cold
    /// [`ParallelInference::rollout_from_history`] on the same
    /// configuration.
    pub fn rollout_from_history(
        &mut self,
        name: &str,
        history: &[Tensor3],
        n_steps: usize,
    ) -> Result<RolloutResult, InferError> {
        let mut results = self.rollout_batch(name, &[history], n_steps)?;
        Ok(results.pop().expect("one request in, one result out"))
    }

    /// [`InferEngine::rollout_from_history`] carrying a serving request id:
    /// every span the request causes on the rank threads is stamped with
    /// `req_id` (greppable as `"req":N` in a trace or flight dump), and the
    /// returned [`EnginePhases`] splits its latency into driver-side
    /// dispatch vs rank-side rollout time.
    pub fn rollout_from_history_traced(
        &mut self,
        name: &str,
        history: &[Tensor3],
        n_steps: usize,
        req_id: u64,
    ) -> Result<(RolloutResult, EnginePhases), InferError> {
        let (mut results, phases) =
            self.rollout_batch_traced(name, &[history], n_steps, &[req_id])?;
        Ok((
            results.pop().expect("one request in, one result out"),
            phases,
        ))
    }

    /// Serves `histories.len()` independent rollout requests in a single
    /// round of jobs: each rank thread processes the requests in order,
    /// switching its comm to a freshly allocated generation per request so
    /// in-flight strips from one request can never bleed into the next.
    ///
    /// Returns one [`RolloutResult`] per request, in order, each with its
    /// own per-rank [`TrafficReport`]s and [`PerfCounters`] (counter deltas
    /// taken around that request alone).
    pub fn rollout_batch(
        &mut self,
        name: &str,
        histories: &[&[Tensor3]],
        n_steps: usize,
    ) -> Result<Vec<RolloutResult>, InferError> {
        Ok(self.rollout_batch_traced(name, histories, n_steps, &[])?.0)
    }

    /// [`InferEngine::rollout_batch`] with per-request serving ids (missing
    /// entries tag as 0 = untraced) and a per-request [`EnginePhases`]
    /// latency split. The phase histograms `pdeml_request_dispatch_us` /
    /// `pdeml_request_rollout_us` are recorded here, once per request.
    pub fn rollout_batch_traced(
        &mut self,
        name: &str,
        histories: &[&[Tensor3]],
        n_steps: usize,
        req_ids: &[u64],
    ) -> Result<(Vec<RolloutResult>, EnginePhases), InferError> {
        let inf = self
            .models
            .get(name)
            .ok_or_else(|| InferError::UnknownModel {
                name: name.to_string(),
            })?;
        for h in histories {
            inf.validate_history(h)?;
        }
        if histories.is_empty() {
            return Ok((Vec::new(), EnginePhases::default()));
        }
        let request_clock = std::time::Instant::now();
        // Rank-job wall time, accumulated across self-heal retries so the
        // dispatch phase (total minus rollout) never goes negative.
        let mut rollout_clock_us: u64 = 0;
        // [request][rank][slot] normalized local windows.
        let scattered: Vec<Vec<Vec<Tensor3>>> =
            histories.iter().map(|h| inf.scatter_history(h)).collect();
        let window = inf.window();
        let quiesce =
            matches!(inf.halo_policy(), HaloPolicy::Degrade { .. }) && inf.input_halo() > 0;
        let chaos = self.chaos.clone();
        let request_base = self.request_base;
        // With self-healing on, a rank death mid-batch triggers supervisor
        // recovery (respawn + checkpoint restore + mesh rebuild) and the
        // whole batch retries at fresh generations. The retry is clean —
        // chaos kills fire once, `reset` clears rings and caches, and fault
        // decisions are generation-independent — so a recovered batch is
        // bitwise what a never-killed world would have served.
        const MAX_SERVE_ATTEMPTS: usize = 3;
        let mut outs = None;
        for attempt in 0..MAX_SERVE_ATTEMPTS {
            let base = self.world.alloc_generations(histories.len() as u32);
            let serve = |mut ctx: RankContext<'_>| {
                let rank = ctx.rank();
                let EngineRankState {
                    cart,
                    models,
                    trajectory,
                } = resident(&mut ctx);
                let st = models
                    .get_mut(name)
                    .expect("driver checked the registry before submitting");
                let mut per_request = Vec::with_capacity(scattered.len());
                for (i, request) in scattered.iter().enumerate() {
                    // Everything this request records on this rank thread —
                    // steps, halo assembly, comm waits, kernels — carries
                    // its serving id (0 = untraced, the tag stays unset).
                    pde_trace::set_request(req_ids.get(i).copied().unwrap_or(0));
                    cart.comm_mut().set_generation(base + i as u32);
                    st.reset(&request[rank]);
                    let (c, h, w) = st.latest().shape();
                    if trajectory.len() != n_steps + 1
                        || trajectory.first().map(Tensor3::shape) != Some((c, h, w))
                    {
                        *trajectory = (0..=n_steps).map(|_| Tensor3::zeros(c, h, w)).collect();
                    }
                    let traffic0 = cart.comm().stats().report();
                    let perf0 = perf::snapshot();
                    trajectory[0]
                        .as_mut_slice()
                        .copy_from_slice(st.latest().as_slice());
                    for step in 0..n_steps {
                        if let Some(plan) = &chaos {
                            if plan.should_kill(rank, request_base + i, step) {
                                panic!(
                                    "chaos: killed rank {rank} at request {} step {step}",
                                    request_base + i
                                );
                            }
                        }
                        let next = st.step(cart, (step * window) as u32);
                        trajectory[step + 1]
                            .as_mut_slice()
                            .copy_from_slice(next.as_slice());
                    }
                    // Same quiesce rule as the cold path: under Degrade a
                    // rank can finish steps ahead of a timed-out neighbor,
                    // and here it would otherwise race ahead into the *next*
                    // request. The barrier (fault-exempt, dead-tolerant)
                    // holds it back. Not needed under Strict, where every
                    // receive blocks until matched.
                    if quiesce {
                        cart.comm_mut().barrier();
                    }
                    let spent = perf::snapshot().since(&perf0);
                    let moved = cart.comm().stats().report().since(&traffic0);
                    per_request.push((trajectory.clone(), spent, moved));
                }
                pde_trace::set_request(0);
                per_request
            };
            if !self.self_heal {
                // The pre-supervisor path: a rank death poisons the world
                // and the panic propagates to the driver.
                let rank_clock = std::time::Instant::now();
                outs = Some(self.world.run_at(base, serve));
                rollout_clock_us += rank_clock.elapsed().as_micros() as u64;
                break;
            }
            let rank_clock = std::time::Instant::now();
            let results = self.world.run_collect(base, serve);
            rollout_clock_us += rank_clock.elapsed().as_micros() as u64;
            if results.iter().all(std::result::Result::is_ok) {
                outs = Some(
                    results
                        .into_iter()
                        .map(|r| r.expect("checked Ok above"))
                        .collect(),
                );
                break;
            }
            drop(results); // survivors' degraded partials are discarded
            let models = &self.models;
            let (py, px) = self
                .layout
                .expect("a served request implies at least one registration");
            let healed = Supervisor::heal(&mut self.world, |mut ctx, comm, was_dead| {
                let rank = ctx.rank();
                let cart = CartComm::new(comm, py, px, false);
                if was_dead || ctx.state().is_none() {
                    // The rank's slot is gone: rebuild every registered
                    // model from its driver-side blueprint — weights come
                    // back through the same checkpoint-restore path that
                    // loaded them at registration.
                    let mut model_states = BTreeMap::new();
                    for (model_name, blueprint) in models {
                        let mut st = blueprint.rank_state(rank);
                        st.set_survive_dead(survive_dead(true, blueprint));
                        model_states.insert(model_name.clone(), st);
                    }
                    *ctx.state() = Some(Box::new(EngineRankState {
                        cart,
                        models: model_states,
                        trajectory: Vec::new(),
                    }));
                } else {
                    // Survivor: resident nets and scratch stay; only the
                    // communicator is from the torn-down mesh and must be
                    // replaced (dropping the old one as it goes).
                    let ers = resident(&mut ctx);
                    ers.cart = cart;
                }
            });
            if healed.is_none() || attempt + 1 == MAX_SERVE_ATTEMPTS {
                return Err(InferError::Recovering {
                    attempts: attempt + 1,
                });
            }
        }
        let outs = outs.ok_or(InferError::Recovering {
            attempts: MAX_SERVE_ATTEMPTS,
        })?;

        // Transpose [rank][request] → one RolloutResult per request.
        let mut per_rank: Vec<_> = outs.into_iter().map(Vec::into_iter).collect();
        let mut results = Vec::with_capacity(histories.len());
        for history in histories {
            let mut rank_histories = Vec::with_capacity(per_rank.len());
            let mut traffic: Vec<TrafficReport> = Vec::with_capacity(per_rank.len());
            let mut rank_perf: Vec<PerfCounters> = Vec::with_capacity(per_rank.len());
            for it in &mut per_rank {
                let (produced, perf, report) =
                    it.next().expect("every rank returns one entry per request");
                rank_histories.push(produced);
                rank_perf.push(perf);
                traffic.push(report);
            }
            let initial = history.last().expect("window >= 1");
            results.push(RolloutResult {
                states: inf.stitch_states(initial, &rank_histories, n_steps),
                traffic,
                rank_perf,
            });
        }
        // One latency sample per request: the batch's wall time split
        // evenly (requests in a batch complete together, so each "saw" the
        // whole batch's latency divided by the batch's throughput). The
        // phase split follows the same rule: rollout is the rank-job wall
        // time, dispatch is everything else the driver did around it.
        let total_us = request_clock.elapsed().as_micros() as u64;
        let n = histories.len() as u64;
        let per_request_us = total_us / n;
        let phases = EnginePhases {
            dispatch_us: total_us.saturating_sub(rollout_clock_us) / n,
            rollout_us: rollout_clock_us.min(total_us) / n,
        };
        for _ in histories {
            crate::live::request_latency_us().record(per_request_us);
            crate::live::request_dispatch_us().record(phases.dispatch_us);
            crate::live::request_rollout_us().record(phases.rollout_us);
            crate::live::requests().inc(pde_telemetry::DRIVER);
        }
        self.request_base += histories.len();
        Ok((results, phases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::HaloFallback;
    use crate::train::{ParallelTrainer, TrainConfig};
    use pde_euler::dataset::paper_dataset;

    fn trained(
        strategy: PaddingStrategy,
        n_ranks: usize,
    ) -> (pde_euler::DataSet, ParallelInference) {
        let data = paper_dataset(16, 8);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(arch.clone(), strategy, TrainConfig::quick_test())
            .train_view(&data, 6, n_ranks)
            .unwrap();
        (
            data,
            ParallelInference::from_outcome(arch, strategy, &outcome),
        )
    }

    #[test]
    fn warm_rollouts_match_cold_bitwise_across_requests() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let cold_a = inf.rollout(data.snapshot(0), 3).unwrap();
        let cold_b = inf.rollout(data.snapshot(4), 3).unwrap();
        let mut engine = InferEngine::new(4);
        engine.register("m", inf).unwrap();
        // Repeated warm requests from the same resident state.
        let warm_a = engine.rollout("m", data.snapshot(0), 3).unwrap();
        let warm_b = engine.rollout("m", data.snapshot(4), 3).unwrap();
        let warm_a2 = engine.rollout("m", data.snapshot(0), 3).unwrap();
        assert_eq!(warm_a.states, cold_a.states, "first warm request");
        assert_eq!(warm_b.states, cold_b.states, "different initial condition");
        assert_eq!(warm_a2.states, cold_a.states, "request after a reset");
        // Per-request traffic attribution matches a cold world's counters.
        for (w, c) in warm_b.traffic.iter().zip(&cold_b.traffic) {
            assert_eq!(w.msgs_sent, c.msgs_sent);
            assert_eq!(w.bytes_sent, c.bytes_sent);
        }
    }

    #[test]
    fn traced_batch_stamps_request_ids_and_splits_phases() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 2);
        let mut engine = InferEngine::new(2);
        engine.register("m", inf).unwrap();
        let h0 = [data.snapshot(0).clone()];
        let h1 = [data.snapshot(1).clone()];
        let handle = pde_trace::begin();
        let (results, phases) = engine
            .rollout_batch_traced("m", &[&h0, &h1], 2, &[71, 72])
            .unwrap();
        let trace = handle.finish();
        assert_eq!(results.len(), 2);
        // Every request's spans carry its id, on rank-tagged tracks.
        for id in [71u64, 72] {
            let spans: Vec<_> = trace.events.iter().filter(|e| e.req == id).collect();
            assert!(!spans.is_empty(), "request {id} left no spans");
            assert!(
                spans
                    .iter()
                    .any(|e| e.name == pde_trace::names::STEP && e.rank != pde_trace::DRIVER_RANK),
                "request {id} has a rank-attributed step span"
            );
        }
        assert!(
            phases.rollout_us > 0,
            "two 2-step rollouts take measurable rank time"
        );
        // The untraced API is the same path with id 0 everywhere.
        let (r2, _) = engine.rollout_batch_traced("m", &[&h0], 2, &[]).unwrap();
        assert_eq!(r2[0].states, results[0].states, "ids never touch the math");
    }

    #[test]
    fn batch_matches_independent_cold_rollouts() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let colds: Vec<_> = (0..3)
            .map(|k| inf.rollout(data.snapshot(k), 2).unwrap())
            .collect();
        let mut engine = InferEngine::new(4);
        engine.register("m", inf).unwrap();
        let h: Vec<&[Tensor3]> = (0..3)
            .map(|k| std::slice::from_ref(data.snapshot(k)))
            .collect();
        let batch = engine.rollout_batch("m", &h, 2).unwrap();
        assert_eq!(batch.len(), 3);
        for (k, (warm, cold)) in batch.iter().zip(&colds).enumerate() {
            assert_eq!(warm.states, cold.states, "request {k}");
            for (w, c) in warm.traffic.iter().zip(&cold.traffic) {
                assert_eq!(w.msgs_sent, c.msgs_sent, "request {k} traffic");
            }
        }
    }

    #[test]
    fn engine_serves_multiple_registered_models() {
        let (data, inf_np) = trained(PaddingStrategy::NeighborPad, 4);
        let (_, inf_zp) = trained(PaddingStrategy::ZeroPad, 4);
        let cold_np = inf_np.rollout(data.snapshot(1), 2).unwrap();
        let cold_zp = inf_zp.rollout(data.snapshot(1), 2).unwrap();
        let mut engine = InferEngine::new(4);
        engine.register("neighbor", inf_np).unwrap();
        engine.register("zero", inf_zp).unwrap();
        assert_eq!(engine.model_names(), vec!["neighbor", "zero"]);
        let warm_zp = engine.rollout("zero", data.snapshot(1), 2).unwrap();
        let warm_np = engine.rollout("neighbor", data.snapshot(1), 2).unwrap();
        assert_eq!(warm_np.states, cold_np.states);
        assert_eq!(warm_zp.states, cold_zp.states);
    }

    #[test]
    fn unknown_model_is_a_typed_error_not_a_crash() {
        let (data, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let mut engine = InferEngine::new(4);
        engine.register("only", inf).unwrap();
        let err = engine.rollout("missing", data.snapshot(0), 1).unwrap_err();
        assert_eq!(
            err,
            InferError::UnknownModel {
                name: "missing".into()
            }
        );
        assert!(err.to_string().contains("missing"));
        // The engine survives the refused request.
        assert!(engine.rollout("only", data.snapshot(0), 1).is_ok());
    }

    #[test]
    fn bad_request_is_refused_without_poisoning_the_engine() {
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let mut engine = InferEngine::new(4);
        engine.register("m", inf).unwrap();
        let wrong = Tensor3::zeros(4, 8, 8);
        let err = engine.rollout("m", &wrong, 2).unwrap_err();
        assert_eq!(
            err,
            InferError::ShapeMismatch {
                expected: (16, 16),
                got: (8, 8)
            }
        );
        assert!(engine.rollout("m", data.snapshot(0), 2).is_ok());
    }

    #[test]
    fn degraded_warm_rollouts_match_cold_under_seeded_loss() {
        let plan = FaultPlan::loss_rate(0.3, 0xFA_117);
        let policy = HaloPolicy::Degrade {
            timeout: pde_commsim::test_timeout(),
            fallback: HaloFallback::LastKnown,
        };
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 4);
        let inf = inf.with_halo_policy(policy);
        let cold = inf
            .clone()
            .with_fault_plan(plan.clone())
            .rollout(data.snapshot(2), 3)
            .unwrap();
        let mut engine = InferEngine::with_config(EngineConfig::new(4).with_fault_plan(plan));
        engine.register("m", inf).unwrap();
        let warm1 = engine.rollout("m", data.snapshot(2), 3).unwrap();
        let warm2 = engine.rollout("m", data.snapshot(2), 3).unwrap();
        assert_eq!(warm1.states, cold.states, "warm request 1 vs cold");
        assert_eq!(warm2.states, cold.states, "warm request 2 vs cold");
        assert_eq!(
            warm1.traffic.iter().map(|t| t.halos_lost).sum::<u64>(),
            cold.traffic.iter().map(|t| t.halos_lost).sum::<u64>(),
            "seeded loss pattern is generation-independent"
        );
    }

    #[test]
    fn registering_a_mismatched_partition_is_a_typed_error() {
        let (data, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let mut engine = InferEngine::new(2);
        let err = engine.register("m", inf).unwrap_err();
        assert_eq!(
            err,
            EngineError::RankCountMismatch {
                model: "m".into(),
                model_ranks: 4,
                world_ranks: 2
            }
        );
        assert!(err.to_string().contains("engine world has 2"));
        // Nothing was mutated: the engine still serves a matching model.
        let (_, inf2) = trained(PaddingStrategy::ZeroPad, 2);
        engine.register("ok", inf2).unwrap();
        assert!(engine.rollout("ok", data.snapshot(0), 1).is_ok());
        assert_eq!(engine.model_names(), vec!["ok"]);
    }

    #[test]
    fn deregister_evicts_rank_state_and_frees_the_name() {
        let (data, inf) = trained(PaddingStrategy::ZeroPad, 4);
        let mut engine = InferEngine::new(4);
        engine.register("m", inf.clone()).unwrap();
        let before = engine.rollout("m", data.snapshot(0), 2).unwrap();
        assert!(engine.deregister("m"), "was registered");
        assert!(!engine.deregister("m"), "second eviction is a no-op");
        assert!(matches!(
            engine.rollout("m", data.snapshot(0), 2),
            Err(InferError::UnknownModel { .. })
        ));
        // Re-registration after eviction serves bitwise the same.
        engine.register("m", inf).unwrap();
        let after = engine.rollout("m", data.snapshot(0), 2).unwrap();
        assert_eq!(after.states, before.states);
    }

    #[test]
    fn engine_over_split_sub_worlds_matches_a_serial_engine_bitwise() {
        // The tentpole contract at the engine layer: a model partitioned
        // over 2 ranks served from a sub-world of a split 4-rank world is
        // bitwise what a plain 2-rank engine serves.
        let (data, inf) = trained(PaddingStrategy::NeighborPad, 2);
        let mut serial = InferEngine::new(2);
        serial.register("m", inf.clone()).unwrap();
        let want_a = serial.rollout("m", data.snapshot(0), 3).unwrap();
        let want_b = serial.rollout("m", data.snapshot(4), 3).unwrap();
        let subs = World::new(4).split_even(2).unwrap();
        for sub in subs {
            let mut engine = InferEngine::from_world(sub, EngineConfig::new(2));
            engine.register("m", inf.clone()).unwrap();
            let got_a = engine.rollout("m", data.snapshot(0), 3).unwrap();
            let got_b = engine.rollout("m", data.snapshot(4), 3).unwrap();
            assert_eq!(got_a.states, want_a.states);
            assert_eq!(got_b.states, want_b.states);
            for (g, w) in got_a.traffic.iter().zip(&want_a.traffic) {
                assert_eq!(g.msgs_sent, w.msgs_sent);
                assert_eq!(g.bytes_sent, w.bytes_sent);
            }
        }
    }
}
