//! Observability glue: merges a collected [`pde_trace::Trace`] with the
//! counters the runtime already maintains — per-rank [`PerfCounters`] from
//! training ([`RankResult::perf`]) and [`TrafficReport`]s from a rollout —
//! into one [`RankMetrics`] row per rank.
//!
//! `pde-trace` itself is dependency-free, so it cannot see those structs;
//! this module is the one place where all three sides are visible. The CLI's
//! `--trace` flag and the trace-equivalence tests consume these functions.
//!
//! The merged rows carry a cross-check the test suite enforces (satellite
//! invariant): `traced_bytes_sent` — reconstructed purely from `send` events
//! in the trace — must equal `bytes_sent` from the runtime's own
//! [`CommStats`](pde_commsim::CommStats) accounting, rank by rank, whenever
//! no events were dropped to ring overflow.

use crate::infer::RolloutResult;
use crate::train::TrainOutcome;
use pde_trace::{RankMetrics, Trace, DRIVER_RANK};

/// Per-rank metrics of a training run: trace-derived span timings merged
/// with each rank's compute counters and (always-zero) traffic counters.
///
/// Ranks that appear in `outcome` but recorded no events still get a row,
/// so the result always has at least one row per rank (plus a driver row
/// when the driving thread recorded events).
pub fn train_metrics(trace: &Trace, outcome: &TrainOutcome) -> Vec<RankMetrics> {
    let mut rows = trace.summarize();
    for r in &outcome.rank_results {
        let rank = r.rank as u32;
        let m = row_for(&mut rows, rank);
        m.merge_perf(
            r.perf.flops,
            r.perf.gemm_calls,
            r.perf.bytes_packed,
            r.perf.allocs,
        );
        m.merge_traffic(r.msgs_sent, r.bytes_sent, 0, 0, 0, 0);
    }
    sort_rows(&mut rows);
    rows
}

/// Per-rank metrics of an inference rollout: trace-derived span timings
/// merged with each rank's [`TrafficReport`](pde_commsim::TrafficReport).
pub fn rollout_metrics(trace: &Trace, rollout: &RolloutResult) -> Vec<RankMetrics> {
    let mut rows = trace.summarize();
    for (rank, t) in rollout.traffic.iter().enumerate() {
        let m = row_for(&mut rows, rank as u32);
        m.merge_traffic(
            t.msgs_sent,
            t.bytes_sent,
            t.msgs_received,
            t.halos_lost,
            t.halos_zero_filled,
            t.halos_stale,
        );
    }
    sort_rows(&mut rows);
    rows
}

fn row_for(rows: &mut Vec<RankMetrics>, rank: u32) -> &mut RankMetrics {
    if let Some(i) = rows.iter().position(|m| m.rank == rank) {
        return &mut rows[i];
    }
    rows.push(RankMetrics {
        rank,
        ..RankMetrics::default()
    });
    let last = rows.len() - 1;
    &mut rows[last]
}

fn sort_rows(rows: &mut [RankMetrics]) {
    rows.sort_by_key(|m| {
        if m.rank == DRIVER_RANK {
            u64::MAX
        } else {
            m.rank as u64
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSpec;
    use crate::infer::ParallelInference;
    use crate::padding::PaddingStrategy;
    use crate::train::{ParallelTrainer, TrainConfig};
    use pde_euler::dataset::paper_dataset;
    use pde_trace::Category;

    #[test]
    fn traced_training_yields_per_rank_rows_with_perf_merged() {
        let data = paper_dataset(16, 8);
        let handle = pde_trace::begin();
        let outcome = ParallelTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::NeighborPad,
            TrainConfig::quick_test(),
        )
        .train(&data, 4)
        .unwrap();
        let trace = handle.finish();
        assert_eq!(trace.total_dropped(), 0, "quick run must fit the ring");
        assert_eq!(trace.ranks(), vec![0, 1, 2, 3]);

        let rows = train_metrics(&trace, &outcome);
        let rank_rows: Vec<_> = rows
            .iter()
            .filter(|m| m.rank != pde_trace::DRIVER_RANK)
            .collect();
        assert_eq!(rank_rows.len(), 4);
        for m in rank_rows {
            // Spans from the instrumented hot path (2 epochs each).
            assert!(m.span_us[Category::Train.index()] > 0 || m.events > 0);
            // Merged compute counters match the outcome's per-rank values.
            let r = &outcome.rank_results[m.rank as usize];
            assert_eq!(m.flops, r.perf.flops);
            assert_eq!(m.gemm_calls, r.perf.gemm_calls);
            // Training is communication-free on both sides of the merge.
            assert_eq!(m.bytes_sent, 0);
            assert_eq!(m.traced_bytes_sent, 0);
            assert_eq!(m.traced_sends, 0);
        }
    }

    #[test]
    fn traced_rollout_bytes_agree_with_traffic_report() {
        let data = paper_dataset(16, 8);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(
            arch.clone(),
            PaddingStrategy::NeighborPad,
            TrainConfig::quick_test(),
        )
        .train_view(&data, 6, 4)
        .unwrap();
        let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);

        let handle = pde_trace::begin();
        let rollout = inf.rollout(data.snapshot(6), 3).unwrap();
        let trace = handle.finish();
        assert_eq!(trace.total_dropped(), 0);

        let rows = rollout_metrics(&trace, &rollout);
        for (rank, t) in rollout.traffic.iter().enumerate() {
            let m = rows.iter().find(|m| m.rank == rank as u32).unwrap();
            assert_eq!(
                m.traced_bytes_sent, t.bytes_sent,
                "rank {rank}: trace and CommStats disagree on bytes sent"
            );
            assert_eq!(m.traced_sends, t.msgs_sent, "rank {rank}: send count");
            assert_eq!(m.bytes_sent, t.bytes_sent);
            assert!(
                m.span_us[Category::Infer.index()] > 0,
                "rank {rank}: no infer spans"
            );
        }
    }

    #[test]
    fn untraced_run_produces_rows_from_outcome_alone() {
        let data = paper_dataset(16, 8);
        let outcome = ParallelTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::ZeroPad,
            TrainConfig::quick_test(),
        )
        .train(&data, 4)
        .unwrap();
        // No session: the trace is empty but the merge still yields a row
        // per rank with the perf counters filled in.
        let empty = pde_trace::begin().finish();
        let rows = train_metrics(&empty, &outcome);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|m| m.events == 0 && m.flops > 0));
    }
}
