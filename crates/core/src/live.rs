//! Live-metric handles for the training/inference layer.
//!
//! Same pattern as commsim's: each accessor registers once (lock +
//! allocation) and caches the `&'static` handle, so the hot path — halo
//! assembly inside a rollout step, the per-request latency recording — is
//! relaxed atomics only and stays on the zero-alloc request path.

use crate::infer::RejectReason;
use pde_telemetry::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

macro_rules! live_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<&'static Counter> = OnceLock::new();
            C.get_or_init(|| pde_telemetry::counter($metric, $help))
        }
    };
}

live_counter!(
    halo_bytes_out,
    "pdeml_halo_bytes_out_total",
    "Halo strip bytes posted to neighbors, per rank"
);
live_counter!(
    halo_bytes_in,
    "pdeml_halo_bytes_in_total",
    "Halo strip bytes received from neighbors, per rank"
);
live_counter!(
    halos_zero_filled,
    "pdeml_halos_zero_filled_total",
    "Lost halos replaced with zeros, per rank"
);
live_counter!(
    halos_stale,
    "pdeml_halos_stale_total",
    "Lost halos replaced with the previous step's strip, per rank"
);
live_counter!(
    requests,
    "pdeml_requests_total",
    "Rollout requests served by the warm engine"
);
live_counter!(
    train_epochs,
    "pdeml_train_epochs_total",
    "Training epochs completed"
);

/// Requests the scheduler refused, one series per admission gate:
/// `pdeml_requests_rejected_total{reason="queue_full"|"unhealthy"|"slo"}`.
pub(crate) fn requests_rejected(reason: RejectReason) -> &'static Counter {
    const HELP: &str = "Requests shed by scheduler admission control, by reason";
    static QUEUE_FULL: OnceLock<&'static Counter> = OnceLock::new();
    static UNHEALTHY: OnceLock<&'static Counter> = OnceLock::new();
    static SLO: OnceLock<&'static Counter> = OnceLock::new();
    let (cell, label) = match reason {
        RejectReason::QueueFull => (&QUEUE_FULL, RejectReason::QueueFull.as_str()),
        RejectReason::Unhealthy => (&UNHEALTHY, RejectReason::Unhealthy.as_str()),
        RejectReason::SloBreach => (&SLO, RejectReason::SloBreach.as_str()),
    };
    cell.get_or_init(|| {
        pde_telemetry::counter_with_label("pdeml_requests_rejected_total", HELP, "reason", label)
    })
}

/// Requests currently executing on some sub-world (admitted, not finished).
pub(crate) fn requests_inflight() -> &'static Gauge {
    static G: OnceLock<&'static Gauge> = OnceLock::new();
    G.get_or_init(|| {
        pde_telemetry::gauge(
            "pdeml_requests_inflight",
            "Requests currently executing on a sub-world",
        )
    })
}

/// Requests admitted but not yet picked up by a sub-world dispatcher.
pub(crate) fn request_queue_depth() -> &'static Gauge {
    static G: OnceLock<&'static Gauge> = OnceLock::new();
    G.get_or_init(|| {
        pde_telemetry::gauge(
            "pdeml_request_queue_depth",
            "Admitted requests waiting for an idle sub-world",
        )
    })
}

/// Warm-engine per-request latency in microseconds. Driver-recorded, so a
/// single shared bucket array (not rank shards) is the right shape.
pub(crate) fn request_latency_us() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        pde_telemetry::histogram(
            "pdeml_request_latency_us",
            "Warm rollout request latency in microseconds",
        )
    })
}

// Phase breakdown of the total request latency (DESIGN.md §4k): the time a
// request spent admitted-but-waiting, the driver-side scatter/stitch around
// the rank jobs, and the rank jobs themselves. queue_wait is recorded by
// the scheduler's dispatcher, the other two by the engine — so direct
// engine callers still populate dispatch/rollout.

/// Time from admission to a dispatcher picking the request up (µs).
pub(crate) fn request_queue_wait_us() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        pde_telemetry::histogram(
            "pdeml_request_queue_wait_us",
            "Admitted-request queue wait before dispatch, microseconds",
        )
    })
}

/// Driver-side request handling outside the rank jobs: history validation,
/// scatter, generation allocation, stitch/transpose (µs).
pub(crate) fn request_dispatch_us() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        pde_telemetry::histogram(
            "pdeml_request_dispatch_us",
            "Driver-side dispatch work around the rank jobs, microseconds",
        )
    })
}

/// Rank-job wall time of the request: reset + steps + quiesce (µs).
pub(crate) fn request_rollout_us() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        pde_telemetry::histogram(
            "pdeml_request_rollout_us",
            "Rank-side rollout wall time per request, microseconds",
        )
    })
}
