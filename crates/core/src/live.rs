//! Live-metric handles for the training/inference layer.
//!
//! Same pattern as commsim's: each accessor registers once (lock +
//! allocation) and caches the `&'static` handle, so the hot path — halo
//! assembly inside a rollout step, the per-request latency recording — is
//! relaxed atomics only and stays on the zero-alloc request path.

use pde_telemetry::{Counter, Histogram};
use std::sync::OnceLock;

macro_rules! live_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<&'static Counter> = OnceLock::new();
            C.get_or_init(|| pde_telemetry::counter($metric, $help))
        }
    };
}

live_counter!(
    halo_bytes_out,
    "pdeml_halo_bytes_out_total",
    "Halo strip bytes posted to neighbors, per rank"
);
live_counter!(
    halo_bytes_in,
    "pdeml_halo_bytes_in_total",
    "Halo strip bytes received from neighbors, per rank"
);
live_counter!(
    halos_zero_filled,
    "pdeml_halos_zero_filled_total",
    "Lost halos replaced with zeros, per rank"
);
live_counter!(
    halos_stale,
    "pdeml_halos_stale_total",
    "Lost halos replaced with the previous step's strip, per rank"
);
live_counter!(
    requests,
    "pdeml_requests_total",
    "Rollout requests served by the warm engine"
);
live_counter!(
    train_epochs,
    "pdeml_train_epochs_total",
    "Training epochs completed"
);

/// Warm-engine per-request latency in microseconds. Driver-recorded, so a
/// single shared bucket array (not rank shards) is the right shape.
pub(crate) fn request_latency_us() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        pde_telemetry::histogram(
            "pdeml_request_latency_us",
            "Warm rollout request latency in microseconds",
        )
    })
}
