//! Per-field accuracy metrics for prediction-vs-target comparisons
//! (the quantitative backbone of the Fig.-3 reproduction).

use pde_euler::state::FIELD_NAMES;
use pde_tensor::stats;
use pde_tensor::Tensor3;

/// Error metrics of one physical field.
#[derive(Clone, Debug)]
pub struct FieldErrors {
    /// Field name (`pressure`, `density`, …).
    pub name: String,
    /// Mean absolute percentage error (floored denominator), percent.
    pub mape: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Largest absolute error.
    pub max_err: f64,
    /// Pearson correlation between prediction and target.
    pub pearson: f64,
    /// Target range, for normalizing the other columns by eye.
    pub target_range: (f64, f64),
}

impl FieldErrors {
    /// RMSE normalized by the target's range (NRMSE); ∞ if the target is
    /// constant.
    pub fn nrmse(&self) -> f64 {
        let span = self.target_range.1 - self.target_range.0;
        if span == 0.0 {
            f64::INFINITY
        } else {
            self.rmse / span
        }
    }
}

/// Computes per-channel errors between a prediction and a target snapshot.
///
/// `mape_floor` guards the MAPE denominator (see
/// [`pde_nn::loss::Mape`]).
///
/// # Panics
/// If the shapes differ.
pub fn field_errors(pred: &Tensor3, target: &Tensor3, mape_floor: f64) -> Vec<FieldErrors> {
    assert_eq!(pred.shape(), target.shape(), "field_errors: shape mismatch");
    (0..pred.c())
        .map(|c| {
            let p = pred.channel(c);
            let t = target.channel(c);
            let (lo, hi) = t
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                    (lo.min(x), hi.max(x))
                });
            FieldErrors {
                name: FIELD_NAMES.get(c).copied().unwrap_or("field").to_string()
                    + if c >= FIELD_NAMES.len() { "?" } else { "" },
                mape: stats::mape(p, t, mape_floor),
                rmse: stats::rmse(p, t),
                max_err: stats::max_abs_err(p, t),
                pearson: stats::pearson(p, t),
                target_range: (lo, hi),
            }
        })
        .collect()
}

/// Mean RMSE across all channels — a single scalar for rollout curves.
pub fn mean_rmse(pred: &Tensor3, target: &Tensor3) -> f64 {
    let errs = field_errors(pred, target, 1e-3);
    errs.iter().map(|e| e.rmse).sum::<f64>() / errs.len() as f64
}

/// Error growth along a predicted trajectory vs. a reference trajectory:
/// returns mean RMSE per step (the §IV-B "accumulative error" curve).
///
/// Compares `pred[k]` with `reference[k]` for `k = 0..min(len)`.
pub fn rollout_error_curve(pred: &[Tensor3], reference: &[Tensor3]) -> Vec<f64> {
    pred.iter()
        .zip(reference)
        .map(|(p, r)| mean_rmse(p, r))
        .collect()
}

/// Renders a fixed-width per-field error table.
pub fn format_error_table(errs: &[FieldErrors]) -> String {
    let mut s = format!(
        "{:<12} {:>10} {:>12} {:>12} {:>9}\n",
        "field", "MAPE[%]", "RMSE", "max|err|", "pearson"
    );
    for e in errs {
        s.push_str(&format!(
            "{:<12} {:>10.3} {:>12.3e} {:>12.3e} {:>9.4}\n",
            e.name, e.mape, e.rmse, e.max_err, e.pearson
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(f: impl FnMut(usize, usize, usize) -> f64) -> Tensor3 {
        Tensor3::from_fn(4, 6, 6, f)
    }

    #[test]
    fn perfect_prediction_has_zero_errors() {
        let t = snap(|c, i, j| (c + i * j) as f64);
        let errs = field_errors(&t, &t, 1e-3);
        assert_eq!(errs.len(), 4);
        for e in &errs {
            assert_eq!(e.rmse, 0.0);
            assert_eq!(e.max_err, 0.0);
            assert_eq!(e.mape, 0.0);
        }
        assert_eq!(errs[0].name, "pressure");
        assert_eq!(errs[3].name, "velocity_y");
    }

    #[test]
    fn known_offset_error() {
        let t = snap(|_, _, _| 2.0);
        let p = snap(|_, _, _| 2.5);
        let errs = field_errors(&p, &t, 1e-3);
        for e in &errs {
            assert!((e.rmse - 0.5).abs() < 1e-12);
            assert!((e.max_err - 0.5).abs() < 1e-12);
            assert!((e.mape - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let t = snap(|_, i, _| i as f64); // range 0..5
        let p = snap(|_, i, _| i as f64 + 1.0);
        let errs = field_errors(&p, &t, 1e-3);
        assert!((errs[0].nrmse() - 1.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn rollout_curve_grows_with_drift() {
        let base = snap(|c, i, j| (c + i + j) as f64);
        let reference = vec![base.clone(), base.clone(), base.clone()];
        let pred = vec![
            base.clone(),
            {
                let mut x = base.clone();
                x.map_inplace(|v| v + 0.1);
                x
            },
            {
                let mut x = base.clone();
                x.map_inplace(|v| v + 0.3);
                x
            },
        ];
        let curve = rollout_error_curve(&pred, &reference);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0], 0.0);
        assert!(curve[1] < curve[2]);
    }

    #[test]
    fn table_contains_all_fields() {
        let t = snap(|c, i, j| (c * i + j) as f64);
        let s = format_error_table(&field_errors(&t, &t, 1e-3));
        for name in FIELD_NAMES {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
