//! Training: the paper's communication-free parallel scheme plus the
//! single-network sequential reference.
//!
//! §III, training: "decompose each individual training data set into
//! smaller sections and feed each subsection into an independent neural
//! network … assigning an MPI rank to each network … an individual cost
//! function and optimization process for each network … there is no need
//! for data exchange between processes."
//!
//! [`ParallelTrainer`] realizes exactly that on `pde-commsim`: one rank per
//! subdomain, each builds its own network, dataset shard, loss and
//! optimizer, and never communicates. The per-rank traffic counters are
//! returned so harnesses (and tests) can *prove* the zero-communication
//! property rather than assert it rhetorically.

use crate::arch::ArchSpec;
use crate::data::SubdomainDataset;
use crate::norm::ChannelNorm;
use crate::padding::PaddingStrategy;
use pde_commsim::World;
use pde_domain::GridPartition;
use pde_euler::dataset::{DataSet, DataSetView};
use pde_nn::loss::{Huber, Loss, Mae, Mape, Mse};
use pde_nn::optim::{Adam, Optimizer, RmsProp, Sgd};
use pde_nn::serialize::snapshot;
use pde_nn::{Layer, LrSchedule, Sequential};
use pde_tensor::{perf, PerfCounters, Tensor4};
use std::time::Instant;

/// Which optimizer a trainer builds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizerKind {
    /// ADAM with default moments — the paper's choice.
    Adam,
    /// Plain SGD.
    Sgd,
    /// SGD with classical momentum.
    SgdMomentum(f64),
    /// RMSProp.
    RmsProp,
}

impl OptimizerKind {
    /// Builds the optimizer at learning rate `lr`.
    pub fn build(&self, lr: f64) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Adam => Box::new(Adam::new(lr)),
            OptimizerKind::Sgd => Box::new(Sgd::new(lr)),
            OptimizerKind::SgdMomentum(mu) => Box::new(Sgd::with_momentum(lr, mu)),
            OptimizerKind::RmsProp => Box::new(RmsProp::new(lr)),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OptimizerKind::Adam => "Adam",
            OptimizerKind::Sgd => "SGD",
            OptimizerKind::SgdMomentum(_) => "SGD+momentum",
            OptimizerKind::RmsProp => "RMSProp",
        }
    }
}

/// What the network's output represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictionMode {
    /// The network predicts the next state directly: `q̂(t+1) = f(q(t))` —
    /// the paper's formulation.
    Absolute,
    /// The network predicts the increment: `q̂(t+1) = q(t) + f(q(t))`
    /// (delta learning). An extension (ablation X5 in DESIGN.md): since one
    /// CFL-limited solver step changes the state only slightly, learning
    /// the increment starts from the persistence baseline instead of having
    /// to reconstruct the full field, which markedly improves both
    /// single-step accuracy and rollout stability at small training
    /// budgets.
    Residual,
}

impl PredictionMode {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PredictionMode::Absolute => "absolute",
            PredictionMode::Residual => "residual",
        }
    }
}

/// Which loss a trainer builds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossKind {
    /// Mean absolute percentage error (the paper's choice) with a
    /// denominator floor.
    Mape {
        /// Minimum denominator magnitude.
        floor: f64,
    },
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss.
    Huber {
        /// Quadratic/linear transition point.
        delta: f64,
    },
}

impl LossKind {
    /// Builds the loss.
    pub fn build(&self) -> Box<dyn Loss> {
        match *self {
            LossKind::Mape { floor } => Box::new(Mape::new(floor)),
            LossKind::Mse => Box::new(Mse),
            LossKind::Mae => Box::new(Mae),
            LossKind::Huber { delta } => Box::new(Huber::new(delta)),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            LossKind::Mape { .. } => "MAPE",
            LossKind::Mse => "MSE",
            LossKind::Mae => "MAE",
            LossKind::Huber { .. } => "Huber",
        }
    }
}

/// Hyperparameters of one training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the shard.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f64,
    /// Optional schedule overriding `lr` per epoch.
    pub schedule: Option<LrSchedule>,
    /// Optimizer family.
    pub optimizer: OptimizerKind,
    /// Loss function.
    pub loss: LossKind,
    /// Shuffle the shard every epoch (seeded, deterministic).
    pub shuffle: bool,
    /// Map every channel to O(1) with [`ChannelNorm`] fitted on the
    /// training view (strongly recommended: the Euler fields span ~6 orders
    /// of magnitude; see `norm` module docs).
    pub normalize: bool,
    /// Whether the network predicts the next state or its increment.
    pub prediction: PredictionMode,
    /// Clip the global gradient L2 norm to this value before each optimizer
    /// step (None = no clipping). MAPE's sign-gradients occasionally spike
    /// on near-floor denominators; clipping tames the resulting steps.
    pub grad_clip: Option<f64>,
    /// Time-window width: how many consecutive snapshots form the input
    /// (1 = the paper's single-state formulation). The architecture's
    /// `in_channels` must equal `N_FIELDS · window`.
    pub window: usize,
    /// Master seed: rank `r` derives its init/shuffle seed as `seed + r`.
    pub seed: u64,
    /// Intra-rank kernel thread budget (None = `PDEML_THREADS_PER_RANK`
    /// env, else `max(1, cores / n_ranks)`). Validated against the
    /// machine's core count — oversubscription must be explicit via the
    /// env var, never silent.
    pub threads_per_rank: Option<usize>,
}

impl TrainConfig {
    /// A configuration close to the paper's: ADAM, MAPE loss, constant
    /// learning rate. (The paper quotes ADAM's suggested `η = 0.01`; with
    /// MAPE's large gradients a slightly smaller 1e-3 is the stable choice
    /// on our substrate and is noted in EXPERIMENTS.md.)
    pub fn paper() -> Self {
        Self {
            epochs: 50,
            batch_size: 16,
            lr: 1e-3,
            schedule: None,
            optimizer: OptimizerKind::Adam,
            loss: LossKind::Mape { floor: 1e-3 },
            shuffle: true,
            normalize: true,
            prediction: PredictionMode::Absolute,
            grad_clip: None,
            window: 1,
            seed: 0x5EED,
            threads_per_rank: None,
        }
    }

    /// The paper configuration with residual (delta) prediction — the
    /// recommended mode for actually deploying the surrogate (see
    /// [`PredictionMode::Residual`]).
    pub fn paper_residual() -> Self {
        Self {
            prediction: PredictionMode::Residual,
            ..Self::paper()
        }
    }

    /// A minimal configuration for unit tests (2 epochs).
    pub fn quick_test() -> Self {
        Self {
            epochs: 2,
            batch_size: 4,
            ..Self::paper()
        }
    }

    /// Effective learning rate for an epoch.
    pub fn rate(&self, epoch: usize) -> f64 {
        self.schedule.as_ref().map_or(self.lr, |s| s.rate(epoch))
    }

    /// Sanity checks. 0 epochs is legal — a smoke run that returns the
    /// initial weights and an empty loss history (its
    /// [`TrainOutcome::mean_final_loss`] is NaN).
    pub fn validate(&self) {
        assert!(self.batch_size >= 1, "TrainConfig: batch_size must be >= 1");
        assert!(self.lr > 0.0, "TrainConfig: lr must be > 0");
        assert!(self.window >= 1, "TrainConfig: window must be >= 1");
        if let Some(t) = self.threads_per_rank {
            assert!(
                t >= 1,
                "TrainConfig: threads_per_rank must be >= 1 (use None to \
                 auto-size as cores / ranks)"
            );
            let cores = pde_tensor::pool::available_cores();
            assert!(
                t <= cores,
                "TrainConfig: threads_per_rank = {t} exceeds the {cores} \
                 available core(s); oversubscription must be explicit via \
                 PDEML_THREADS_PER_RANK, not the config"
            );
        }
    }
}

/// Errors surfaced before any thread is spawned.
#[derive(Debug, PartialEq, Eq)]
pub enum TrainError {
    /// The partition cannot host this architecture/strategy combination.
    Geometry(String),
    /// The dataset has no training pairs.
    EmptyData,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Geometry(s) => write!(f, "geometry error: {s}"),
            TrainError::EmptyData => write!(f, "no training pairs"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Everything one rank produced.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Rank id.
    pub rank: usize,
    /// Trained parameters (flat snapshot; restore with
    /// `pde_nn::serialize::restore` into `arch.build(...)`).
    pub weights: Vec<f64>,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds this rank spent training.
    pub train_seconds: f64,
    /// Messages this rank sent during training (must be 0).
    pub msgs_sent: u64,
    /// Bytes this rank sent during training (must be 0).
    pub bytes_sent: u64,
    /// Kernel FLOP / GEMM-call / allocation counters for this rank's
    /// training thread (exact per-rank attribution: one OS thread per rank).
    pub perf: PerfCounters,
}

/// Result of a parallel training run.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Per-rank results, rank order.
    pub rank_results: Vec<RankResult>,
    /// End-to-end wall-clock seconds (slowest rank + harness overhead).
    pub wall_seconds: f64,
    /// The partition used.
    pub partition: GridPartition,
    /// The channel normalization the networks were trained in (identity
    /// when `TrainConfig::normalize` was off). Inference must reuse it.
    pub norm: ChannelNorm,
    /// The prediction mode the networks were trained for. Inference must
    /// reuse it.
    pub prediction: PredictionMode,
    /// The input time-window width the networks were trained with.
    pub window: usize,
}

impl TrainOutcome {
    /// Mean final-epoch loss across ranks, or NaN when no epochs ran (a
    /// 0-epoch config is a legal smoke configuration, not a panic).
    pub fn mean_final_loss(&self) -> f64 {
        let finals: Vec<f64> = self
            .rank_results
            .iter()
            .filter_map(|r| r.epoch_losses.last().copied())
            .collect();
        if finals.len() != self.rank_results.len() {
            return f64::NAN;
        }
        finals.iter().sum::<f64>() / finals.len() as f64
    }

    /// Total bytes sent by all ranks during training.
    pub fn total_bytes_sent(&self) -> u64 {
        self.rank_results.iter().map(|r| r.bytes_sent).sum()
    }
}

/// Reusable state of the training hot loop: the optimizer, the loss, and
/// every buffer a per-batch step touches (epoch order, the two mini-batch
/// tensors, prediction, loss gradient, input gradient).
///
/// All buffers grow monotonically: after the first epoch has warmed them —
/// together with the network's own workspace and the optimizer's moment
/// state — a full epoch performs **zero heap allocations** (asserted by
/// `zero_alloc.rs` in the bench crate against the allocation probe in
/// [`pde_tensor::perf`]).
pub struct TrainSession {
    opt: Box<dyn Optimizer>,
    loss: Box<dyn Loss>,
    order: Vec<usize>,
    x: Tensor4,
    y: Tensor4,
    pred: Tensor4,
    grad: Tensor4,
    grad_in: Tensor4,
}

impl TrainSession {
    /// Builds the optimizer/loss from `cfg` and empty (capacity-0) buffers.
    pub fn new(cfg: &TrainConfig) -> Self {
        cfg.validate();
        Self {
            opt: cfg.optimizer.build(cfg.lr),
            loss: cfg.loss.build(),
            order: Vec::new(),
            x: Tensor4::zeros(0, 0, 0, 0),
            y: Tensor4::zeros(0, 0, 0, 0),
            pred: Tensor4::zeros(0, 0, 0, 0),
            grad: Tensor4::zeros(0, 0, 0, 0),
            grad_in: Tensor4::zeros(0, 0, 0, 0),
        }
    }

    /// One pass over the shard; returns the mean per-batch loss.
    ///
    /// The session must be used with the same network and dataset across
    /// epochs (the optimizer's moment state is keyed to the parameter-group
    /// structure).
    pub fn run_epoch(
        &mut self,
        net: &mut Sequential,
        ds: &SubdomainDataset,
        cfg: &TrainConfig,
        epoch: usize,
    ) -> f64 {
        use pde_trace::{names, Category};
        let mut epoch_span = pde_trace::span_args(Category::Train, names::EPOCH, epoch as u64, 0);
        crate::live::train_epochs().inc(pde_telemetry::DRIVER);
        self.opt.set_learning_rate(cfg.rate(epoch));
        ds.fill_epoch_order(cfg.shuffle, cfg.seed, epoch, &mut self.order);
        let mut sum = 0.0;
        let mut batches = 0usize;
        let mut cursor = ds.batch_cursor(&self.order, cfg.batch_size);
        while cursor.next_into(&mut self.x, &mut self.y) {
            let _batch_span =
                pde_trace::span_args(Category::Train, names::BATCH, batches as u64, 0);
            net.zero_grad();
            net.forward_into(&self.x, true, &mut self.pred);
            let l = self
                .loss
                .value_and_grad_into(&self.pred, &self.y, &mut self.grad);
            net.backward_into(&self.grad, &mut self.grad_in);
            if let Some(max_norm) = cfg.grad_clip {
                let norm = pde_nn::optim::gradient_norm_of(net);
                if norm > max_norm {
                    net.scale_gradients(max_norm / norm);
                }
            }
            self.opt.step_visit(net);
            sum += l;
            batches += 1;
        }
        epoch_span.set_args(epoch as u64, batches as u64);
        sum / batches as f64
    }
}

/// The inner optimization loop shared by every trainer in the workspace.
///
/// Returns the mean loss per epoch.
pub fn train_network(net: &mut Sequential, ds: &SubdomainDataset, cfg: &TrainConfig) -> Vec<f64> {
    let mut session = TrainSession::new(cfg);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        epoch_losses.push(session.run_epoch(net, ds, cfg, epoch));
    }
    epoch_losses
}

/// Validates that `part` can host `arch` under `strategy`.
pub fn check_geometry(
    part: &GridPartition,
    arch: &ArchSpec,
    strategy: PaddingStrategy,
) -> Result<(), TrainError> {
    let halo = arch.halo();
    for (r, b) in part.blocks().enumerate() {
        if strategy == PaddingStrategy::InnerCrop && (b.h <= 2 * halo || b.w <= 2 * halo) {
            return Err(TrainError::Geometry(format!(
                "rank {r}: inner-crop needs block > {0}x{0}, got {1}x{2}",
                2 * halo,
                b.h,
                b.w
            )));
        }
        if strategy.needs_halo_exchange() && (b.h < halo || b.w < halo) {
            return Err(TrainError::Geometry(format!(
                "rank {r}: halo {halo} exceeds its {0}x{1} block — use fewer ranks or a \
                 shallower architecture",
                b.h, b.w
            )));
        }
    }
    Ok(())
}

/// Fits the channel normalization a trainer will use for `view` (identity
/// when disabled in the config).
pub fn fit_norm(cfg: &TrainConfig, view: &DataSetView<'_>, arch: &ArchSpec) -> ChannelNorm {
    if cfg.normalize {
        ChannelNorm::fit(view)
    } else {
        ChannelNorm::identity(arch.in_channels())
    }
}

/// Deterministic per-rank training of one subdomain (no threads) — the
/// reference the parallel path must match bit-for-bit.
pub fn train_rank(
    arch: &ArchSpec,
    strategy: PaddingStrategy,
    cfg: &TrainConfig,
    view: &DataSetView<'_>,
    part: &GridPartition,
    rank: usize,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        cfg.window, 1,
        "train_rank: use train_rank_windowed for window > 1"
    );
    let norm = fit_norm(cfg, view, arch);
    let ds = SubdomainDataset::build_with_mode(
        view,
        part,
        rank,
        arch.halo(),
        strategy,
        &norm,
        cfg.prediction,
    );
    let mut net = arch.build_for(strategy, cfg.seed + rank as u64);
    let losses = train_network(&mut net, &ds, cfg);
    (snapshot(&mut net), losses)
}

/// The paper's parallel trainer: one rank per subdomain, zero communication.
pub struct ParallelTrainer {
    arch: ArchSpec,
    strategy: PaddingStrategy,
    config: TrainConfig,
}

impl ParallelTrainer {
    /// New trainer.
    pub fn new(arch: ArchSpec, strategy: PaddingStrategy, config: TrainConfig) -> Self {
        arch.validate();
        config.validate();
        Self {
            arch,
            strategy,
            config,
        }
    }

    /// The architecture in use.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// The padding strategy in use.
    pub fn strategy(&self) -> PaddingStrategy {
        self.strategy
    }

    /// Trains on **all** pairs of `data` with `n_ranks` ranks.
    pub fn train(&self, data: &DataSet, n_ranks: usize) -> Result<TrainOutcome, TrainError> {
        self.train_pairs_range(data, 0, data.pair_count(), n_ranks)
    }

    /// Trains on the first `n_train_pairs` pairs with `n_ranks` ranks.
    pub fn train_view(
        &self,
        data: &DataSet,
        n_train_pairs: usize,
        n_ranks: usize,
    ) -> Result<TrainOutcome, TrainError> {
        self.train_pairs_range(data, 0, n_train_pairs, n_ranks)
    }

    fn train_pairs_range(
        &self,
        data: &DataSet,
        start: usize,
        count: usize,
        n_ranks: usize,
    ) -> Result<TrainOutcome, TrainError> {
        if count == 0 || start + count > data.pair_count() {
            return Err(TrainError::EmptyData);
        }
        let (c, h, w) = data.shape();
        if self.arch.in_channels() != c * self.config.window {
            return Err(TrainError::Geometry(format!(
                "architecture expects {} input channels but window {} over {c}-channel \
                 snapshots provides {}",
                self.arch.in_channels(),
                self.config.window,
                c * self.config.window
            )));
        }
        let part = GridPartition::for_ranks(h, w, n_ranks);
        check_geometry(&part, &self.arch, self.strategy)?;
        // The first usable sample needs window-1 snapshots of history, so
        // the requested range loses its first pairs when it starts too
        // early.
        let end = start + count;
        let start = start.max(self.config.window - 1);
        if start >= end {
            return Err(TrainError::EmptyData);
        }
        let count = end - start;

        let t0 = Instant::now();
        let world = World::new(n_ranks);
        let arch = &self.arch;
        let strategy = self.strategy;
        let cfg = &self.config;
        let norm = fit_norm(cfg, &data.view(start, count), arch);
        let norm_ref = &norm;
        let results = world.run(|comm| {
            let rank = comm.rank();
            // Install this rank's kernel thread budget before any GEMM/conv
            // runs: explicit config > PDEML_THREADS_PER_RANK > cores/ranks.
            pde_tensor::pool::set_thread_budget(pde_tensor::pool::resolve_budget(
                cfg.threads_per_rank,
                n_ranks,
            ));
            let rank_t0 = Instant::now();
            let perf0 = perf::snapshot();
            // Build the rank's shard straight from (shared) memory — the
            // paper's "training data are directly fed into the network from
            // the memory".
            let ds = crate::data::build_windowed(
                data,
                start,
                count,
                &part,
                rank,
                arch.halo(),
                strategy,
                norm_ref,
                cfg.prediction,
                cfg.window,
            );
            let mut net = arch.build_for(strategy, cfg.seed + rank as u64);
            let epoch_losses = train_network(&mut net, &ds, cfg);
            RankResult {
                rank,
                weights: snapshot(&mut net),
                epoch_losses,
                train_seconds: rank_t0.elapsed().as_secs_f64(),
                msgs_sent: comm.stats().sent(),
                bytes_sent: comm.stats().bytes_sent(),
                perf: perf::snapshot().since(&perf0),
            }
        });
        Ok(TrainOutcome {
            rank_results: results,
            wall_seconds: t0.elapsed().as_secs_f64(),
            partition: part,
            norm,
            prediction: cfg.prediction,
            window: cfg.window,
        })
    }
}

/// Result of a sequential (single-network) training run.
pub struct SequentialOutcome {
    /// The trained full-domain network.
    pub net: Sequential,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Channel normalization the network was trained in.
    pub norm: ChannelNorm,
    /// Prediction mode the network was trained for.
    pub prediction: PredictionMode,
    /// Input time-window width the network was trained with.
    pub window: usize,
}

/// The single-network reference: the whole domain as one "subdomain"
/// trained by one process — the `T(1)` of the strong-scaling study.
pub struct SequentialTrainer {
    arch: ArchSpec,
    strategy: PaddingStrategy,
    config: TrainConfig,
}

impl SequentialTrainer {
    /// New trainer.
    pub fn new(arch: ArchSpec, strategy: PaddingStrategy, config: TrainConfig) -> Self {
        arch.validate();
        config.validate();
        Self {
            arch,
            strategy,
            config,
        }
    }

    /// Trains on pairs `0..n_train_pairs`.
    pub fn train(
        &self,
        data: &DataSet,
        n_train_pairs: usize,
    ) -> Result<SequentialOutcome, TrainError> {
        if n_train_pairs == 0 || n_train_pairs > data.pair_count() {
            return Err(TrainError::EmptyData);
        }
        let (_, h, w) = data.shape();
        let part = GridPartition::new(h, w, 1, 1);
        check_geometry(&part, &self.arch, self.strategy)?;
        let t0 = Instant::now();
        let start = self.config.window - 1;
        if start >= n_train_pairs {
            return Err(TrainError::EmptyData);
        }
        let view = data.view(start, n_train_pairs - start);
        let norm = fit_norm(&self.config, &view, &self.arch);
        let ds = crate::data::build_windowed(
            data,
            start,
            n_train_pairs - start,
            &part,
            0,
            self.arch.halo(),
            self.strategy,
            &norm,
            self.config.prediction,
            self.config.window,
        );
        let mut net = self.arch.build_for(self.strategy, self.config.seed);
        let epoch_losses = train_network(&mut net, &ds, &self.config);
        Ok(SequentialOutcome {
            net,
            epoch_losses,
            seconds: t0.elapsed().as_secs_f64(),
            norm,
            prediction: self.config.prediction,
            window: self.config.window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_euler::dataset::paper_dataset;

    fn data() -> DataSet {
        paper_dataset(16, 8)
    }

    #[test]
    fn parallel_training_is_communication_free() {
        let out = ParallelTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::NeighborPad,
            TrainConfig::quick_test(),
        )
        .train(&data(), 4)
        .unwrap();
        assert_eq!(out.rank_results.len(), 4);
        for r in &out.rank_results {
            assert_eq!(
                r.msgs_sent, 0,
                "rank {} communicated during training",
                r.rank
            );
            assert_eq!(r.bytes_sent, 0);
            assert_eq!(r.epoch_losses.len(), 2);
            assert!(r.train_seconds >= 0.0);
            assert!(
                r.perf.gemm_calls > 0,
                "rank {} reported no GEMM calls",
                r.rank
            );
            assert!(r.perf.flops > 0, "rank {} reported no FLOPs", r.rank);
        }
        assert_eq!(out.total_bytes_sent(), 0);
    }

    #[test]
    fn parallel_matches_sequential_per_rank_bitwise() {
        let d = data();
        let cfg = TrainConfig::quick_test();
        let arch = ArchSpec::tiny();
        let strategy = PaddingStrategy::NeighborPad;
        let out = ParallelTrainer::new(arch.clone(), strategy, cfg.clone())
            .train(&d, 4)
            .unwrap();
        let part = out.partition;
        for r in 0..4 {
            let view = d.view(0, d.pair_count());
            let (w_ref, losses_ref) = train_rank(&arch, strategy, &cfg, &view, &part, r);
            assert_eq!(
                out.rank_results[r].weights, w_ref,
                "rank {r} weights differ"
            );
            assert_eq!(
                out.rank_results[r].epoch_losses, losses_ref,
                "rank {r} losses differ"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let d = paper_dataset(16, 10);
        let mut cfg = TrainConfig::paper();
        cfg.epochs = 15;
        cfg.batch_size = 4;
        let out = ParallelTrainer::new(ArchSpec::tiny(), PaddingStrategy::ZeroPad, cfg)
            .train(&d, 4)
            .unwrap();
        for r in &out.rank_results {
            let first = r.epoch_losses[0];
            let last = *r.epoch_losses.last().unwrap();
            assert!(
                last < first,
                "rank {}: loss did not decrease ({first} -> {last})",
                r.rank
            );
        }
    }

    #[test]
    fn sequential_trainer_runs() {
        let d = data();
        let mut out = SequentialTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::ZeroPad,
            TrainConfig::quick_test(),
        )
        .train(&d, 5)
        .unwrap();
        assert_eq!(out.epoch_losses.len(), 2);
        assert!(out.seconds > 0.0);
        assert!(
            !out.norm.is_identity(),
            "paper config normalizes by default"
        );
        let x = out
            .norm
            .normalize4(&pde_tensor::Tensor4::from_sample(d.snapshot(0)));
        assert_eq!(out.net.forward(&x, false).shape(), (1, 4, 16, 16));
    }

    #[test]
    fn geometry_rejects_oversubscription() {
        // 16×16 over 64 ranks → 2×2 blocks; halo 2 needs blocks ≥ 2 — OK for
        // NeighborPad but InnerCrop needs > 4.
        let part = GridPartition::for_ranks(16, 16, 64);
        assert!(check_geometry(&part, &ArchSpec::tiny(), PaddingStrategy::InnerCrop).is_err());
        assert!(check_geometry(&part, &ArchSpec::tiny(), PaddingStrategy::NeighborPad).is_ok());
        // Paper arch (halo 8) cannot fit 2×2 blocks under NeighborPad.
        assert!(check_geometry(&part, &ArchSpec::paper(), PaddingStrategy::NeighborPad).is_err());
    }

    #[test]
    fn zero_epoch_outcome_reports_nan_mean_loss_without_panicking() {
        let d = data();
        let mut cfg = TrainConfig::quick_test();
        cfg.epochs = 0;
        let out = ParallelTrainer::new(ArchSpec::tiny(), PaddingStrategy::ZeroPad, cfg)
            .train(&d, 4)
            .unwrap();
        assert!(out.rank_results.iter().all(|r| r.epoch_losses.is_empty()));
        assert!(
            out.mean_final_loss().is_nan(),
            "0-epoch run must report NaN, not panic or fabricate a loss"
        );
    }

    #[test]
    fn empty_data_is_an_error() {
        let d = data();
        let t = ParallelTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::ZeroPad,
            TrainConfig::quick_test(),
        );
        assert_eq!(t.train_view(&d, 0, 2).unwrap_err(), TrainError::EmptyData);
    }

    #[test]
    fn optimizer_and_loss_labels() {
        assert_eq!(OptimizerKind::Adam.label(), "Adam");
        assert_eq!(LossKind::Mape { floor: 1e-3 }.label(), "MAPE");
    }
}
