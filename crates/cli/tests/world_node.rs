//! End-to-end multi-process test: `pdeml world-node --launch` must spin up
//! an N-rank world as N OS processes over localhost TCP, verify the
//! rollouts bitwise against the in-process channel transport, and exit 0.
//!
//! Kept deliberately small (2 ranks, 2 requests, 2 steps) — the container
//! CI runner has a single core and every rank trains its own quick fleet.

use std::process::Command;

fn pdeml() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pdeml"))
}

#[test]
fn launch_runs_two_process_world_and_verifies_bitwise() {
    let out = pdeml()
        .args([
            "world-node",
            "--launch",
            "--ranks",
            "2",
            "--requests",
            "2",
            "--steps",
            "2",
        ])
        .output()
        .expect("spawn pdeml");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "world-node --launch failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("bitwise-equal to the channel transport"),
        "missing verification line\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("traffic counters identical"),
        "missing traffic-counter verification\nstdout:\n{stdout}"
    );
}

#[test]
fn launch_verifies_under_seeded_faults_too() {
    // A seeded loss plan is evaluated above the transport, so the OS-process
    // TCP world must lose the same strips as the in-process channel oracle
    // and still verify counter-for-counter.
    let out = pdeml()
        .args([
            "world-node",
            "--launch",
            "--ranks",
            "2",
            "--requests",
            "2",
            "--steps",
            "2",
            "--halo-policy",
            "zero-fill",
            "--halo-timeout-ms",
            "150",
            "--fault",
            "loss:0.4:48879",
        ])
        .output()
        .expect("spawn pdeml");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "faulted world-node --launch failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("bitwise-equal to the channel transport"),
        "missing verification line\nstdout:\n{stdout}"
    );
}

#[test]
fn worker_mode_rejects_bad_rank_and_peer_specs() {
    let out = pdeml()
        .args([
            "world-node",
            "--rank",
            "5",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2",
        ])
        .output()
        .expect("spawn pdeml");
    assert!(!out.status.success(), "rank 5 of a 2-peer world must fail");

    let out = pdeml()
        .args(["world-node", "--rank", "0", "--peers", "127.0.0.1:1"])
        .output()
        .expect("spawn pdeml");
    assert!(!out.status.success(), "a 1-peer world is not a world");
}
