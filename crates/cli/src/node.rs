//! `pdeml world-node` — one rank of a multi-process TCP world, plus the
//! `--launch` orchestrator that spawns a whole world on localhost.
//!
//! The paper's scheme needs no weight movement: training is deterministic
//! and communication-free, so every process of a world trains the SAME
//! quick fleet from the same seed and ends up with bitwise-identical
//! weights — the only wire traffic is the inference-time halo exchange,
//! now over real sockets ([`pde_commsim::connect_tcp_world`]).
//!
//! Worker mode (`--rank R --peers a0,a1,…`) joins the rendezvous as rank
//! `R`, serves the lockstep request batch, and gathers its request-0
//! trajectory + traffic counters to rank 0. Rank 0 stitches the gathered
//! trajectories and verifies them **bitwise** against an in-process
//! channel-transport rollout of the identical fleet — the cross-process
//! equivalence check behind DESIGN.md §4h.
//!
//! `--launch` is the driver: it picks N loopback ports, spawns ranks 1..N
//! as child processes of the current executable, runs rank 0 in-process
//! (so `--metrics-addr` scrapes the driver), then re-measures the
//! channel-vs-TCP serve latency and the perfmodel projection for
//! EXPERIMENTS.md.
//!
//! `--trace-dir DIR` turns on cross-process tracing: every process records
//! its serving loop under a trace session and dumps a Chrome-trace *shard*
//! (`DIR/shard_rankR.json`, exported with `pid = R`) on exit; the launcher
//! then splices the shards into `DIR/merged_trace.json` — one Perfetto
//! timeline with a process group per rank.

use crate::args::Args;
use crate::commands::{
    fmt_ms, halo_policy_from_args, hold_and_stop_exporter, json_num, percentile,
};
use pde_commsim::{connect_tcp_world, record_recovery, CartComm, TrafficReport};
use pde_ml_core::prelude::*;
use pde_tensor::Tensor3;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exit code of a rank killed by `--kill-at` — distinguishable from a
/// genuine crash when the launcher reaps the corpse.
const KILL_EXIT: i32 = 86;

/// Recovery epochs a world may burn through before the driver gives up
/// (a rank that keeps dying points at a real bug, not chaos).
const MAX_RECOVERY_EPOCHS: u32 = 4;

/// Generation base of a recovery epoch: requests within the epoch run at
/// `epoch_base | (req + 1)`, so every rejoin jumps the whole world forward
/// and any frame stamped by a previous epoch is discarded on arrival.
/// Epoch 0 reproduces the pre-recovery generation numbers exactly, which
/// keeps healthy worlds bitwise-identical to older builds.
fn epoch_base(epoch: u32) -> u32 {
    epoch << 16
}

/// Dispatches `pdeml world-node`: `--launch` drives a whole world, rank
/// mode (`--rank`/`--peers`) serves one member of it.
pub fn world_node(args: &Args) -> Result<(), String> {
    if args.flag("launch") {
        launch(args)
    } else {
        worker(args)
    }
}

/// Deterministically trains the built-in quick fleet every process of the
/// world builds identically: paper dataset, tiny arch, neighbor-pad (so
/// rollouts actually exchange halos), fixed seed. Same binary + same
/// inputs ⇒ bitwise-identical weights in every process, no broadcast.
fn quick_fleet(
    n_ranks: usize,
    policy: HaloPolicy,
    fault: Option<&FaultPlan>,
) -> Result<(Tensor3, ParallelInference), String> {
    let data = pde_euler::dataset::paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::NeighborPad,
        TrainConfig::quick_test(),
    )
    .train_view(&data, 6, n_ranks)
    .map_err(|e| e.to_string())?;
    let mut inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome)
        .with_halo_policy(policy);
    if let Some(plan) = fault {
        inf = inf.with_fault_plan(plan.clone());
    }
    Ok((data.snapshot(0).clone(), inf))
}

/// Restores the fleet from a `pdeml train` checkpoint directory instead of
/// retraining. Every process of the world — including a *respawned*
/// replacement rank — restores from the same files, so a rejoin costs a
/// weight load, not a retrain; the initial state is regenerated
/// deterministically from the solver so all processes still agree bitwise.
fn restore_fleet(
    dir: &std::path::Path,
    n_ranks: usize,
    policy: HaloPolicy,
    fault: Option<&FaultPlan>,
) -> Result<(Tensor3, ParallelInference), String> {
    let (meta, inf) = crate::commands::load_fleet(dir)?;
    if meta.partition.rank_count() != n_ranks {
        return Err(format!(
            "--restore {}: checkpoint is partitioned over {} ranks but this world has \
             {n_ranks} — pass --ranks {}",
            dir.display(),
            meta.partition.rank_count(),
            meta.partition.rank_count()
        ));
    }
    if meta.window != 1 {
        return Err(format!(
            "--restore {}: world-node drives single-state requests but the checkpoint was \
             trained with a window of {} — retrain with --window 1",
            dir.display(),
            meta.window
        ));
    }
    let (gh, gw) = (meta.partition.global_h(), meta.partition.global_w());
    if gh != gw {
        return Err(format!(
            "--restore {}: checkpoint covers a {gh}x{gw} grid; world-node regenerates its \
             initial state from the square built-in solver and needs gh == gw",
            dir.display()
        ));
    }
    let initial = pde_euler::dataset::paper_dataset(gh, 2).snapshot(0).clone();
    let mut inf = inf.with_halo_policy(policy);
    if let Some(plan) = fault {
        inf = inf.with_fault_plan(plan.clone());
    }
    Ok((initial, inf))
}

/// The fleet every process of the world serves: `--restore DIR` loads a
/// checkpoint, otherwise the deterministic quick fleet is retrained.
fn fleet_from_args(
    args: &Args,
    n_ranks: usize,
    policy: HaloPolicy,
    fault: Option<&FaultPlan>,
) -> Result<(Tensor3, ParallelInference), String> {
    match args.get("restore") {
        Some(dir) => restore_fleet(std::path::Path::new(dir), n_ranks, policy, fault),
        None => quick_fleet(n_ranks, policy, fault),
    }
}

/// What rank 0 learns about one lockstep world run.
struct WorldRun {
    /// Stitched global states of request 0: `[initial, pred_1, …, pred_K]`.
    states: Vec<Tensor3>,
    /// Per-rank traffic deltas of request 0 (the snapshot window matches
    /// [`ParallelInference::rollout_from_history`]'s: reset + steps +
    /// quiesce, alignment barriers excluded).
    traffic: Vec<TrafficReport>,
    /// Per-request wall latency at rank 0 — the loop is lockstep, so rank
    /// 0's request time is the world's.
    latencies_ms: Vec<f64>,
}

fn traffic_to_f64(t: &TrafficReport) -> [f64; 6] {
    [
        t.msgs_sent as f64,
        t.bytes_sent as f64,
        t.msgs_received as f64,
        t.halos_lost as f64,
        t.halos_zero_filled as f64,
        t.halos_stale as f64,
    ]
}

fn traffic_from_f64(v: &[f64]) -> TrafficReport {
    TrafficReport {
        msgs_sent: v[0] as u64,
        bytes_sent: v[1] as u64,
        msgs_received: v[2] as u64,
        halos_lost: v[3] as u64,
        halos_zero_filled: v[4] as u64,
        halos_stale: v[5] as u64,
    }
}

/// Writes this process's Chrome-trace shard — every row under `pid ==
/// rank`, the convention [`pde_trace::merge_chrome_shards`] relies on.
fn write_trace_shard(
    dir: &std::path::Path,
    rank: usize,
    handle: pde_trace::TraceHandle,
) -> Result<std::path::PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create --trace-dir {}: {e}", dir.display()))?;
    let path = dir.join(format!("shard_rank{rank}.json"));
    let json = handle.finish().chrome_json_for_pid(rank as u64);
    std::fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

fn parse_peers(spec: &str) -> Result<Vec<SocketAddr>, String> {
    let peers: Vec<SocketAddr> = spec
        .split(',')
        .map(|a| {
            a.trim()
                .parse()
                .map_err(|_| format!("--peers: '{a}' is not HOST:PORT"))
        })
        .collect::<Result<_, String>>()?;
    if peers.len() < 2 {
        return Err("--peers needs at least two comma-separated addresses".into());
    }
    Ok(peers)
}

/// `--fault` with the strict-policy guard shared by serve-bench.
fn fault_from_args(args: &Args, policy: HaloPolicy) -> Result<Option<FaultPlan>, String> {
    match args.get("fault") {
        Some(spec) => {
            if policy == HaloPolicy::Strict {
                return Err(
                    "--fault with --halo-policy strict would hang on the first lost halo; \
                     pick zero-fill or last-known"
                        .into(),
                );
            }
            Ok(Some(FaultPlan::parse(spec)?))
        }
        None => Ok(None),
    }
}

/// Per-rank serving parameters shared by worker and launch modes.
struct ServeOpts {
    requests: usize,
    steps: usize,
    connect_timeout: Duration,
    record_live: bool,
    /// Run the membership protocol: a verdict round before every request,
    /// and on a dead-rank verdict rebuild the mesh under a fresh epoch and
    /// restart the batch.
    self_heal: bool,
    /// Die (exit [`KILL_EXIT`]) at the top of this request — the chaos
    /// injection a launcher schedules with `--kill-rank-at`.
    kill_at: Option<usize>,
    /// First epoch to rendezvous under (0 for original members; a
    /// respawned process is told the recovery epoch via `--epoch`).
    start_epoch: u32,
}

/// Respawns replacement `world-node --respawn` processes for the given dead
/// ranks, pointed at the fresh mesh addresses and the new epoch.
type RespawnFn<'a> = &'a mut dyn FnMut(&[usize], &[SocketAddr], u32) -> Result<(), String>;

/// Rank 0's process-respawning half of the recovery protocol — only the
/// launcher holds child handles, so only it can fork replacements.
struct HealDriver<'a> {
    respawn: RespawnFn<'a>,
    /// Surfaced through `/readyz`: true from dead-rank detection until the
    /// mesh is rebuilt.
    recovering: Option<Arc<AtomicBool>>,
}

/// Reserves `n` distinct loopback addresses by binding ephemeral listeners
/// and releasing them — the pre-fork rendezvous trick (the reuse race
/// window is negligible on localhost). Recovery needs *fresh* ports: the
/// old ones sit in TIME_WAIT and cannot be re-bound without SO_REUSEADDR.
fn reserve_loopback_ports(n: usize) -> Result<Vec<SocketAddr>, String> {
    (0..n)
        .map(|_| {
            std::net::TcpListener::bind("127.0.0.1:0")
                .and_then(|l| l.local_addr())
                .map_err(|e| format!("cannot reserve a loopback port: {e}"))
        })
        .collect()
}

/// One round of the membership protocol, run by every rank at the top of
/// every request when self-healing is on (the ezmpc synchronizer's
/// Start/Next/Abort epoch handshake is the reference shape):
///
/// 1. rank 0 inspects its transport's per-peer aliveness and broadcasts a
///    verdict — `[0]` (healthy) or `[1, n_dead, dead…, fresh ports…]`;
/// 2. on a heal verdict, rank 0 forks replacement processes (via the
///    [`HealDriver`]), then **every** rank drops its old mesh and
///    rendezvouses on the fresh addresses under the next epoch's
///    generation base (the respawned process dials with retry/backoff
///    until everyone is bound, and the rendezvous hello rejects any
///    process that disagrees on the epoch);
/// 3. rank 0 stamps `pdeml_rank_respawns_total{rank=…}` and the
///    `pdeml_recovery_ms` histogram with the detection-to-rebuilt gap.
///
/// Returns `Ok(true)` when the world was healed (the caller restarts its
/// batch so every request is ultimately served by a full-strength world),
/// `Ok(false)` when the verdict was healthy.
#[allow(clippy::too_many_arguments)]
fn membership_round(
    rank: usize,
    cart: &mut CartComm,
    epoch: &mut u32,
    part: &GridPartition,
    opts: &ServeOpts,
    fault: Option<&FaultPlan>,
    heal: &mut Option<HealDriver<'_>>,
) -> Result<bool, String> {
    let n = part.rank_count();
    let mut verdict = vec![0.0];
    let mut detect_t0 = None;
    if rank == 0 {
        let dead = cart.comm().dead_peers();
        if !dead.is_empty() {
            detect_t0 = Some(Instant::now());
            let fresh = reserve_loopback_ports(n)?;
            verdict = Vec::with_capacity(2 + dead.len() + n);
            verdict.push(1.0);
            verdict.push(dead.len() as f64);
            verdict.extend(dead.iter().map(|&r| r as f64));
            verdict.extend(fresh.iter().map(|a| f64::from(a.port())));
        }
    }
    // Root-to-all, so a dead non-root peer cannot break the broadcast
    // (writes to the dead are swallowed by the transport).
    let verdict = cart.comm_mut().broadcast(0, verdict);
    if verdict[0] == 0.0 {
        return Ok(false);
    }
    let n_dead = verdict[1] as usize;
    let dead: Vec<usize> = verdict[2..2 + n_dead].iter().map(|&v| v as usize).collect();
    let fresh: Vec<SocketAddr> = verdict[2 + n_dead..2 + n_dead + n]
        .iter()
        .map(|&p| SocketAddr::from(([127, 0, 0, 1], p as u16)))
        .collect();
    *epoch += 1;
    if *epoch > MAX_RECOVERY_EPOCHS {
        return Err(format!(
            "rank {rank}: giving up after {MAX_RECOVERY_EPOCHS} recovery epochs — \
             a rank that keeps dying is a bug, not chaos"
        ));
    }
    if rank == 0 {
        let driver = heal.as_mut().ok_or_else(|| {
            "dead ranks detected but this process cannot fork replacements — \
             self-healing worlds are driven by `world-node --launch --self-heal`"
                .to_string()
        })?;
        if let Some(flag) = &driver.recovering {
            flag.store(true, Ordering::Release);
        }
        (driver.respawn)(&dead, &fresh, *epoch)?;
    }
    let comm = connect_tcp_world(
        rank,
        &fresh,
        epoch_base(*epoch),
        opts.connect_timeout,
        fault,
    )
    .map_err(|e| {
        format!(
            "rank {rank}: epoch-{epoch} rendezvous failed: {e}",
            epoch = *epoch
        )
    })?;
    // Assigning tears down this rank's half of the old mesh (FIN per peer).
    *cart = CartComm::new(comm, part.py(), part.px(), false);
    if rank == 0 {
        record_recovery(
            &dead,
            detect_t0.expect("rank 0 timed its own detection").elapsed(),
        );
        if let Some(driver) = heal {
            if let Some(flag) = &driver.recovering {
                flag.store(false, Ordering::Release);
            }
        }
        println!(
            "self-heal: respawned rank(s) {dead:?} at epoch {epoch}; restarting the batch",
            epoch = *epoch
        );
    }
    Ok(true)
}

/// Joins the TCP world as `rank` and serves `requests` lockstep rollout
/// requests of `steps` steps each. Returns the gathered [`WorldRun`] on
/// rank 0, `None` elsewhere.
///
/// The request protocol mirrors the warm engine's: an alignment barrier,
/// a fresh monotonic generation, reset + steps, and (under a degrade
/// policy) a quiesce barrier — with the traffic snapshot window starting
/// *after* the alignment barrier so the per-request counters are
/// comparable 1:1 with an in-process rollout's. With `opts.self_heal` a
/// [`membership_round`] precedes every request; a healed world restarts
/// the batch from request 0, so the evidence rank 0 gathers at the end is
/// always from full-strength, bitwise-deterministic serves.
fn run_rank(
    rank: usize,
    peers: &[SocketAddr],
    inf: &ParallelInference,
    initial: &Tensor3,
    fault: Option<&FaultPlan>,
    opts: &ServeOpts,
    mut heal: Option<HealDriver<'_>>,
) -> Result<Option<WorldRun>, String> {
    let n = peers.len();
    if rank >= n {
        return Err(format!("--rank {rank} out of range for {n} peers"));
    }
    let part = *inf.partition();
    if part.rank_count() != n {
        return Err(format!(
            "fleet is partitioned over {} ranks but {n} peers were given",
            part.rank_count()
        ));
    }
    let window = inf.window();
    let history = [initial.clone()];
    inf.validate_history(&history).map_err(|e| e.to_string())?;
    let locals = inf.scatter_history(&history);
    let degrade = matches!(inf.halo_policy(), HaloPolicy::Degrade { .. }) && inf.input_halo() > 0;
    if opts.self_heal && !degrade {
        return Err(
            "--self-heal serves the kill-to-respawn gap with fallback halos, which needs \
             --halo-policy zero-fill or last-known (and a halo-exchanging fleet)"
                .into(),
        );
    }

    let mut epoch = opts.start_epoch;
    let comm = connect_tcp_world(rank, peers, epoch_base(epoch), opts.connect_timeout, fault)
        .map_err(|e| format!("rank {rank}: TCP rendezvous failed: {e}"))?;
    let mut cart = CartComm::new(comm, part.py(), part.px(), false);
    let mut st = inf.rank_state(rank);
    // Survivors keep serving through the kill-to-respawn gap: a dead
    // neighbor degrades to the fallback strip instead of aborting the rank
    // (the degraded serves are discarded when the healed batch restarts).
    st.set_survive_dead(opts.self_heal);

    // Pre-registered so the hot loop is lock-free (registration takes the
    // registry lock once per process).
    let live_requests = opts.record_live.then(|| {
        (
            pde_telemetry::counter(
                "pdeml_requests_total",
                "Rollout requests served by the warm engine",
            ),
            pde_telemetry::histogram(
                "pdeml_request_latency_us",
                "Warm rollout request latency in microseconds",
            ),
        )
    });

    let requests = opts.requests;
    let steps = opts.steps;
    let mut latencies_ms = Vec::with_capacity(requests);
    let mut req0_delta = TrafficReport::default();
    let mut req0_traj: Vec<Tensor3> = Vec::new();
    // A heal restarts the WHOLE batch: the degraded serves between the kill
    // and the detection are discarded, so every request in the evidence —
    // including the request-0 trajectory gathered below — was served by a
    // full-strength world and stays bitwise-deterministic.
    'batch: loop {
        latencies_ms.clear();
        let mut req = 0;
        while req < requests {
            if opts.kill_at == Some(req) {
                // Chaos: die at the top of this request, as abruptly as a
                // crashed process — the OS closing the sockets is the only
                // goodbye the survivors get.
                std::process::exit(KILL_EXIT);
            }
            if opts.self_heal
                && membership_round(rank, &mut cart, &mut epoch, &part, opts, fault, &mut heal)?
            {
                continue 'batch;
            }
            cart.comm_mut().barrier(); // alignment — outside the traffic window
            let before = cart.comm().stats().report();
            cart.comm_mut()
                .set_generation(epoch_base(epoch) | (req as u32 + 1));
            st.reset(&locals[rank]);
            let t0 = Instant::now();
            let mut produced = vec![st.latest().clone()];
            for step in 0..steps {
                produced.push(st.step(&mut cart, (step * window) as u32).clone());
            }
            if degrade {
                cart.comm_mut().barrier(); // quiesce, same as the in-process rollout
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            latencies_ms.push(ms);
            if let Some((reqs, lat)) = live_requests {
                reqs.inc(pde_telemetry::DRIVER);
                lat.record((ms * 1e3) as u64);
            }
            if req == 0 {
                req0_delta = cart.comm().stats().report().since(&before);
                req0_traj = produced;
            }
            req += 1;
        }
        // Post-batch verdict: a kill on the last request may be detected
        // only after its degraded serve — never gather over a fresh corpse.
        if opts.self_heal
            && membership_round(rank, &mut cart, &mut epoch, &part, opts, fault, &mut heal)?
        {
            continue 'batch;
        }
        break;
    }

    // Gather request-0 evidence at rank 0: flattened normalized trajectory
    // plus the traffic delta. Collectives are fault-exempt, so this works
    // under any injected plan.
    let flat: Vec<f64> = req0_traj
        .iter()
        .flat_map(|t| t.as_slice().iter().copied())
        .collect();
    let gathered_traj = cart.comm_mut().gather(0, &flat);
    let gathered_traffic = cart.comm_mut().gather(0, &traffic_to_f64(&req0_delta));
    let Some(trajs) = gathered_traj else {
        return Ok(None); // worker ranks are done; Drop sends the FIN
    };
    let reports = gathered_traffic.expect("root sees both gathers");

    let (c, _, _) = initial.shape();
    let mut histories: Vec<Vec<Tensor3>> = Vec::with_capacity(n);
    for (r, flat) in trajs.iter().enumerate() {
        let b = part.block_of_rank(r);
        let plane = c * b.h * b.w;
        if flat.len() != plane * (steps + 1) {
            return Err(format!(
                "rank {r} gathered {} values, expected {} ({} states of {c}x{}x{})",
                flat.len(),
                plane * (steps + 1),
                steps + 1,
                b.h,
                b.w
            ));
        }
        histories.push(
            (0..=steps)
                .map(|k| Tensor3::from_vec(c, b.h, b.w, flat[k * plane..(k + 1) * plane].to_vec()))
                .collect(),
        );
    }
    Ok(Some(WorldRun {
        states: inf.stitch_states(initial, &histories, steps),
        traffic: reports.iter().map(|v| traffic_from_f64(v)).collect(),
        latencies_ms,
    }))
}

/// Verifies a TCP world run against the in-process channel transport: the
/// same fleet rolled out over crossbeam channels must produce bitwise-
/// identical states AND identical per-rank traffic counters.
fn verify_against_channel(
    inf: &ParallelInference,
    initial: &Tensor3,
    steps: usize,
    run: &WorldRun,
) -> Result<(), String> {
    let reference = inf
        .rollout_from_history(std::slice::from_ref(initial), steps)
        .map_err(|e| e.to_string())?;
    if run.states.len() != reference.states.len() {
        return Err(format!(
            "TCP world produced {} states, channel reference {}",
            run.states.len(),
            reference.states.len()
        ));
    }
    for (k, (a, b)) in run.states.iter().zip(&reference.states).enumerate() {
        let identical = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        if !identical {
            return Err(format!(
                "step {k}: TCP world states diverge bitwise from the channel reference"
            ));
        }
    }
    if run.traffic != reference.traffic {
        return Err(format!(
            "per-rank traffic counters diverge:\n  tcp:     {:?}\n  channel: {:?}",
            run.traffic, reference.traffic
        ));
    }
    Ok(())
}

/// One member process of a world (`--rank R --peers …`).
///
/// Self-healing extras: `--self-heal` turns on the per-request membership
/// protocol, `--kill-at REQ` makes this rank die at the top of request REQ
/// (chaos injection, scheduled by the launcher), and `--respawn --epoch E`
/// marks a replacement process that rendezvouses under recovery epoch `E`
/// instead of 0.
fn worker(args: &Args) -> Result<(), String> {
    let rank: usize = args
        .require("rank")?
        .parse()
        .map_err(|_| "--rank: not a rank index".to_string())?;
    let peers = parse_peers(args.require("peers")?)?;
    let requests: usize = args.get_or("requests", 8)?;
    let steps: usize = args.get_or("steps", 2)?;
    let policy = halo_policy_from_args(args)?;
    let fault_plan = fault_from_args(args, policy)?;
    let connect_ms: u64 = args.get_or("connect-timeout-ms", 30_000)?;
    let respawn = args.flag("respawn");
    let start_epoch: u32 = args.get_or("epoch", 0)?;
    if respawn && start_epoch == 0 {
        return Err("--respawn needs the recovery --epoch the world healed into".into());
    }
    let kill_at = match args.get("kill-at") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| "--kill-at: not a request index".to_string())?,
        ),
        None => None,
    };
    let opts = ServeOpts {
        requests,
        steps,
        connect_timeout: Duration::from_millis(connect_ms),
        record_live: false,
        self_heal: args.flag("self-heal"),
        kill_at,
        start_epoch,
    };

    let (initial, inf) = fleet_from_args(args, peers.len(), policy, fault_plan.as_ref())?;
    // The session starts *after* fleet setup so the shard holds only the
    // serving loop (training would record under the training world's rank
    // labels, which are meaningless in the merged timeline).
    let trace = args.get("trace-dir").map(|dir| {
        let handle = pde_trace::begin();
        pde_trace::set_thread_rank(rank as u32);
        (std::path::PathBuf::from(dir), handle)
    });
    let run = run_rank(
        rank,
        &peers,
        &inf,
        &initial,
        fault_plan.as_ref(),
        &opts,
        None,
    )?;
    if let Some((dir, handle)) = trace {
        pde_trace::set_thread_rank(pde_trace::DRIVER_RANK);
        let path = write_trace_shard(&dir, rank, handle)?;
        println!(
            "world-node rank {rank}: wrote trace shard {}",
            path.display()
        );
    }
    match run {
        None => {
            println!("world-node rank {rank}: served {requests} lockstep requests x {steps} steps");
            Ok(())
        }
        Some(run) => {
            verify_against_channel(&inf, &initial, steps, &run)?;
            println!(
                "world-node rank 0: {} ranks over TCP — rollouts bitwise-equal to the channel \
                 transport, per-rank traffic counters identical",
                peers.len()
            );
            Ok(())
        }
    }
}

/// The orchestrator: N-rank world as N OS processes on localhost.
fn launch(args: &Args) -> Result<(), String> {
    use pde_telemetry::health::HealthModel;
    use std::sync::Arc;

    let n: usize = args.get_or("ranks", 4)?;
    if n < 2 {
        return Err("--launch needs --ranks >= 2 (one process per rank)".into());
    }
    let requests: usize = args.get_or("requests", 8)?;
    let steps: usize = args.get_or("steps", 2)?;
    let policy = halo_policy_from_args(args)?;
    let fault_plan = fault_from_args(args, policy)?;
    let connect_ms: u64 = args.get_or("connect-timeout-ms", 30_000)?;
    let hold_ms: u64 = args.get_or("hold-ms", 0)?;
    let self_heal = args.flag("self-heal");

    // `--kill-rank-at RANK:REQ` — chaos: child RANK exits abruptly at the
    // top of request REQ; the membership protocol must detect, respawn and
    // re-serve. Rank 0 is the in-process driver, so only 1..n are fair game.
    let kill_rank_at: Option<(usize, usize)> = match args.get("kill-rank-at") {
        Some(spec) => {
            let (r, q) = spec
                .split_once(':')
                .ok_or_else(|| format!("--kill-rank-at '{spec}' is not RANK:REQUEST"))?;
            let rank: usize = r
                .trim()
                .parse()
                .map_err(|_| format!("--kill-rank-at rank '{r}' is not a rank index"))?;
            let req: usize = q
                .trim()
                .parse()
                .map_err(|_| format!("--kill-rank-at request '{q}' is not a request index"))?;
            if !self_heal {
                return Err(
                    "--kill-rank-at kills a rank mid-batch, which only ends well with \
                     --self-heal (otherwise the survivors hang or abort)"
                        .into(),
                );
            }
            if rank == 0 || rank >= n {
                return Err(format!(
                    "--kill-rank-at rank {rank} must be a child rank (1..={})",
                    n - 1
                ));
            }
            if req >= requests {
                return Err(format!(
                    "--kill-rank-at request {req} never happens (only {requests} requests)"
                ));
            }
            Some((rank, req))
        }
        None => None,
    };

    // The smoke-scrape contract: both series exist (at zero) from the
    // moment the exporter is up, even before the first request lands.
    let panic_counter = pde_telemetry::counter(
        "pdeml_rank_panics_total",
        "Rank jobs that panicked (world poisons), per rank",
    );
    pde_telemetry::counter(
        "pdeml_requests_total",
        "Rollout requests served by the warm engine",
    );
    // Self-heal observability: the respawn/recovery series exist (at zero)
    // from the first scrape, and `/readyz` dips to degraded while a
    // replacement rank is being brought up.
    let recovering = Arc::new(AtomicBool::new(false));
    let health = Arc::new(HealthModel::new());
    if self_heal {
        pde_telemetry::counter(
            "pdeml_rank_respawns_total",
            "Dead ranks brought back by a supervisor, per rank",
        );
        pde_telemetry::histogram(
            "pdeml_recovery_ms",
            "Wall-clock milliseconds from dead-rank detection to a rebuilt world",
        );
        let flag = recovering.clone();
        health.register("membership", move || {
            if flag.load(Ordering::Acquire) {
                pde_telemetry::health::CheckStatus::Degraded("respawning dead ranks".into())
            } else {
                pde_telemetry::health::CheckStatus::Ok
            }
        });
    }
    let mut exporter = match args.get("metrics-addr") {
        Some(addr) => {
            let e = pde_telemetry::exporter::serve(addr, health.clone())
                .map_err(|err| format!("cannot serve metrics on {addr}: {err}"))?;
            println!(
                "metrics: http://{}/metrics (also /healthz, /readyz)",
                e.local_addr()
            );
            Some(e)
        }
        None => None,
    };

    // Pick N free loopback ports by binding ephemeral listeners, recording
    // the assigned addresses and releasing them — the usual pre-fork
    // rendezvous trick (the reuse race window is negligible on localhost).
    let addrs = reserve_loopback_ports(n)?;

    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the pdeml binary: {e}"))?;
    // One spawner for initial members AND respawned replacements — the only
    // differences are the peer list, the `--respawn --epoch E` marker, and
    // that a replacement never inherits a `--kill-at` (it must live).
    let spawn_rank = |rank: usize,
                      peer_addrs: &[SocketAddr],
                      epoch: Option<u32>,
                      kill: Option<usize>|
     -> Result<std::process::Child, String> {
        let peers: String = peer_addrs
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("world-node")
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--peers")
            .arg(peers)
            .arg("--requests")
            .arg(requests.to_string())
            .arg("--steps")
            .arg(steps.to_string())
            .arg("--connect-timeout-ms")
            .arg(connect_ms.to_string());
        // --restore forwards to every child, *including respawned
        // replacements*: a rejoining rank loads the checkpoint instead of
        // retraining the fleet from seed, shrinking the recovery window.
        for flag in [
            "halo-policy",
            "halo-timeout-ms",
            "fault",
            "restore",
            "trace-dir",
        ] {
            if let Some(v) = args.get(flag) {
                cmd.arg(format!("--{flag}")).arg(v);
            }
        }
        if self_heal {
            cmd.arg("--self-heal");
        }
        if let Some(e) = epoch {
            cmd.arg("--respawn").arg("--epoch").arg(e.to_string());
        }
        if let Some(req) = kill {
            cmd.arg("--kill-at").arg(req.to_string());
        }
        cmd.spawn()
            .map_err(|e| format!("cannot spawn rank {rank}: {e}"))
    };

    // RefCell: the respawn callback (running inside rank 0's request loop)
    // swaps replacement children into the same table the final reap reads.
    let children: std::cell::RefCell<Vec<(usize, std::process::Child)>> =
        std::cell::RefCell::new(Vec::with_capacity(n - 1));
    for rank in 1..n {
        let kill = kill_rank_at.and_then(|(r, req)| (r == rank).then_some(req));
        children
            .borrow_mut()
            .push((rank, spawn_rank(rank, &addrs, None, kill)?));
    }
    println!(
        "world-node: ranks 1..{n} launched as OS processes, rank 0 in-process; \
         {requests} requests x {steps} steps over localhost TCP"
    );

    let (initial, inf) = fleet_from_args(args, n, policy, fault_plan.as_ref())?;
    if self_heal {
        if let Some(dir) = args.get("restore") {
            println!("self-heal: respawned ranks restore weights from {dir} (no retrain)");
        }
    }
    // Rank 0's respawn half of the membership protocol: reap each corpse
    // (an exit of KILL_EXIT is scheduled chaos; anything else is reported
    // but still healed), fork the replacement into the fresh mesh, and
    // swap it into the child table so the final reap judges the survivor.
    let mut respawn_cb = |dead: &[usize], fresh: &[SocketAddr], epoch: u32| -> Result<(), String> {
        let mut table = children.borrow_mut();
        for &d in dead {
            let slot = table
                .iter_mut()
                .find(|(r, _)| *r == d)
                .ok_or_else(|| format!("dead rank {d} is not one of my children"))?;
            match slot.1.wait() {
                Ok(status) if status.code() == Some(KILL_EXIT) => {
                    println!("self-heal: rank {d} died on schedule (chaos kill), respawning");
                }
                Ok(status) => println!("self-heal: rank {d} died with {status}, respawning"),
                Err(e) => println!("self-heal: rank {d} corpse unreapable ({e}), respawning"),
            }
            slot.1 = spawn_rank(d, fresh, Some(epoch), None)?;
        }
        Ok(())
    };
    let heal = self_heal.then(|| HealDriver {
        respawn: &mut respawn_cb,
        recovering: Some(recovering.clone()),
    });
    let opts = ServeOpts {
        requests,
        steps,
        connect_timeout: Duration::from_millis(connect_ms),
        record_live: true,
        self_heal,
        kill_at: None,
        start_epoch: 0,
    };
    // Rank 0's shard session — started here (post-training) so it covers
    // exactly the serving loop, like every child's.
    let trace = args.get("trace-dir").map(|dir| {
        let handle = pde_trace::begin();
        pde_trace::set_thread_rank(0);
        (std::path::PathBuf::from(dir), handle)
    });
    let run = run_rank(0, &addrs, &inf, &initial, fault_plan.as_ref(), &opts, heal);
    // Reap the children before judging the run: their exit codes are part
    // of the verdict, and a failed rendezvous must not leave orphans.
    let mut child_failures = Vec::new();
    for (rank, mut child) in children.into_inner() {
        if run.is_err() {
            let _ = child.kill();
        }
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => child_failures.push(format!("rank {rank} exited with {status}")),
            Err(e) => child_failures.push(format!("rank {rank}: wait failed: {e}")),
        }
    }
    // Merge point: the children have exited (their shards are on disk) and
    // rank 0's session must end *before* the channel-reference rollouts
    // below, whose worker threads would otherwise record into this shard.
    if let Some((dir, handle)) = trace {
        pde_trace::set_thread_rank(pde_trace::DRIVER_RANK);
        write_trace_shard(&dir, 0, handle)?;
        let mut shards = Vec::with_capacity(n);
        let mut found = 0usize;
        for rank in 0..n {
            let path = dir.join(format!("shard_rank{rank}.json"));
            match std::fs::read_to_string(&path) {
                Ok(s) => {
                    shards.push(s);
                    found += 1;
                }
                // A chaos-killed rank dies before its dump; the merge
                // carries on with whoever made it to disk.
                Err(_) => println!("trace: no shard from rank {rank} ({})", path.display()),
            }
        }
        let merged_path = dir.join("merged_trace.json");
        std::fs::write(&merged_path, pde_trace::merge_chrome_shards(&shards))
            .map_err(|e| format!("cannot write {}: {e}", merged_path.display()))?;
        println!(
            "trace: merged {found}/{n} shard(s) into {} (open in ui.perfetto.dev)",
            merged_path.display()
        );
    }
    let run = run?.expect("rank 0 gathers the world run");
    if !child_failures.is_empty() {
        panic_counter.inc(pde_telemetry::DRIVER);
        hold_and_stop_exporter(&mut exporter, hold_ms);
        return Err(format!(
            "world-node children failed: {}",
            child_failures.join("; ")
        ));
    }
    verify_against_channel(&inf, &initial, steps, &run)?;
    println!(
        "verify: rollouts bitwise-equal to the channel transport, per-rank traffic \
         counters identical"
    );

    // Channel comparison: the same fleet behind the warm in-process engine,
    // one unmeasured warm-up to pay residency costs.
    let mut engine_cfg = EngineConfig::new(n);
    if let Some(plan) = fault_plan.clone() {
        engine_cfg = engine_cfg.with_fault_plan(plan);
    }
    let mut engine = InferEngine::with_config(engine_cfg);
    engine
        .register("serve", inf.clone())
        .expect("register serve model");
    engine
        .rollout("serve", &initial, steps)
        .map_err(|e| format!("channel warm-up failed: {e}"))?;
    let mut channel_ms = Vec::with_capacity(requests);
    let channel_t0 = Instant::now();
    for _ in 0..requests {
        let t = Instant::now();
        engine
            .rollout("serve", &initial, steps)
            .map_err(|e| format!("channel request failed: {e}"))?;
        channel_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let channel_s = channel_t0.elapsed().as_secs_f64();

    // Perfmodel projection: per-step halo exchange on the modeled cluster
    // network (x strips are h×halo×c values each way, y strips span the
    // padded width), times `steps` exchanges per request.
    let part = *inf.partition();
    let halo = inf.input_halo();
    let block = part.block_of_rank(0);
    let (c, _, _) = initial.shape();
    let x_bytes = c * block.h * halo * 8;
    let y_bytes = c * (block.w + 2 * halo) * halo * 8;
    let projected_ms = pde_perfmodel::NetworkModel::cluster_default()
        .halo_exchange(x_bytes, y_bytes)
        * steps as f64
        * 1e3;

    let mut tcp_ms = run.latencies_ms.clone();
    tcp_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    channel_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let tcp_s: f64 = run.latencies_ms.iter().sum::<f64>() / 1e3;
    let tcp_rps = requests as f64 / tcp_s.max(1e-12);
    let channel_rps = requests as f64 / channel_s.max(1e-12);
    println!(
        "tcp ({n} processes): {tcp_rps:.1} req/s, p50 {} ms, p99 {} ms",
        fmt_ms(percentile(&tcp_ms, 50.0)),
        fmt_ms(percentile(&tcp_ms, 99.0)),
    );
    println!(
        "channel (warm engine, in-process): {channel_rps:.1} req/s, p50 {} ms, p99 {} ms",
        fmt_ms(percentile(&channel_ms, 50.0)),
        fmt_ms(percentile(&channel_ms, 99.0)),
    );
    println!(
        "perfmodel: projected halo traffic {projected_ms:.4} ms/request on the modeled \
         cluster network ({steps} exchanges)"
    );

    if let Some(out) = args.get("out") {
        let json = format!(
            "{{\n  \"world\": {{ \"ranks\": {n}, \"requests\": {requests}, \"steps\": {steps}, \
             \"grid_h\": {}, \"grid_w\": {} }},\n  \
             \"bitwise_match_vs_channel\": true,\n  \
             \"traffic_counters_equal\": true,\n  \
             \"tcp_multiprocess\": {{ \"requests_per_sec\": {tcp_rps:.2}, \"p50_ms\": {}, \
             \"p99_ms\": {} }},\n  \
             \"channel_warm\": {{ \"requests_per_sec\": {channel_rps:.2}, \"p50_ms\": {}, \
             \"p99_ms\": {} }},\n  \
             \"perfmodel_projected_comm_ms_per_request\": {projected_ms:.4}\n}}\n",
            part.global_h(),
            part.global_w(),
            json_num(percentile(&tcp_ms, 50.0)),
            json_num(percentile(&tcp_ms, 99.0)),
            json_num(percentile(&channel_ms, 50.0)),
            json_num(percentile(&channel_ms, 99.0)),
        );
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }
    hold_and_stop_exporter(&mut exporter, hold_ms);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_parse_and_reject_garbage() {
        let peers = parse_peers("127.0.0.1:4000, 127.0.0.1:4001").unwrap();
        assert_eq!(peers.len(), 2);
        assert!(
            parse_peers("127.0.0.1:4000").is_err(),
            "one peer is no world"
        );
        assert!(parse_peers("localhost:nope,127.0.0.1:1").is_err());
    }

    #[test]
    fn traffic_report_round_trips_through_f64() {
        let t = TrafficReport {
            msgs_sent: 12,
            bytes_sent: 4096,
            msgs_received: 11,
            halos_lost: 3,
            halos_zero_filled: 2,
            halos_stale: 1,
        };
        assert_eq!(traffic_from_f64(&traffic_to_f64(&t)), t);
    }
}
