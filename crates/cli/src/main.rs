//! `pdeml` — command-line driver for the pde-ml workspace.
//!
//! ```text
//! pdeml simulate --grid 64 --snapshots 120 --out run.pdeds
//! pdeml train    --data run.pdeds --ranks 4 --epochs 20 --out model/
//! pdeml infer    --data run.pdeds --model model/ --steps 10 --out rollout.csv
//! pdeml serve-bench --quick --requests 32
//! pdeml scale    --grid 128
//! pdeml info
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency tree at zero beyond the workspace crates.

mod args;
mod commands;
mod meta;
mod node;
mod serve;

use std::process::ExitCode;

const USAGE: &str = "\
pdeml — parallel ML of PDEs (reproduction of Totounferoush et al., PDSEC 2021)

USAGE:
  pdeml simulate --grid N --snapshots S --out FILE
                 [--boundary outflow|periodic|reflective|absorbing]
  pdeml train    --data FILE --out DIR
                 [--ranks P] [--epochs E] [--train-pairs N]
                 [--strategy neighbor-pad|zero-pad|inner-crop|deconv]
                 [--mode absolute|residual] [--window W] [--seed S] [--lr LR]
                 [--threads-per-rank T] [--quick] [--trace OUT.json]
  pdeml infer    --data FILE --model DIR [--steps K] [--start IDX] [--out CSV]
                 [--halo-policy strict|zero-fill|last-known] [--halo-timeout-ms N]
                 [--fault drop:SRC-DST|loss:RATE:SEED|delay:SRC-DST:MS]
                 [--trace OUT.json]
  pdeml serve-bench [--quick | --data FILE --model DIR] [--requests N] [--steps K]
                 [--transport channel|tcp]
                 [--halo-policy strict|zero-fill|last-known] [--halo-timeout-ms N]
                 [--fault drop:SRC-DST|loss:RATE:SEED|delay:SRC-DST:MS]
                 [--self-heal] [--kill-rank-at RANK:REQUEST[:STEP]]
                 [--metrics-addr HOST:PORT] [--slo-ms N] [--flight-dir DIR]
                 [--hold-ms N] [--threads-per-rank T] [--trace OUT.json]
                 [--out BENCH.json]
  pdeml serve    [--quick | --data FILE --model DIR] [--addr HOST:PORT]
                 [--sub-worlds N] [--queue-depth N] [--max-models N]
                 [--slo-ms N] [--transport channel|tcp] [--ranks-per-world R]
                 [--access-log PATH] [--access-log-sample N] [--trace-out PATH]
  pdeml serve --saturation [--quick | --data FILE --model DIR]
                 [--sub-worlds-list 1,2,4] [--requests N] [--steps K]
                 [--queue-depth N] [--transport channel|tcp] [--out BENCH.json]
  pdeml world-node --launch [--ranks N] [--requests N] [--steps K]
                 [--halo-policy strict|zero-fill|last-known] [--halo-timeout-ms N]
                 [--fault drop:SRC-DST|loss:RATE:SEED|delay:SRC-DST:MS]
                 [--self-heal] [--kill-rank-at RANK:REQUEST] [--restore DIR]
                 [--metrics-addr HOST:PORT] [--hold-ms N] [--out BENCH.json]
                 [--connect-timeout-ms N] [--trace-dir DIR]
  pdeml world-node --rank R --peers HOST:PORT,HOST:PORT,…
                 [--requests N] [--steps K] [--halo-policy …] [--fault …]
                 [--self-heal] [--kill-at REQUEST] [--respawn --epoch E]
  pdeml scale    [--grid N] [--epochs E] [--cores C]
  pdeml info

`--quick` trains the tiny test net on a built-in dataset (no --data/--out).
`serve` is the HTTP inference front end: it splits one world into
`--sub-worlds` independent sub-worlds behind a bounded request queue with
SLO-aware admission control (shed requests get 429/503, and count on
pdeml_requests_rejected_total{reason=}). POST /v1/rollout serves a window
of states; GET /v1/example prints a ready-to-POST body. Every rollout
response echoes X-PDEML-Request-Id and a Server-Timing phase split
(queue/dispatch/rollout); `--access-log PATH` appends one JSON line per
sampled request and `--trace-out PATH` writes a request-id-tagged Chrome
trace on shutdown. `serve --saturation` sweeps offered load vs p99.9,
queue-wait p50/p99 and rejection rate across sub-world counts.
`world-node --launch` runs an N-rank world as N OS processes over localhost
TCP (rank 0 stays in the driver process), verifies the rollouts bitwise
against the in-process channel transport, and reports channel-vs-TCP serve
latency next to the perfmodel projection; `--trace-dir DIR` makes every
process dump a Chrome-trace shard and the launcher merge them into
DIR/merged_trace.json, one timeline with a process group per rank.
`serve-bench --transport tcp` keeps every rank in-process but moves all
messages over loopback sockets.
`--trace OUT.json` records a per-rank timeline (Chrome trace format; open in
Perfetto or chrome://tracing) and prints a per-rank metrics table.
`--metrics-addr` serves live Prometheus metrics plus /healthz and /readyz
while serve-bench runs; `--hold-ms` keeps the endpoint up after the run so a
scraper can catch it. `--flight-dir` arms the flight recorder: on a request
over `--slo-ms` (or a rank panic) a Chrome-trace + metrics dump is written
there. `--self-heal` makes worlds survive a dead rank: the supervisor (or, in
multi-process mode, the launcher) detects it, respawns the rank, rebuilds the
mesh under a fresh generation epoch and re-serves the batch — `--kill-rank-at`
injects exactly that failure deterministically (needs a degrade halo policy).
`world-node --restore DIR` loads the fleet from a `pdeml train` checkpoint
directory instead of retraining it — respawned replacement ranks restore
from the same files, shrinking the recovery window to a weight load.
`--flight-dir` and `--trace` are mutually exclusive. `--threads-per-rank`
caps each rank's kernel worker pool (default: cores / ranks; see also the
PDEML_THREADS_PER_RANK and PDEML_KERNEL=scalar|simd environment variables).

Run `pdeml <command>` with no flags to see that command's defaults.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let parsed = match args::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("argument error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "simulate" => commands::simulate(&parsed),
        "train" => commands::train(&parsed),
        "infer" => commands::infer(&parsed),
        "serve-bench" => commands::serve_bench(&parsed),
        "serve" => serve::serve(&parsed),
        "world-node" => node::world_node(&parsed),
        "scale" => commands::scale(&parsed),
        "info" => commands::info(),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
