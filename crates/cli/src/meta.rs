//! The model-directory metadata file (`meta.txt`): everything inference
//! needs to reconstruct the trained fleet — architecture, strategy,
//! prediction mode, window, partition and normalization scales — as plain
//! `key = value` lines.

use pde_domain::GridPartition;
use pde_ml_core::arch::ArchSpec;
use pde_ml_core::norm::ChannelNorm;
use pde_ml_core::padding::PaddingStrategy;
use pde_ml_core::train::PredictionMode;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Everything needed to rebuild a trained fleet.
pub struct ModelMeta {
    /// Architecture.
    pub arch: ArchSpec,
    /// Padding strategy.
    pub strategy: PaddingStrategy,
    /// Prediction mode.
    pub prediction: PredictionMode,
    /// Input time-window width.
    pub window: usize,
    /// The training partition (global dims + process grid).
    pub partition: GridPartition,
    /// Channel normalization.
    pub norm: ChannelNorm,
}

impl ModelMeta {
    /// Renders to the `meta.txt` format.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "format = pdeml-meta-v1");
        let _ = writeln!(
            s,
            "channels = {}",
            self.arch
                .channels
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = writeln!(s, "kernel = {}", self.arch.kernel);
        let _ = writeln!(s, "leak = {}", self.arch.leak);
        let _ = writeln!(s, "strategy = {}", self.strategy.label());
        let _ = writeln!(s, "prediction = {}", self.prediction.label());
        let _ = writeln!(s, "window = {}", self.window);
        let _ = writeln!(s, "global_h = {}", self.partition.global_h());
        let _ = writeln!(s, "global_w = {}", self.partition.global_w());
        let _ = writeln!(s, "py = {}", self.partition.py());
        let _ = writeln!(s, "px = {}", self.partition.px());
        let _ = writeln!(
            s,
            "norm_scales = {}",
            self.norm
                .scales()
                .iter()
                .map(|v| format!("{v:.17e}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        s
    }

    /// Parses the `meta.txt` format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut kv = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("meta line {} is not 'key = value'", lineno + 1))?;
            kv.insert(k.trim().to_string(), v.trim().to_string());
        }
        let get = |k: &str| kv.get(k).ok_or_else(|| format!("meta missing '{k}'"));
        if get("format")? != "pdeml-meta-v1" {
            return Err("unsupported meta format".into());
        }
        let parse_usize = |k: &str| -> Result<usize, String> {
            get(k)?
                .parse()
                .map_err(|_| format!("meta '{k}' is not an integer"))
        };
        let channels: Vec<usize> = get("channels")?
            .split(',')
            .map(|c| c.trim().parse().map_err(|_| "bad channel list".to_string()))
            .collect::<Result<_, _>>()?;
        let arch = ArchSpec {
            channels,
            kernel: parse_usize("kernel")?,
            leak: get("leak")?.parse().map_err(|_| "bad leak".to_string())?,
        };
        let strategy = match get("strategy")?.as_str() {
            "zero-pad" => PaddingStrategy::ZeroPad,
            "neighbor-pad" => PaddingStrategy::NeighborPad,
            "inner-crop" => PaddingStrategy::InnerCrop,
            "deconv" => PaddingStrategy::Deconv,
            other => return Err(format!("unknown strategy '{other}'")),
        };
        let prediction = match get("prediction")?.as_str() {
            "absolute" => PredictionMode::Absolute,
            "residual" => PredictionMode::Residual,
            other => return Err(format!("unknown prediction mode '{other}'")),
        };
        let norm_scales: Vec<f64> = get("norm_scales")?
            .split(',')
            .map(|v| v.trim().parse().map_err(|_| "bad norm scale".to_string()))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            arch,
            strategy,
            prediction,
            window: parse_usize("window")?,
            partition: GridPartition::new(
                parse_usize("global_h")?,
                parse_usize("global_w")?,
                parse_usize("py")?,
                parse_usize("px")?,
            ),
            norm: ChannelNorm::from_scales(norm_scales),
        })
    }

    /// Writes `meta.txt` into the model directory.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("meta.txt"), self.render())
    }

    /// Loads `meta.txt` from the model directory.
    pub fn load(dir: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(dir.join("meta.txt"))
            .map_err(|e| format!("cannot read {}: {e}", dir.join("meta.txt").display()))?;
        Self::parse(&text)
    }
}

/// Strategy from a CLI label.
pub fn strategy_from_str(s: &str) -> Result<PaddingStrategy, String> {
    PaddingStrategy::ALL
        .into_iter()
        .find(|p| p.label() == s)
        .ok_or_else(|| format!("unknown strategy '{s}' (zero-pad|neighbor-pad|inner-crop|deconv)"))
}

/// Prediction mode from a CLI label.
pub fn mode_from_str(s: &str) -> Result<PredictionMode, String> {
    match s {
        "absolute" => Ok(PredictionMode::Absolute),
        "residual" => Ok(PredictionMode::Residual),
        _ => Err(format!("unknown mode '{s}' (absolute|residual)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelMeta {
        ModelMeta {
            arch: ArchSpec::paper(),
            strategy: PaddingStrategy::NeighborPad,
            prediction: PredictionMode::Residual,
            window: 2,
            partition: GridPartition::new(64, 64, 2, 2),
            norm: ChannelNorm::from_scales(vec![0.5, 1e-6, 3.2e-4, 3.3e-4]),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let m = sample();
        let back = ModelMeta::parse(&m.render()).unwrap();
        assert_eq!(back.arch, m.arch);
        assert_eq!(back.strategy, m.strategy);
        assert_eq!(back.prediction, m.prediction);
        assert_eq!(back.window, 2);
        assert_eq!(back.partition, m.partition);
        for (a, b) in back.norm.scales().iter().zip(m.norm.scales()) {
            assert_eq!(a, b, "scales must survive exactly (17 sig digits)");
        }
    }

    #[test]
    fn parse_rejects_missing_keys_and_bad_values() {
        assert!(ModelMeta::parse("format = pdeml-meta-v1").is_err());
        let broken = sample().render().replace("kernel = 5", "kernel = five");
        assert!(ModelMeta::parse(&broken).is_err());
        assert!(ModelMeta::parse("format = other-v9").is_err());
    }

    #[test]
    fn label_parsers() {
        assert_eq!(
            strategy_from_str("deconv").unwrap(),
            PaddingStrategy::Deconv
        );
        assert!(strategy_from_str("bogus").is_err());
        assert_eq!(mode_from_str("residual").unwrap(), PredictionMode::Residual);
        assert!(mode_from_str("bogus").is_err());
    }
}
