//! The `pdeml` subcommand implementations.

use crate::args::Args;
use crate::meta::{mode_from_str, strategy_from_str, ModelMeta};
use pde_euler::dataset::{DataSet, SnapshotRecorder};
use pde_euler::{Boundary, InitialCondition, SolverConfig};
use pde_ml_core::arch::ArchSpec;
use pde_ml_core::metrics::{field_errors, format_error_table, rollout_error_curve};
use pde_ml_core::prelude::*;
use pde_ml_core::report::Csv;
use pde_nn::serialize::{load_params, restore, save_params, snapshot};
use pde_perfmodel::scaling::format_scaling_table;
use pde_perfmodel::{strong_scaling, weak_scaling, CostModel};
use std::path::{Path, PathBuf};

/// Finishes a `--trace` session: writes the Chrome-trace JSON (openable in
/// Perfetto / `chrome://tracing`) and prints the per-rank metrics table.
fn write_trace(
    trace: &pde_trace::Trace,
    rows: &[pde_trace::RankMetrics],
    path: &Path,
) -> Result<(), String> {
    std::fs::write(path, trace.chrome_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "trace: {} events over {} rank tracks ({} dropped to ring overflow) -> {}",
        trace.events.len(),
        trace.ranks().len(),
        trace.total_dropped(),
        path.display()
    );
    print!("{}", pde_trace::metrics::format_table(rows));
    Ok(())
}

/// `pdeml simulate` — run the linearized-Euler solver and persist the
/// snapshots.
pub fn simulate(args: &Args) -> Result<(), String> {
    let grid: usize = args.get_or("grid", 64)?;
    let snapshots: usize = args.get_or("snapshots", 120)?;
    let out = PathBuf::from(args.require("out")?);
    let boundary = match args.get("boundary").unwrap_or("outflow") {
        "outflow" => Boundary::Outflow,
        "periodic" => Boundary::Periodic,
        "reflective" => Boundary::Reflective,
        "absorbing" => Boundary::Absorbing,
        other => return Err(format!("unknown boundary '{other}'")),
    };
    println!("simulating {grid}x{grid} linearized Euler, {snapshots} snapshots, {boundary:?} BCs…");
    let cfg = SolverConfig::paper(grid, grid);
    let data =
        SnapshotRecorder::new(cfg, boundary, &InitialCondition::paper_pulse(), 1).record(snapshots);
    data.save(&out)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} snapshots, dt = {:.3e} s, {} bytes)",
        out.display(),
        data.len(),
        data.dt(),
        std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0)
    );
    Ok(())
}

/// `pdeml train` — domain-decomposed parallel training, checkpointed to a
/// model directory.
///
/// `--quick` trains the tiny test architecture on a built-in in-memory
/// dataset (no `--data`/`--out` needed) — a self-contained smoke run, used
/// by CI together with `--trace`.
pub fn train(args: &Args) -> Result<(), String> {
    let quick = args.flag("quick");
    let trace_path = args.get("trace").map(PathBuf::from);
    let out_dir = if quick {
        args.get("out").map(PathBuf::from)
    } else {
        Some(PathBuf::from(args.require("out")?))
    };
    let window: usize = args.get_or("window", 1)?;
    let strategy = strategy_from_str(args.get("strategy").unwrap_or("neighbor-pad"))?;

    let (data, arch, mut cfg, source) = if quick {
        let data = pde_euler::dataset::paper_dataset(16, 8);
        (
            data,
            ArchSpec::tiny(),
            TrainConfig::quick_test(),
            "built-in 16x16 paper pulse (--quick)".to_string(),
        )
    } else {
        let data_path = PathBuf::from(args.require("data")?);
        let data = DataSet::load(&data_path)
            .map_err(|e| format!("cannot load {}: {e}", data_path.display()))?;
        let (c, _, _) = data.shape();
        let mut arch = ArchSpec::paper();
        arch.channels[0] = c * window;
        let mut cfg = TrainConfig::paper();
        cfg.epochs = 20;
        (data, arch, cfg, data_path.display().to_string())
    };
    let ranks: usize = args.get_or("ranks", 4)?;
    cfg.epochs = args.get_or("epochs", cfg.epochs)?;
    cfg.prediction =
        mode_from_str(
            args.get("mode")
                .unwrap_or(if quick { "absolute" } else { "residual" }),
        )?;
    cfg.window = window;
    cfg.seed = args.get_or("seed", 0x5EED_u64)?;
    cfg.lr = args.get_or("lr", cfg.lr)?;
    if let Some(t) = args.get("threads-per-rank") {
        let t: usize = t
            .parse()
            .map_err(|_| format!("--threads-per-rank: not a number: {t}"))?;
        let cores = pde_tensor::pool::available_cores();
        if t == 0 || t > cores {
            return Err(format!(
                "--threads-per-rank {t} is invalid: pick 1..={cores} \
                 (this machine has {cores} core(s); omit the flag to \
                 auto-size as cores / ranks)"
            ));
        }
        cfg.threads_per_rank = Some(t);
    }
    let train_pairs: usize = args.get_or("train-pairs", data.pair_count() * 2 / 3)?;
    let (c, h, w) = data.shape();
    println!(
        "training on {} of {} pairs from {} ({c} ch, {h}x{w}) with {ranks} ranks, \
         {} epochs, {} + {}",
        train_pairs,
        data.pair_count(),
        source,
        cfg.epochs,
        strategy.label(),
        cfg.prediction.label()
    );
    println!(
        "kernel path {}, {} kernel thread(s) per rank",
        pde_tensor::kernel_path().label(),
        pde_tensor::pool::resolve_budget(cfg.threads_per_rank, ranks)
    );

    let handle = trace_path.as_ref().map(|_| pde_trace::begin());
    let outcome = ParallelTrainer::new(arch.clone(), strategy, cfg)
        .train_view(&data, train_pairs, ranks)
        .map_err(|e| e.to_string())?;
    if let (Some(h), Some(path)) = (handle, trace_path.as_ref()) {
        let trace = h.finish();
        let rows = pde_ml_core::observe::train_metrics(&trace, &outcome);
        write_trace(&trace, &rows, path)?;
    }
    println!(
        "done in {:.1}s; mean final loss {:.3}; bytes communicated during training: {}",
        outcome.wall_seconds,
        outcome.mean_final_loss(),
        outcome.total_bytes_sent()
    );
    for r in &outcome.rank_results {
        println!(
            "  rank {:>3}: {:.2} GFLOP/s over {:.1}s ({} GEMM calls, {:.2e} FLOPs, \
             {} hot-path allocations)",
            r.rank,
            r.perf.gflops(r.train_seconds),
            r.train_seconds,
            r.perf.gemm_calls,
            r.perf.flops as f64,
            r.perf.allocs
        );
    }
    let total_flops: u64 = outcome.rank_results.iter().map(|r| r.perf.flops).sum();
    println!(
        "  aggregate: {:.2} GFLOP/s across {ranks} ranks ({:.2e} FLOPs total)",
        total_flops as f64 / outcome.wall_seconds.max(1e-12) / 1e9,
        total_flops as f64
    );

    let Some(out_dir) = out_dir else {
        return Ok(()); // --quick without --out: smoke run, nothing persisted
    };
    let meta = ModelMeta {
        arch: arch.clone(),
        strategy,
        prediction: outcome.prediction,
        window: outcome.window,
        partition: outcome.partition,
        norm: outcome.norm.clone(),
    };
    meta.save(&out_dir)
        .map_err(|e| format!("cannot write meta: {e}"))?;
    for r in &outcome.rank_results {
        let mut net = arch.build_for(strategy, 0);
        restore(&mut net, &r.weights);
        let path = out_dir.join(format!("rank{:03}.pdenn", r.rank));
        save_params(&mut net, &path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    println!(
        "model written to {}/ (meta.txt + {} rank checkpoints)",
        out_dir.display(),
        ranks
    );
    Ok(())
}

/// Rebuilds a [`ParallelInference`] from a model directory.
pub(crate) fn load_fleet(dir: &Path) -> Result<(ModelMeta, ParallelInference), String> {
    let meta = ModelMeta::load(dir)?;
    let n_ranks = meta.partition.rank_count();
    let weights: Vec<Vec<f64>> = (0..n_ranks)
        .map(|r| {
            let mut net = meta.arch.build_for(meta.strategy, 0);
            let path = dir.join(format!("rank{r:03}.pdenn"));
            load_params(&mut net, &path)
                .map_err(|e| format!("cannot load {}: {e}", path.display()))?;
            Ok(snapshot(&mut net))
        })
        .collect::<Result<_, String>>()?;
    let inf = ParallelInference::with_window(
        meta.arch.clone(),
        meta.strategy,
        meta.partition,
        weights,
        meta.norm.clone(),
        meta.prediction,
        meta.window,
    );
    Ok((meta, inf))
}

/// Parses `--halo-policy` / `--halo-timeout-ms` into a [`HaloPolicy`].
pub(crate) fn halo_policy_from_args(args: &Args) -> Result<HaloPolicy, String> {
    let timeout_ms: u64 = args.get_or("halo-timeout-ms", 250)?;
    let timeout = std::time::Duration::from_millis(timeout_ms);
    match args.get("halo-policy").unwrap_or("strict") {
        "strict" => Ok(HaloPolicy::Strict),
        "zero-fill" => Ok(HaloPolicy::Degrade {
            timeout,
            fallback: HaloFallback::ZeroFill,
        }),
        "last-known" => Ok(HaloPolicy::Degrade {
            timeout,
            fallback: HaloFallback::LastKnown,
        }),
        other => Err(format!(
            "unknown halo policy '{other}' (expected strict, zero-fill or last-known)"
        )),
    }
}

/// `pdeml infer` — parallel rollout from a stored model + dataset.
pub fn infer(args: &Args) -> Result<(), String> {
    let data_path = PathBuf::from(args.require("data")?);
    let model_dir = PathBuf::from(args.require("model")?);
    let steps: usize = args.get_or("steps", 10)?;
    let data = DataSet::load(&data_path)
        .map_err(|e| format!("cannot load {}: {e}", data_path.display()))?;
    let (meta, mut inf) = load_fleet(&model_dir)?;
    let policy = halo_policy_from_args(args)?;
    inf = inf.with_halo_policy(policy);
    if let Some(spec) = args.get("fault") {
        if policy == HaloPolicy::Strict {
            return Err(
                "--fault with --halo-policy strict would hang on the first lost halo; \
                 pick zero-fill or last-known"
                    .into(),
            );
        }
        // parse_for also rejects plans naming ranks this fleet doesn't have.
        inf = inf.with_fault_plan(FaultPlan::parse_for(spec, meta.partition.rank_count())?);
    }
    let default_start = data.len().saturating_sub(steps + 1).max(meta.window - 1);
    let start: usize = args.get_or("start", default_start)?;
    if start + 1 < meta.window || start >= data.len() {
        return Err(format!(
            "--start {start} invalid: need window history ({}) and a snapshot to start from",
            meta.window
        ));
    }
    println!(
        "rolling out {steps} steps from snapshot {start} with {} ranks ({} + {}, window {})",
        meta.partition.rank_count(),
        meta.strategy.label(),
        meta.prediction.label(),
        meta.window
    );
    let history: Vec<_> = (start + 1 - meta.window..=start)
        .map(|k| data.snapshot(k).clone())
        .collect();
    let trace_path = args.get("trace").map(PathBuf::from);
    let handle = trace_path.as_ref().map(|_| pde_trace::begin());
    let rollout = inf
        .rollout_from_history(&history, steps)
        .map_err(|e| format!("cannot serve this rollout: {e}"))?;
    if let (Some(h), Some(path)) = (handle, trace_path.as_ref()) {
        let trace = h.finish();
        let rows = pde_ml_core::observe::rollout_metrics(&trace, &rollout);
        write_trace(&trace, &rows, path)?;
    }
    println!("boundary bytes exchanged: {}", rollout.total_bytes());
    if rollout.degraded() {
        println!(
            "degraded halos: {} lost ({} zero-filled, {} stale-reused) — per rank:",
            rollout.total_halos_lost(),
            rollout
                .traffic
                .iter()
                .map(|t| t.halos_zero_filled)
                .sum::<u64>(),
            rollout.traffic.iter().map(|t| t.halos_stale).sum::<u64>()
        );
        for (rank, t) in rollout.traffic.iter().enumerate() {
            if t.degraded() {
                println!(
                    "  rank {rank:>3}: {} lost, {} zero-filled, {} stale",
                    t.halos_lost, t.halos_zero_filled, t.halos_stale
                );
            }
        }
    } else if policy != HaloPolicy::Strict {
        println!("no halos lost (all strips arrived within the timeout)");
    }

    // Compare against the solver where reference snapshots exist.
    let available = data.len().saturating_sub(start + 1).min(steps);
    if available > 0 {
        let reference: Vec<_> = (0..=available)
            .map(|s| data.snapshot(start + s).clone())
            .collect();
        let curve = rollout_error_curve(&rollout.states[..=available], &reference);
        println!("mean-RMSE vs solver per step:");
        for (s, e) in curve.iter().enumerate() {
            println!("  step {s}: {e:.4e}");
        }
        println!("single-step per-field errors:");
        print!(
            "{}",
            format_error_table(&field_errors(&rollout.states[1], &reference[1], 1e-3))
        );
        if let Some(out) = args.get("out") {
            let mut csv = Csv::new(&["step", "mean_rmse"]);
            for (s, e) in curve.iter().enumerate() {
                csv.row_f64(&[s as f64, *e]);
            }
            csv.write_to(Path::new(out))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {out}");
        }
    } else {
        println!("(no reference snapshots beyond the start point — skipping error report)");
    }
    Ok(())
}

/// Nearest-rank percentile of an ascending-sorted latency list, or `None`
/// when the list is empty — a `--requests 0` run must report "n/a"/`null`,
/// not panic on the `len() - 1` underflow or smuggle NaN into `--out` JSON.
///
/// The index rule is [`pde_telemetry::nearest_rank`] — the same one the
/// histogram quantile uses — so a p99.9 printed by serve-bench and a
/// p99.9 scraped from `pdeml_request_latency_us` pick the same sample.
pub(crate) fn percentile(sorted_ms: &[f64], p: f64) -> Option<f64> {
    if sorted_ms.is_empty() {
        return None;
    }
    let idx = pde_telemetry::nearest_rank(sorted_ms.len() as u64, p / 100.0) as usize;
    Some(sorted_ms[idx.min(sorted_ms.len() - 1)])
}

/// Console rendering of an optional latency: `12.34` or `n/a`.
pub(crate) fn fmt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".into(), |v| format!("{v:.2}"))
}

/// JSON rendering of an optional metric: a finite number or `null` (JSON
/// has no NaN/inf, and a 0-request run has no latencies to report).
pub(crate) fn json_num(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".into(),
    }
}

/// Sleeps out `--hold-ms` (so a scraper can catch the endpoint after the
/// run) and then stops the exporter thread.
pub(crate) fn hold_and_stop_exporter(
    exporter: &mut Option<pde_telemetry::exporter::Exporter>,
    hold_ms: u64,
) {
    if hold_ms > 0 && exporter.is_some() {
        println!("holding metrics endpoint for {hold_ms} ms…");
        std::thread::sleep(std::time::Duration::from_millis(hold_ms));
    }
    if let Some(e) = exporter.as_mut() {
        e.shutdown();
    }
}

/// `pdeml serve-bench` — the serving case for the persistent engine: drive
/// N requests through one warm [`InferEngine`] (threads + models resident)
/// and the same N through cold per-request [`ParallelInference`] worlds,
/// and print requests/sec with p50/p99/p99.9 latency for each.
///
/// `--quick` trains the tiny test net on the built-in dataset with the
/// zero-padding strategy — the communication-free configuration, so warm
/// requests are also steady-state allocation-free (reported per request).
///
/// `--metrics-addr` brings up the std-only telemetry exporter for the run
/// (live `/metrics`, `/healthz`, `/readyz`); `--flight-dir` arms the flight
/// recorder, which dumps a Chrome-trace + metrics snapshot whenever a
/// request breaks `--slo-ms` or a rank panics.
pub fn serve_bench(args: &Args) -> Result<(), String> {
    use pde_telemetry::health::{CheckStatus, HealthModel};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    let quick = args.flag("quick");
    let requests: usize = args.get_or("requests", 32)?;
    let steps: usize = args.get_or("steps", 2)?;
    let policy = halo_policy_from_args(args)?;
    let transport = match args.get("transport") {
        Some(spec) => pde_commsim::TransportKind::parse(spec)?,
        None => pde_commsim::TransportKind::default(),
    };
    let trace_path = args.get("trace").map(PathBuf::from);
    let flight_dir = args.get("flight-dir").map(PathBuf::from);
    if trace_path.is_some() && flight_dir.is_some() {
        return Err(
            "--trace and --flight-dir are mutually exclusive (both own the global trace session)"
                .into(),
        );
    }
    let slo_ms: f64 = args.get_or("slo-ms", 0.0)?;
    let hold_ms: u64 = args.get_or("hold-ms", 0)?;
    // Rank-validated parses (parse_for) happen below, once the fleet is
    // loaded and the world size is known; here we only gate on policy.
    let fault_spec = args.get("fault");
    if fault_spec.is_some() && policy == HaloPolicy::Strict {
        return Err(
            "--fault with --halo-policy strict would hang on the first lost halo; \
             pick zero-fill or last-known"
                .into(),
        );
    }
    let self_heal = args.flag("self-heal");
    let kill_spec = args.get("kill-rank-at");
    if kill_spec.is_some() && !self_heal {
        return Err(
            "--kill-rank-at kills a rank mid-batch, which only ends well with \
             --self-heal (otherwise the world poisons and the bench aborts)"
                .into(),
        );
    }
    if self_heal && !matches!(policy, HaloPolicy::Degrade { .. }) {
        return Err(
            "--self-heal serves the kill-to-respawn gap with fallback halos, which needs \
             --halo-policy zero-fill or last-known"
                .into(),
        );
    }

    // Exporter and health model come up before any training/loading so a
    // scraper pointed at --metrics-addr sees /healthz from the start.
    let health = Arc::new(HealthModel::new());
    pde_telemetry::collect_counter(
        "pdeml_trace_dropped_spans_total",
        "Trace spans dropped to per-thread ring overflow",
        pde_trace::dropped_spans_total,
    );
    let mut exporter = match args.get("metrics-addr") {
        Some(addr) => {
            let e = pde_telemetry::exporter::serve(addr, health.clone())
                .map_err(|err| format!("cannot serve metrics on {addr}: {err}"))?;
            println!(
                "metrics: http://{}/metrics (also /healthz, /readyz)",
                e.local_addr()
            );
            Some(e)
        }
        None => None,
    };

    let (inf, initial, source) = if quick {
        let data = pde_euler::dataset::paper_dataset(16, 8);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(
            arch.clone(),
            PaddingStrategy::ZeroPad,
            TrainConfig::quick_test(),
        )
        .train_view(&data, 6, 4)
        .map_err(|e| e.to_string())?;
        let inf = ParallelInference::from_outcome(arch, PaddingStrategy::ZeroPad, &outcome);
        let initial = data.snapshot(0).clone();
        (
            inf,
            initial,
            "built-in 16x16 paper pulse (--quick)".to_string(),
        )
    } else {
        let data_path = PathBuf::from(args.require("data")?);
        let model_dir = PathBuf::from(args.require("model")?);
        let data = DataSet::load(&data_path)
            .map_err(|e| format!("cannot load {}: {e}", data_path.display()))?;
        let (meta, inf) = load_fleet(&model_dir)?;
        if meta.window != 1 {
            return Err(format!(
                "serve-bench drives single-state requests but the model was trained with a \
                 window of {} — retrain with --window 1 (or use --quick)",
                meta.window
            ));
        }
        let initial = data.snapshot(data.len() - 1).clone();
        (inf, initial, data_path.display().to_string())
    };
    let mut inf = inf.with_halo_policy(policy).with_transport(transport);
    let ranks = inf.partition().rank_count();
    let fault_plan = match fault_spec {
        Some(spec) => Some(FaultPlan::parse_for(spec, ranks)?),
        None => None,
    };
    // `--kill-rank-at RANK:REQUEST[:STEP]` — the deterministic chaos plan:
    // that rank's serving thread dies at that point, and the self-healing
    // engine must respawn it and re-serve the batch.
    let chaos_plan = match kill_spec {
        Some(spec) => Some(pde_commsim::ChaosPlan::parse_for(
            &format!("kill:{spec}"),
            ranks,
        )?),
        None => None,
    };
    if let Some(plan) = &fault_plan {
        inf = inf.with_fault_plan(plan.clone());
    }
    let threads_per_rank = match args.get("threads-per-rank") {
        Some(t) => {
            let t: usize = t
                .parse()
                .map_err(|_| format!("--threads-per-rank: not a number: {t}"))?;
            let cores = pde_tensor::pool::available_cores();
            if t == 0 || t > cores {
                return Err(format!(
                    "--threads-per-rank {t} is invalid: pick 1..={cores} \
                     (this machine has {cores} core(s); omit the flag to \
                     auto-size as cores / ranks)"
                ));
            }
            Some(t)
        }
        None => None,
    };
    let (c, h, w) = initial.shape();
    println!(
        "serve-bench: {requests} requests x {steps} steps on {source} \
         ({c} ch, {h}x{w}, {ranks} ranks, {} transport)",
        transport.label()
    );
    println!(
        "kernel path {}, {} kernel thread(s) per rank",
        pde_tensor::kernel_path().label(),
        pde_tensor::pool::resolve_budget(threads_per_rank, ranks)
    );

    // Warm: one engine, resident model, one unmeasured warm-up request to
    // pay residency costs (thread spawn, model restore, scratch sizing) —
    // which also registers every live telemetry series before the measured
    // loop, keeping the hot path allocation-free.
    let mut engine_cfg = EngineConfig::new(ranks).with_transport(transport);
    engine_cfg.threads_per_rank = threads_per_rank;
    if let Some(plan) = &fault_plan {
        engine_cfg = engine_cfg.with_fault_plan(plan.clone());
    }
    if self_heal {
        engine_cfg = engine_cfg.with_self_heal();
    }
    if let Some(plan) = &chaos_plan {
        engine_cfg = engine_cfg.with_chaos_plan(plan.clone());
    }
    let mut engine = InferEngine::with_config(engine_cfg);
    engine
        .register("serve", inf.clone())
        .expect("register serve model");
    engine
        .rollout("serve", &initial, steps)
        .map_err(|e| format!("cannot serve this rollout: {e}"))?;

    // Health checks read state the engine already maintains; they stay live
    // through the run and the --hold-ms window.
    {
        let poisoned = engine.poisoned_flag();
        health.register("world_poisoned", move || {
            if poisoned.load(Ordering::Acquire) {
                CheckStatus::Failed("a rank panicked; the world is poisoned".into())
            } else {
                CheckStatus::Ok
            }
        });
        let alive = engine.alive_flags();
        health.register("ranks_alive", move || {
            let dead: Vec<String> = alive
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.load(Ordering::Acquire))
                .map(|(r, _)| r.to_string())
                .collect();
            if dead.is_empty() {
                CheckStatus::Ok
            } else {
                CheckStatus::Failed(format!("dead ranks: {}", dead.join(",")))
            }
        });
        // The same registry entries core::infer/commsim record into — the
        // lookup is idempotent by name.
        let attempts = pde_telemetry::counter(
            "pdeml_halo_recv_attempts_total",
            "Timed halo receives attempted, per rank",
        );
        let zero = pde_telemetry::counter(
            "pdeml_halos_zero_filled_total",
            "Lost halos replaced with zeros, per rank",
        );
        let stale = pde_telemetry::counter(
            "pdeml_halos_stale_total",
            "Lost halos replaced with the previous step's strip, per rank",
        );
        health.register("halo_fallback_rate", move || {
            let total = attempts.total();
            let fell_back = zero.total() + stale.total();
            if total > 0 && fell_back * 2 > total {
                CheckStatus::Degraded(format!(
                    "{fell_back}/{total} halo receives fell back to zero-fill/stale"
                ))
            } else {
                CheckStatus::Ok
            }
        });
    }

    let mut flight = match &flight_dir {
        Some(dir) => Some(
            FlightRecorder::new(dir)
                .map_err(|e| format!("cannot arm flight recorder in {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let handle = trace_path.as_ref().map(|_| pde_trace::begin());
    let lost_before: u64 = engine.traffic().iter().map(|t| t.halos_lost).sum();
    let mut warm_ms = Vec::with_capacity(requests);
    let mut last = None;
    let warm_t0 = std::time::Instant::now();
    for _ in 0..requests {
        let t = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.rollout("serve", &initial, steps)
        }));
        match outcome {
            Ok(Ok(r)) => {
                let ms = t.elapsed().as_secs_f64() * 1e3;
                if slo_ms > 0.0 && ms > slo_ms {
                    if let Some(f) = flight.as_mut() {
                        let dump = f
                            .trip("slo-exceeded")
                            .map_err(|e| format!("flight dump failed: {e}"))?;
                        println!(
                            "flight: request took {ms:.2} ms (SLO {slo_ms} ms) — \
                             {} events -> {}",
                            dump.events,
                            dump.trace_path.display()
                        );
                    }
                }
                warm_ms.push(ms);
                last = Some(r);
            }
            Ok(Err(e)) => return Err(format!("cannot serve this rollout: {e}")),
            Err(payload) => {
                // A rank died mid-request. Dump the flight ring, report the
                // (now failing) health model and bail — the bench numbers
                // would be meaningless.
                let reason = pde_ml_core::flight::classify_panic(payload.as_ref());
                if let Some(f) = flight.as_mut() {
                    if let Ok(dump) = f.trip(reason) {
                        println!("flight: {reason} — dump at {}", dump.trace_path.display());
                    }
                }
                print!("{}", health.report().describe());
                hold_and_stop_exporter(&mut exporter, hold_ms);
                return Err(format!(
                    "warm loop aborted after {} requests: rank panic classified as '{reason}'",
                    warm_ms.len()
                ));
            }
        }
    }
    let warm_s = warm_t0.elapsed().as_secs_f64();
    let lost_after: u64 = engine.traffic().iter().map(|t| t.halos_lost).sum();
    let halo_lost_per_request = (lost_after - lost_before) as f64 / requests.max(1) as f64;
    // `last` is None on a 0-request run — every per-request statistic below
    // degrades to "n/a"/`null` instead of panicking.
    let steady_allocs: Option<u64> = last
        .as_ref()
        .map(|r| r.rank_perf.iter().map(|p| p.allocs).max().unwrap_or(0));
    if let (Some(h), Some(path)) = (handle, trace_path.as_ref()) {
        let trace = h.finish();
        match &last {
            Some(last) => {
                let rows = pde_ml_core::observe::rollout_metrics(&trace, last);
                write_trace(&trace, &rows, path)?;
            }
            None => println!("(no requests ran — skipping trace {})", path.display()),
        }
    }

    // Cold: a fresh world (thread spawn + model restore) per request.
    let mut cold_ms = Vec::with_capacity(requests);
    let cold_t0 = std::time::Instant::now();
    for _ in 0..requests {
        let t = std::time::Instant::now();
        inf.rollout(&initial, steps)
            .map_err(|e| format!("cannot serve this rollout: {e}"))?;
        cold_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let cold_s = cold_t0.elapsed().as_secs_f64();

    warm_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    cold_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let warm_rps = requests as f64 / warm_s;
    let cold_rps = requests as f64 / cold_s;
    let speedup = (cold_rps > 0.0).then(|| warm_rps / cold_rps);
    println!(
        "warm: {requests} requests in {warm_s:.3} s — {warm_rps:.1} req/s, \
         p50 {} ms, p99 {} ms, p99.9 {} ms, {} steady-state allocs/request",
        fmt_ms(percentile(&warm_ms, 50.0)),
        fmt_ms(percentile(&warm_ms, 99.0)),
        fmt_ms(percentile(&warm_ms, 99.9)),
        steady_allocs.map_or_else(|| "n/a".into(), |a| a.to_string())
    );
    println!(
        "cold: {requests} requests in {cold_s:.3} s — {cold_rps:.1} req/s, \
         p50 {} ms, p99 {} ms, p99.9 {} ms",
        fmt_ms(percentile(&cold_ms, 50.0)),
        fmt_ms(percentile(&cold_ms, 99.0)),
        fmt_ms(percentile(&cold_ms, 99.9))
    );
    println!("speedup: {}x requests/sec warm over cold", fmt_ms(speedup));
    let final_health = health.report();
    println!(
        "health: {} ({:.4} halos lost per warm request)",
        final_health.overall.as_str(),
        halo_lost_per_request
    );
    if self_heal {
        let respawns = pde_telemetry::counter(
            "pdeml_rank_respawns_total",
            "Dead ranks brought back by a supervisor, per rank",
        )
        .total();
        println!("self-heal: {respawns} rank respawn(s) during the warm loop");
    }
    if let Some(f) = &flight {
        println!(
            "flight recorder: {} dump(s) in {}",
            f.trips(),
            f.dir().display()
        );
    }

    if let Some(out) = args.get("out") {
        let json = format!(
            "{{\n  \"shape\": {{ \"channels\": {c}, \"grid_h\": {h}, \"grid_w\": {w}, \
             \"ranks\": {ranks}, \"steps\": {steps}, \"requests\": {requests}, \
             \"transport\": \"{}\" }},\n  \
             \"warm\": {{ \"requests_per_sec\": {warm_rps:.2}, \"p50_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {}, \
             \"steady_state_allocs_per_request\": {} }},\n  \
             \"cold\": {{ \"requests_per_sec\": {cold_rps:.2}, \"p50_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {} }},\n  \
             \"warm_over_cold\": {},\n  \
             \"halo_lost_per_request\": {halo_lost_per_request:.4},\n  \
             \"final_health\": \"{}\"\n}}\n",
            transport.label(),
            json_num(percentile(&warm_ms, 50.0)),
            json_num(percentile(&warm_ms, 99.0)),
            json_num(percentile(&warm_ms, 99.9)),
            steady_allocs.map_or_else(|| "null".into(), |a| a.to_string()),
            json_num(percentile(&cold_ms, 50.0)),
            json_num(percentile(&cold_ms, 99.0)),
            json_num(percentile(&cold_ms, 99.9)),
            json_num(speedup),
            final_health.overall.as_str()
        );
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }
    hold_and_stop_exporter(&mut exporter, hold_ms);
    Ok(())
}

/// `pdeml scale` — calibrate the cost model on this machine and print the
/// strong/weak scaling projections.
pub fn scale(args: &Args) -> Result<(), String> {
    let grid: usize = args.get_or("grid", 96)?;
    let epochs: usize = args.get_or("epochs", 2)?;
    let cores: usize = args.get_or("cores", 64)?;
    let arch = ArchSpec::paper();
    let mut cfg = TrainConfig::paper();
    cfg.epochs = epochs;
    println!("calibrating on {grid}x{grid} subproblems ({epochs} epochs each)…");
    let mut samples = Vec::new();
    for &side in &[grid / 8, grid / 4, grid / 2] {
        let data = pde_euler::dataset::paper_dataset(side, 10);
        let out = SequentialTrainer::new(arch.clone(), PaddingStrategy::ZeroPad, cfg.clone())
            .train(&data, 8)
            .map_err(|e| e.to_string())?;
        samples.push(((side * side) as f64, out.seconds / epochs as f64));
    }
    let cost = CostModel::calibrate(&samples);
    println!(
        "fitted cost: {:.3e} s/cell/epoch + {:.3e} s overhead\n",
        cost.rate_s_per_cell, cost.overhead_s
    );
    let ranks = [1usize, 2, 4, 8, 16, 32, 64];
    println!("strong scaling, {cores}-core machine, {grid}x{grid} global grid:");
    print!(
        "{}",
        format_scaling_table(&strong_scaling(&cost, grid * grid, epochs, &ranks, cores))
    );
    println!(
        "\nweak scaling, {} cells per rank:",
        (grid / 8) * (grid / 8)
    );
    print!(
        "{}",
        format_scaling_table(&weak_scaling(
            &cost,
            (grid / 8) * (grid / 8),
            epochs,
            &ranks,
            cores
        ))
    );
    Ok(())
}

/// `pdeml info` — version and the Table-I architecture.
pub fn info() -> Result<(), String> {
    println!(
        "pdeml {} — reproduction of 'Parallel Machine Learning of PDEs' (PDSEC 2021)",
        env!("CARGO_PKG_VERSION")
    );
    let arch = ArchSpec::paper();
    println!(
        "\nTable I architecture ({} parameters):",
        arch.param_count()
    );
    print!("{}", arch.table());
    println!("\npadding strategies: zero-pad | neighbor-pad | inner-crop | deconv");
    println!("prediction modes:   absolute | residual");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_empty_list_is_none_not_a_panic() {
        // Regression: `(len - 1)` underflowed on an empty list, so a
        // `--requests 0` serve-bench panicked before reporting anything.
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[], 99.9), None);
    }

    #[test]
    fn percentile_picks_nearest_rank() {
        let ms = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&ms, 0.0), Some(1.0));
        assert_eq!(percentile(&ms, 50.0), Some(3.0));
        assert_eq!(percentile(&ms, 100.0), Some(4.0));
        assert_eq!(percentile(&[7.5], 99.9), Some(7.5));
    }

    #[test]
    fn percentile_and_histogram_quantile_share_one_rule() {
        // Regression for the percentile dedup: serve-bench's list
        // percentile and the telemetry histogram quantile used to carry
        // two hand-rolled nearest-rank implementations; both now route
        // through pde_telemetry::nearest_rank. Samples stay below 2^k=32,
        // the histogram's exact-bucket region, so the two must agree
        // EXACTLY on every quantile — any future drift in either rule
        // breaks this test.
        let hist = pde_telemetry::histogram(
            "pdeml_test_percentile_dedup_us",
            "percentile dedup regression fixture",
        );
        let samples: Vec<u64> = vec![1, 2, 3, 5, 8, 13, 21, 21, 30, 31];
        for &s in &samples {
            hist.record(s);
        }
        let sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        let snap = hist.snapshot();
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let list = percentile(&sorted, p).unwrap();
            let hist_q = snap.quantile(p / 100.0).unwrap();
            assert_eq!(
                list, hist_q as f64,
                "p{p}: list percentile and histogram quantile diverged"
            );
        }
    }

    #[test]
    fn missing_metrics_render_as_na_and_json_null() {
        // NaN and infinity must never reach the --out JSON: it has no
        // representation for them, and a NaN row poisons downstream tooling.
        assert_eq!(fmt_ms(None), "n/a");
        assert_eq!(fmt_ms(Some(12.345)), "12.35");
        assert_eq!(json_num(None), "null");
        assert_eq!(json_num(Some(f64::NAN)), "null");
        assert_eq!(json_num(Some(f64::INFINITY)), "null");
        assert_eq!(json_num(Some(1.0)), "1.0000");
    }
}
