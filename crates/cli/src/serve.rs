//! `pdeml serve` — the HTTP inference front end over the concurrent
//! scheduler, plus the `--saturation` sweep that measures it under load.
//!
//! The server splits one persistent world into `--sub-worlds` disjoint
//! sub-worlds ([`pde_commsim::World::split_even`]), wraps each in an
//! engine and fans requests out through
//! [`pde_ml_core::schedule::Scheduler`] — bounded queue, LRU residency,
//! SLO-aware admission. The listener is the same std-only pattern as the
//! telemetry exporter, extended to read `Content-Length` bodies.
//!
//! Wire format (plain text, one token stream per line):
//!
//! ```text
//! POST /v1/rollout
//!
//! model serve
//! steps 3
//! state C H W v0 v1 … v(C*H*W-1)      ← window-many state lines
//! ```
//!
//! yields `200` with `steps`/`state` lines for the rollout (initial state
//! included), or a typed failure: `400` malformed request, `404` unknown
//! model, `429` shed by admission (queue full / SLO breach), `503`
//! unhealthy. `GET /v1/example` returns a ready-to-POST request body for
//! the registered model; `/metrics`, `/healthz`, `/readyz` behave exactly
//! like the exporter's; `POST /shutdown` stops the server (for CI).
//!
//! Every `/v1/rollout` response — success or rejection — carries the
//! request id allocated at ingress (`X-PDEML-Request-Id`) and a
//! `Server-Timing` header with the queue/dispatch/rollout phase split in
//! milliseconds. `--access-log PATH` appends one JSON line per sampled
//! request (`--access-log-sample N` keeps 1-in-N); `--trace-out PATH`
//! records a trace session for the server's lifetime and writes the
//! Chrome-trace JSON on shutdown, with each span tagged by the request id
//! it served (README "End-to-end request tracing").

use crate::args::Args;
use pde_commsim::{TransportKind, World};
use pde_ml_core::arch::ArchSpec;
use pde_ml_core::prelude::*;
use pde_tensor::Tensor3;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Largest request head (line + headers) we will buffer.
const MAX_REQUEST_HEAD: usize = 4096;
/// Largest request body we will buffer — a window of states for a big
/// grid is ~1 MB; 16 MB leaves headroom without letting a rogue client
/// exhaust memory.
const MAX_REQUEST_BODY: usize = 16 << 20;
/// Per-connection read budget.
const REQUEST_DEADLINE: Duration = Duration::from_millis(2000);

/// Sampled JSONL access log for `/v1/rollout`: one line per kept request
/// with the request id and the phase-latency split, so a slow request can
/// be followed from this line to its `Server-Timing` header to its spans
/// in a trace dump — all three carry the same id.
struct AccessLog {
    file: Mutex<std::fs::File>,
    /// Keep 1-in-`sample` requests (1 = log everything).
    sample: u64,
    seq: AtomicU64,
}

impl AccessLog {
    fn open(path: &str, sample: u64) -> Result<AccessLog, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open access log {path}: {e}"))?;
        Ok(AccessLog {
            file: Mutex::new(file),
            sample: sample.max(1),
            seq: AtomicU64::new(0),
        })
    }

    fn record(&self, line: &str) {
        if !self
            .seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample)
        {
            return;
        }
        if let Ok(mut f) = self.file.lock() {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// One access-log line. Schema (all integers; durations in microseconds):
/// `{"ts_ms":…,"id":…,"model":"…","steps":…,"status":…,
///   "queue_us":…,"dispatch_us":…,"rollout_us":…,"total_us":…}`.
fn access_log_line(
    ts_ms: u64,
    id: RequestId,
    model: &str,
    steps: usize,
    status: &str,
    phases: &RequestPhases,
    total_us: u64,
) -> String {
    // The status line starts with the numeric code ("429 Too Many Requests").
    let code: u32 = status
        .split_whitespace()
        .next()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0);
    let mut escaped = String::with_capacity(model.len());
    for c in model.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    format!(
        "{{\"ts_ms\":{ts_ms},\"id\":{},\"model\":\"{escaped}\",\"steps\":{steps},\
         \"status\":{code},\"queue_us\":{},\"dispatch_us\":{},\"rollout_us\":{},\
         \"total_us\":{total_us}}}\n",
        id.as_u64(),
        phases.queue_us,
        phases.dispatch_us,
        phases.rollout_us,
    )
}

/// `Server-Timing` value for the phase split, milliseconds as the header's
/// `dur` unit prescribes.
fn server_timing(phases: &RequestPhases) -> String {
    format!(
        "queue;dur={:.3}, dispatch;dur={:.3}, rollout;dur={:.3}",
        phases.queue_us as f64 / 1e3,
        phases.dispatch_us as f64 / 1e3,
        phases.rollout_us as f64 / 1e3,
    )
}

/// Builds the model this server registers: `--quick` trains the tiny test
/// net, otherwise `--model` loads a checkpoint directory.
fn build_model(args: &Args) -> Result<(ParallelInference, Tensor3, String), String> {
    if args.flag("quick") {
        let ranks: usize = args.get_or("ranks-per-world", 2)?;
        let data = pde_euler::dataset::paper_dataset(16, 8);
        let arch = ArchSpec::tiny();
        let outcome = ParallelTrainer::new(
            arch.clone(),
            PaddingStrategy::ZeroPad,
            TrainConfig::quick_test(),
        )
        .train_view(&data, 6, ranks)
        .map_err(|e| e.to_string())?;
        let inf = ParallelInference::from_outcome(arch, PaddingStrategy::ZeroPad, &outcome);
        let initial = data.snapshot(0).clone();
        Ok((inf, initial, "built-in 16x16 paper pulse (--quick)".into()))
    } else {
        let model_dir = PathBuf::from(args.require("model")?);
        let (meta, inf) = crate::commands::load_fleet(&model_dir)?;
        let data_path = PathBuf::from(args.require("data")?);
        let data = pde_euler::DataSet::load(&data_path)
            .map_err(|e| format!("cannot load {}: {e}", data_path.display()))?;
        if meta.window != 1 {
            return Err(format!(
                "serve drives single-state requests but the model was trained with a \
                 window of {} — retrain with --window 1 (or use --quick)",
                meta.window
            ));
        }
        let initial = data.snapshot(data.len() - 1).clone();
        Ok((inf, initial, model_dir.display().to_string()))
    }
}

/// Splits a fresh world into sub-worlds, wires per-sub-world health
/// checks, and brings up the scheduler with the model registered.
fn build_scheduler(
    inf: &ParallelInference,
    sub_worlds: usize,
    transport: TransportKind,
    cfg: SchedulerConfig,
    health: &Arc<pde_telemetry::health::HealthModel>,
) -> Result<Scheduler, String> {
    let ranks = inf.partition().rank_count();
    let subs = World::new(ranks * sub_worlds)
        .with_transport(transport)
        .split_even(sub_worlds)?;
    let mut poisoned = Vec::new();
    let mut alive = Vec::new();
    let engines: Vec<InferEngine> = subs
        .into_iter()
        .map(|sub| {
            let engine = InferEngine::from_world(sub, EngineConfig::new(0));
            poisoned.push(engine.poisoned_flag());
            alive.push(engine.alive_flags());
            engine
        })
        .collect();
    health.register("sub_worlds_alive", move || {
        use pde_telemetry::health::CheckStatus;
        let dead = poisoned
            .iter()
            .filter(|p| p.load(Ordering::Acquire))
            .count();
        if dead == 0 {
            CheckStatus::Ok
        } else if dead < poisoned.len() {
            CheckStatus::Degraded(format!("{dead}/{} sub-worlds poisoned", poisoned.len()))
        } else {
            CheckStatus::Failed("every sub-world is poisoned".into())
        }
    });
    health.register("ranks_alive", move || {
        use pde_telemetry::health::CheckStatus;
        let dead: Vec<String> = alive
            .iter()
            .enumerate()
            .flat_map(|(sw, flags)| {
                flags
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.load(Ordering::Acquire))
                    .map(move |(r, _)| format!("{sw}.{r}"))
            })
            .collect();
        if dead.is_empty() {
            CheckStatus::Ok
        } else {
            CheckStatus::Failed(format!("dead ranks (sub-world.rank): {}", dead.join(",")))
        }
    });
    let sched = Scheduler::new(engines, cfg.with_health(health.clone()));
    sched
        .register("serve", inf.clone())
        .map_err(|e| e.to_string())?;
    Ok(sched)
}

/// `pdeml serve` — dispatches to the saturation sweep or the HTTP server.
pub fn serve(args: &Args) -> Result<(), String> {
    if args.flag("saturation") {
        return saturation(args);
    }
    let sub_worlds: usize = args.get_or("sub-worlds", 2)?;
    let queue_depth: usize = args.get_or("queue-depth", 32)?;
    let max_models: usize = args.get_or("max-models", 8)?;
    let slo_ms: u64 = args.get_or("slo-ms", 0)?;
    let transport = match args.get("transport") {
        Some(spec) => TransportKind::parse(spec)?,
        None => TransportKind::default(),
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let access_log = match args.get("access-log") {
        Some(path) => {
            let sample: u64 = args.get_or("access-log-sample", 1)?;
            Some(AccessLog::open(path, sample)?)
        }
        None => None,
    };
    let access_log = Arc::new(access_log);
    let trace_out = args.get("trace-out").map(str::to_string);

    let (inf, initial, source) = build_model(args)?;
    let ranks = inf.partition().rank_count();
    let mut cfg = SchedulerConfig::default()
        .with_queue_depth(queue_depth)
        .with_max_models(max_models);
    if slo_ms > 0 {
        cfg = cfg.with_slo_ms(slo_ms);
    }
    // The session must be live before the scheduler spawns its dispatcher
    // threads: they adopt the session active *now* and propagate it to the
    // rank jobs of every request they dispatch, which is how serve-path
    // spans (tagged with the request id) end up in this trace.
    let trace = trace_out.as_ref().map(|_| pde_trace::begin());
    let health = Arc::new(pde_telemetry::health::HealthModel::new());
    let sched = Arc::new(build_scheduler(&inf, sub_worlds, transport, cfg, &health)?);
    // Unmeasured warm-up requests pay residency costs (model restore,
    // scratch sizing) before traffic arrives. Sequential on purpose: a
    // tiny --queue-depth must not shed the server's own warm-up.
    for _ in 0..sub_worlds {
        sched
            .submit("serve", std::slice::from_ref(&initial), 1)
            .map_err(|e| e.to_string())?
            .wait()
            .map_err(|e| format!("warm-up request failed: {e}"))?;
    }

    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?;
    println!(
        "serving on http://{local} — model 'serve' from {source} \
         ({sub_worlds} sub-world(s) x {ranks} ranks, {} transport, \
         queue {queue_depth}, slo {})",
        transport.label(),
        if slo_ms > 0 {
            format!("{slo_ms} ms")
        } else {
            "off".into()
        }
    );
    println!("POST /v1/rollout (GET /v1/example for a request body); /metrics /healthz /readyz; POST /shutdown to stop");

    let stop = Arc::new(AtomicBool::new(false));
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sched = sched.clone();
        let health = health.clone();
        let stop = stop.clone();
        let initial = initial.clone();
        let access_log = access_log.clone();
        let window = inf.window();
        // Thread-per-connection: request handling blocks on the scheduler
        // (possibly for a whole queued rollout), and admission control —
        // not connection count — is the concurrency limiter.
        std::thread::spawn(move || {
            let _ = handle_conn(
                stream,
                &sched,
                &health,
                &stop,
                &initial,
                window,
                &access_log,
            );
        });
    }
    drop(listener);
    println!("shutdown requested; draining scheduler…");
    // Dropping the scheduler joins its dispatchers after the queue drains.
    drop(sched);
    if let (Some(path), Some(handle)) = (trace_out, trace) {
        let json = handle.finish().chrome_json();
        std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote trace {path}");
    }
    Ok(())
}

/// Reads one HTTP request: head to `\r\n\r\n`, then `Content-Length`
/// bytes of body (the exporter's reader stops at the head; an inference
/// request *is* its body, so this one keeps going).
fn read_request(stream: &mut TcpStream) -> std::io::Result<(String, Vec<u8>)> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_HEAD || Instant::now() > deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head too large or too slow",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-head",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let content_length = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_REQUEST_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        if Instant::now() > deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request body too slow",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    Ok((head, body))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    respond_with(stream, status, "", body)
}

/// Like [`respond`] with extra header lines (each `\r\n`-terminated) —
/// the rollout route uses this for `X-PDEML-Request-Id`/`Server-Timing`.
fn respond_with(
    stream: &mut TcpStream,
    status: &str,
    extra_headers: &str,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[allow(clippy::too_many_arguments)]
fn handle_conn(
    mut stream: TcpStream,
    sched: &Scheduler,
    health: &pde_telemetry::health::HealthModel,
    stop: &AtomicBool,
    initial: &Tensor3,
    window: usize,
    access_log: &Option<AccessLog>,
) -> std::io::Result<()> {
    let (head, body) = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = respond(&mut stream, "400 Bad Request", &format!("{e}\n"));
            return Ok(());
        }
    };
    let mut first = head.lines().next().unwrap_or("").split_whitespace();
    let method = first.next().unwrap_or("");
    let path = first.next().unwrap_or("/");
    match (method, path) {
        ("GET", "/metrics") => respond(&mut stream, "200 OK", &pde_telemetry::render_prometheus()),
        ("GET", "/healthz") => {
            let report = health.report();
            let status = if report.overall != pde_telemetry::health::Health::Unhealthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            respond(&mut stream, status, &report.describe())
        }
        ("GET", "/readyz") => {
            let report = health.report();
            let status = if report.overall == pde_telemetry::health::Health::Healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            respond(&mut stream, status, &report.describe())
        }
        ("GET", "/v1/example") => {
            let mut body = String::from("model serve\nsteps 2\n");
            for _ in 0..window {
                body.push_str(&encode_state(initial));
            }
            respond(&mut stream, "200 OK", &body)
        }
        ("POST", "/v1/rollout") => {
            let text = String::from_utf8_lossy(&body);
            let (model, steps, history) = match parse_rollout_request(&text) {
                Ok(parsed) => parsed,
                Err(e) => return respond(&mut stream, "400 Bad Request", &format!("{e}\n")),
            };
            // The request id is allocated at ingress, before admission, so
            // even a shed request has an id its 429 can be correlated by.
            let id = RequestId::fresh();
            let ingress = Instant::now();
            // Admission happens inside submit; the wait happens here, on
            // this connection's thread.
            let (result, phases) = match sched.submit_with_id(id, &model, &history, steps) {
                Ok(ticket) => ticket.wait_traced(),
                Err(e) => (Err(e), RequestPhases::default()),
            };
            let total_us = ingress.elapsed().as_micros() as u64;
            let (status, body_out) = match result {
                Ok(rollout) => {
                    let mut b = format!("steps {}\n", rollout.states.len() - 1);
                    for state in &rollout.states {
                        b.push_str(&encode_state(state));
                    }
                    ("200 OK", b)
                }
                Err(e) => (status_for(&e), format!("{e}\n")),
            };
            if let Some(log) = access_log {
                let ts_ms = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                log.record(&access_log_line(
                    ts_ms, id, &model, steps, status, &phases, total_us,
                ));
            }
            let headers = format!(
                "X-PDEML-Request-Id: {id}\r\nServer-Timing: {}\r\n",
                server_timing(&phases)
            );
            respond_with(&mut stream, status, &headers, &body_out)
        }
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::Release);
            let r = respond(&mut stream, "200 OK", "shutting down\n");
            // Poke the accept loop awake so it observes the stop flag.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            r
        }
        _ => respond(&mut stream, "404 Not Found", "unknown route\n"),
    }
}

/// HTTP status for a failed rollout: caller errors are 4xx, shed load is
/// 429 (retryable), infrastructure trouble is 503.
fn status_for(e: &InferError) -> &'static str {
    match e {
        InferError::UnknownModel { .. } => "404 Not Found",
        InferError::Rejected {
            reason: RejectReason::QueueFull | RejectReason::SloBreach,
        } => "429 Too Many Requests",
        InferError::Rejected {
            reason: RejectReason::Unhealthy,
        } => "503 Service Unavailable",
        InferError::Recovering { .. } => "503 Service Unavailable",
        _ => "400 Bad Request",
    }
}

/// `state C H W v0 v1 …` — one line per state, whitespace-separated.
fn encode_state(t: &Tensor3) -> String {
    let (c, h, w) = t.shape();
    let mut line = format!("state {c} {h} {w}");
    for v in t.as_slice() {
        line.push(' ');
        // {:e} round-trips f64 exactly enough for serving (17 sig digits).
        line.push_str(&format!("{v:.17e}"));
    }
    line.push('\n');
    line
}

/// Parses a `/v1/rollout` body: `model NAME`, `steps K`, then one or more
/// `state C H W floats…` lines forming the history window.
fn parse_rollout_request(text: &str) -> Result<(String, usize, Vec<Tensor3>), String> {
    let mut model = None;
    let mut steps = None;
    let mut history = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("model") => {
                model = Some(
                    tokens
                        .next()
                        .ok_or_else(|| format!("line {}: 'model' needs a name", lineno + 1))?
                        .to_string(),
                );
            }
            Some("steps") => {
                let k: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("line {}: 'steps' needs a count", lineno + 1))?;
                steps = Some(k);
            }
            Some("state") => {
                let mut dim = || -> Result<usize, String> {
                    tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: 'state' needs C H W dims", lineno + 1))
                };
                let (c, h, w) = (dim()?, dim()?, dim()?);
                let want = c
                    .checked_mul(h)
                    .and_then(|x| x.checked_mul(w))
                    .filter(|&x| x > 0 && x <= MAX_REQUEST_BODY)
                    .ok_or_else(|| format!("line {}: bad state dims {c}x{h}x{w}", lineno + 1))?;
                let data: Vec<f64> = tokens
                    .map(|t| {
                        t.parse::<f64>()
                            .map_err(|_| format!("line {}: bad float '{t}'", lineno + 1))
                    })
                    .collect::<Result<_, _>>()?;
                if data.len() != want {
                    return Err(format!(
                        "line {}: state {c}x{h}x{w} needs {want} values, got {}",
                        lineno + 1,
                        data.len()
                    ));
                }
                history.push(Tensor3::from_vec(c, h, w, data));
            }
            Some(other) => return Err(format!("line {}: unknown field '{other}'", lineno + 1)),
            None => {}
        }
    }
    let model = model.ok_or("missing 'model' line")?;
    let steps = steps.ok_or("missing 'steps' line")?;
    if history.is_empty() {
        return Err("missing 'state' line(s)".into());
    }
    Ok((model, steps, history))
}

/// One measured point of the saturation sweep.
struct LoadPoint {
    sub_worlds: usize,
    offered_rps: f64,
    served: usize,
    rejected: usize,
    p999_ms: Option<f64>,
    /// Queue-wait percentiles over served requests — how much of the tail
    /// is waiting versus computing at this offered load.
    queue_p50_ms: Option<f64>,
    queue_p99_ms: Option<f64>,
}

/// `pdeml serve --saturation` — open-loop offered-load sweep against the
/// scheduler (no HTTP in the measured path), at 1/2/4 sub-worlds. Each
/// request is submitted at its scheduled arrival time from its own thread,
/// so a saturated scheduler sheds (bounded queue) instead of the load
/// generator slowing down — that is what makes "offered" load offered.
fn saturation(args: &Args) -> Result<(), String> {
    let steps: usize = args.get_or("steps", 2)?;
    let queue_depth: usize = args.get_or("queue-depth", 8)?;
    let per_point: usize = args.get_or("requests", 96)?;
    let transport = match args.get("transport") {
        Some(spec) => TransportKind::parse(spec)?,
        None => TransportKind::default(),
    };
    let sub_world_counts: Vec<usize> = args
        .get("sub-worlds-list")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--sub-worlds-list: not a number: {t}"))
        })
        .collect::<Result<_, _>>()?;
    let (inf, initial, source) = build_model(args)?;
    let ranks = inf.partition().rank_count();

    // Calibrate: closed-loop serial throughput of one sub-world sets the
    // sweep's unit of offered load, so the ladder lands around saturation
    // on any machine.
    let health = Arc::new(pde_telemetry::health::HealthModel::new());
    let base_rps = {
        let sched = build_scheduler(
            &inf,
            1,
            transport,
            SchedulerConfig::default().with_queue_depth(queue_depth),
            &health,
        )?;
        let n = 24usize;
        // First request pays residency; excluded from the measured window.
        sched
            .submit("serve", std::slice::from_ref(&initial), steps)
            .map_err(|e| e.to_string())?
            .wait()
            .map_err(|e| e.to_string())?;
        let t0 = Instant::now();
        for _ in 0..n {
            sched
                .submit("serve", std::slice::from_ref(&initial), steps)
                .map_err(|e| e.to_string())?
                .wait()
                .map_err(|e| e.to_string())?;
        }
        n as f64 / t0.elapsed().as_secs_f64()
    };
    println!(
        "saturation: {source} ({ranks} ranks/sub-world, {} transport, steps {steps}, \
         queue {queue_depth}); single sub-world closed-loop {base_rps:.1} req/s",
        transport.label()
    );
    println!(
        "{:>10} {:>12} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "sub-worlds",
        "offered r/s",
        "served",
        "rejected",
        "p99.9 ms",
        "q p50 ms",
        "q p99 ms",
        "rej rate"
    );

    let ladder = [0.5, 1.0, 1.5, 2.0, 3.0];
    let mut points: Vec<LoadPoint> = Vec::new();
    for &sub_worlds in &sub_world_counts {
        let health = Arc::new(pde_telemetry::health::HealthModel::new());
        let sched = Arc::new(build_scheduler(
            &inf,
            sub_worlds,
            transport,
            SchedulerConfig::default().with_queue_depth(queue_depth),
            &health,
        )?);
        // Warm every sub-world before measuring.
        let warm: Vec<Ticket> = (0..sub_worlds * 2)
            .map(|_| {
                sched
                    .submit("serve", std::slice::from_ref(&initial), steps)
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<_, _>>()?;
        for t in warm {
            t.wait().map_err(|e| e.to_string())?;
        }
        for &mult in &ladder {
            let offered = base_rps * mult;
            let interval = Duration::from_secs_f64(1.0 / offered);
            let t0 = Instant::now() + Duration::from_millis(20);
            let handles: Vec<_> = (0..per_point)
                .map(|k| {
                    let sched = sched.clone();
                    let initial = initial.clone();
                    std::thread::spawn(move || {
                        let due = t0 + interval * k as u32;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let submitted = Instant::now();
                        match sched.submit("serve", std::slice::from_ref(&initial), steps) {
                            Ok(ticket) => {
                                let (result, phases) = ticket.wait_traced();
                                match result {
                                    Ok(_) => Ok((
                                        submitted.elapsed().as_secs_f64() * 1e3,
                                        phases.queue_us as f64 / 1e3,
                                    )),
                                    Err(e) => Err(e),
                                }
                            }
                            Err(e) => Err(e),
                        }
                    })
                })
                .collect();
            let mut latencies = Vec::new();
            let mut queue_waits = Vec::new();
            let mut rejected = 0usize;
            for h in handles {
                match h.join().expect("load thread") {
                    Ok((ms, queue_ms)) => {
                        latencies.push(ms);
                        queue_waits.push(queue_ms);
                    }
                    Err(InferError::Rejected { .. }) => rejected += 1,
                    Err(e) => return Err(format!("saturation request failed: {e}")),
                }
            }
            latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            queue_waits.sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
            let p999 = crate::commands::percentile(&latencies, 99.9);
            let queue_p50 = crate::commands::percentile(&queue_waits, 50.0);
            let queue_p99 = crate::commands::percentile(&queue_waits, 99.0);
            let rate = rejected as f64 / per_point as f64;
            println!(
                "{sub_worlds:>10} {offered:>12.1} {:>8} {rejected:>9} {:>10} {:>9} {:>9} {rate:>9.3}",
                latencies.len(),
                crate::commands::fmt_ms(p999),
                crate::commands::fmt_ms(queue_p50),
                crate::commands::fmt_ms(queue_p99),
            );
            points.push(LoadPoint {
                sub_worlds,
                offered_rps: offered,
                served: latencies.len(),
                rejected,
                p999_ms: p999,
                queue_p50_ms: queue_p50,
                queue_p99_ms: queue_p99,
            });
        }
    }

    if let Some(out) = args.get("out") {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{ \"sub_worlds\": {}, \"offered_rps\": {:.1}, \"served\": {}, \
                     \"rejected\": {}, \"p999_ms\": {}, \"queue_p50_ms\": {}, \
                     \"queue_p99_ms\": {}, \"rejection_rate\": {:.4} }}",
                    p.sub_worlds,
                    p.offered_rps,
                    p.served,
                    p.rejected,
                    crate::commands::json_num(p.p999_ms),
                    crate::commands::json_num(p.queue_p50_ms),
                    crate::commands::json_num(p.queue_p99_ms),
                    p.rejected as f64 / per_point as f64
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"base_rps\": {base_rps:.1},\n  \"steps\": {steps},\n  \
             \"queue_depth\": {queue_depth},\n  \"requests_per_point\": {per_point},\n  \
             \"transport\": \"{}\",\n  \"points\": [\n{}\n  ]\n}}\n",
            transport.label(),
            rows.join(",\n")
        );
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_lines_round_trip_bitwise() {
        let t = Tensor3::from_vec(
            2,
            1,
            3,
            vec![0.1, -2.5e-17, 3.0, f64::MIN_POSITIVE, 1e300, -0.0],
        );
        let body = format!("model m\nsteps 4\n{}", encode_state(&t));
        let (model, steps, history) = parse_rollout_request(&body).unwrap();
        assert_eq!(model, "m");
        assert_eq!(steps, 4);
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].as_slice(), t.as_slice(), "exact f64 round-trip");
    }

    #[test]
    fn access_log_line_is_json_with_the_three_phases() {
        let phases = RequestPhases {
            queue_us: 120,
            dispatch_us: 45,
            rollout_us: 9_800,
        };
        let line = access_log_line(
            1_700_000_000_000,
            RequestId(42),
            "se\"rve",
            3,
            "429 Too Many Requests",
            &phases,
            10_000,
        );
        assert!(line.ends_with('\n'));
        assert_eq!(
            line.trim_end(),
            "{\"ts_ms\":1700000000000,\"id\":42,\"model\":\"se\\\"rve\",\"steps\":3,\
             \"status\":429,\"queue_us\":120,\"dispatch_us\":45,\"rollout_us\":9800,\
             \"total_us\":10000}"
        );
        assert_eq!(
            server_timing(&phases),
            "queue;dur=0.120, dispatch;dur=0.045, rollout;dur=9.800"
        );
    }

    #[test]
    fn malformed_requests_are_parse_errors() {
        assert!(parse_rollout_request("").is_err());
        assert!(parse_rollout_request("model m\nsteps 2\n").is_err());
        assert!(parse_rollout_request("model m\nstate 1 1 1 0.0\n").is_err());
        assert!(parse_rollout_request("steps 2\nstate 1 1 1 0.0\n").is_err());
        // Value count must match the declared dims.
        assert!(parse_rollout_request("model m\nsteps 1\nstate 1 2 2 0.0\n").is_err());
        // Dims must not overflow.
        let huge = format!("model m\nsteps 1\nstate {} {} 2 0.0\n", usize::MAX, 2);
        assert!(parse_rollout_request(&huge).is_err());
    }
}
