//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs plus valueless `--flag` switches.
pub struct Args {
    /// Flags map to the empty string; `get`/`require` treat that as "no
    /// value" so a bare `--out --trace t.json` still errors out.
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses a flat `--key value` list. An option followed by another
    /// `--option` (or by the end of the line) is stored as a boolean flag —
    /// query it with [`Args::flag`].
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut it = argv.iter().peekable();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, got '{key}'"));
            };
            // The next token is this option's value unless it is itself an
            // option (negative numbers like `-0.5` don't start with `--`).
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => String::new(),
            };
            if values.insert(name.to_string(), value).is_some() {
                return Err(format!("--{name} given twice"));
            }
        }
        Ok(Self { values })
    }

    /// Raw string option (None when absent or given as a bare flag).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .map(|s| s.as_str())
            .filter(|s| !s.is_empty())
    }

    /// True when the option was present at all, with or without a value.
    pub fn flag(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        match self.values.get(name) {
            Some(v) if !v.is_empty() => Ok(v),
            Some(_) => Err(format!("--{name} needs a value")),
            None => Err(format!("missing required --{name}")),
        }
    }

    /// Optional parsed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&sv(&["--grid", "64", "--out", "x.bin"])).unwrap();
        assert_eq!(a.get("grid"), Some("64"));
        assert_eq!(a.require("out").unwrap(), "x.bin");
        assert_eq!(a.get_or("epochs", 7usize).unwrap(), 7);
        assert_eq!(a.get_or("grid", 0usize).unwrap(), 64);
    }

    #[test]
    fn rejects_bare_words_and_missing_values() {
        assert!(Args::parse(&sv(&["grid"])).is_err());
        assert!(Args::parse(&sv(&["--a", "1", "--a", "2"])).is_err());
        // A valueless option parses as a flag but cannot satisfy `require`.
        let a = Args::parse(&sv(&["--grid"])).unwrap();
        assert!(a.require("grid").is_err());
        assert_eq!(a.get("grid"), None);
    }

    #[test]
    fn boolean_flags_mix_with_valued_options() {
        let a = Args::parse(&sv(&["--quick", "--trace", "t.json", "--verbose"])).unwrap();
        assert!(a.flag("quick"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("absent"));
        assert_eq!(a.get("trace"), Some("t.json"));
        // `--quick` swallowing `--trace` as its value would break this:
        assert_eq!(a.get("quick"), None);
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = Args::parse(&sv(&["--lr", "-0.5"])).unwrap();
        assert_eq!(a.get_or("lr", 0.0f64).unwrap(), -0.5);
    }

    #[test]
    fn reports_unparsable_values() {
        let a = Args::parse(&sv(&["--epochs", "many"])).unwrap();
        assert!(a.get_or("epochs", 1usize).is_err());
        assert!(a.require("absent").is_err());
    }
}
