//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses a flat `--key value` list; flags without values are rejected
    /// (every option of `pdeml` takes a value).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, got '{key}'"));
            };
            let Some(value) = it.next() else {
                return Err(format!("--{name} needs a value"));
            };
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("--{name} given twice"));
            }
        }
        Ok(Self { values })
    }

    /// Raw string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    /// Optional parsed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&sv(&["--grid", "64", "--out", "x.bin"])).unwrap();
        assert_eq!(a.get("grid"), Some("64"));
        assert_eq!(a.require("out").unwrap(), "x.bin");
        assert_eq!(a.get_or("epochs", 7usize).unwrap(), 7);
        assert_eq!(a.get_or("grid", 0usize).unwrap(), 64);
    }

    #[test]
    fn rejects_bare_words_and_missing_values() {
        assert!(Args::parse(&sv(&["grid"])).is_err());
        assert!(Args::parse(&sv(&["--grid"])).is_err());
        assert!(Args::parse(&sv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn reports_unparsable_values() {
        let a = Args::parse(&sv(&["--epochs", "many"])).unwrap();
        assert!(a.get_or("epochs", 1usize).is_err());
        assert!(a.require("absent").is_err());
    }
}
