//! Shared fixtures for the pde-bench benchmark suite.
//!
//! Benchmarks intentionally run at reduced sizes (small grids, few epochs)
//! so the whole suite finishes on a single core; the `examples/` harnesses
//! take environment overrides for paper-scale runs. What matters for the
//! paper's claims is *relative* cost (who wins, where crossovers fall), and
//! those relations are size-stable for this workload.

use pde_euler::dataset::{paper_dataset, DataSet};

/// A small, deterministically generated dataset shared by several benches.
pub fn bench_dataset(grid: usize, snapshots: usize) -> DataSet {
    paper_dataset(grid, snapshots)
}

/// Standard reduced-size benchmark grid.
pub const BENCH_GRID: usize = 32;

/// Standard snapshot count.
pub const BENCH_SNAPSHOTS: usize = 12;
