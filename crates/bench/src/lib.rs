//! Shared fixtures for the pde-bench benchmark suite.
//!
//! Benchmarks intentionally run at reduced sizes (small grids, few epochs)
//! so the whole suite finishes on a single core; the `examples/` harnesses
//! take environment overrides for paper-scale runs. What matters for the
//! paper's claims is *relative* cost (who wins, where crossovers fall), and
//! those relations are size-stable for this workload.

use pde_euler::dataset::{paper_dataset, DataSet};

/// One row of the kernel-throughput baseline (`BENCH_kernels.json`).
pub struct KernelEntry {
    /// Full benchmark id, e.g. `gemm/packed/layer2-16x150x4096`.
    pub id: String,
    /// Mean wall-clock seconds per iteration.
    pub mean_s: f64,
    /// Derived sustained GFLOP/s.
    pub gflops: f64,
}

/// Merges kernel-bench results into the committed `BENCH_kernels.json`
/// baseline at the workspace root.
///
/// The file is a flat JSON array with one object per line. Each bench binary
/// owns the ids under its `prefix` (`"gemm/"`, `"conv/"`): existing rows with
/// that prefix are replaced, rows written by the other bench are preserved,
/// so `cargo bench --bench kernel_gemm --bench kernel_conv` in any order
/// produces the same file.
pub fn merge_kernel_baseline(prefix: &str, entries: &[KernelEntry]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let mut rows: Vec<String> = std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .filter(|l| l.trim_start().starts_with("{\"id\": \""))
                .filter(|l| !l.contains(&format!("{{\"id\": \"{prefix}")))
                .map(|l| l.trim_end_matches(',').to_string())
                .collect()
        })
        .unwrap_or_default();
    for e in entries {
        rows.push(format!(
            "  {{\"id\": \"{}\", \"mean_s\": {:.6e}, \"gflops\": {:.3}}}",
            e.id, e.mean_s, e.gflops
        ));
    }
    rows.sort();
    std::fs::write(path, format!("[\n{}\n]\n", rows.join(",\n")))
        .expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

/// A small, deterministically generated dataset shared by several benches.
pub fn bench_dataset(grid: usize, snapshots: usize) -> DataSet {
    paper_dataset(grid, snapshots)
}

/// Standard reduced-size benchmark grid.
pub const BENCH_GRID: usize = 32;

/// Standard snapshot count.
pub const BENCH_SNAPSHOTS: usize = 12;
