//! GEMM kernel throughput on the Table-I layer shapes.
//!
//! Benchmarks the kernel layer in `pde-tensor` against the repo's previous
//! cache-blocked kernel (reproduced below verbatim as `seed_gemm`), so the
//! speedup is measured in the same run with identical codegen flags. Each
//! shape gets one row per configuration — `scalar-1t` (portable floor),
//! `simd-1t` / `tn-simd-1t` / `nt-simd-1t` (the three transpose variants on
//! the best SIMD path, one thread) and `simd-nt` (SIMD × all cores) — so
//! the two acceleration levels are separable in `BENCH_kernels.json`.
//! Shapes are the `(out_c × col_rows × col_cols)` GEMMs the
//! paper's CNN lowers to on a 64×64 subdomain: layer 1 maps 4 input channels
//! through 5×5 kernels to 6 channels (6×100×4096), layer 2 maps 6 to 16
//! (16×150×4096), layer 3 maps 16 back to 4 (4×400×4096).
//!
//! The final "report" step writes `BENCH_kernels.json` at the workspace root
//! with mean seconds/iter and derived GFLOP/s per benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pde_tensor::{force_kernel_path, gemm, kernel_path, pool, KernelPath};

/// The pre-packing seed kernel: cache-blocked triple loop with a zero-skip
/// branch, copied unchanged so the comparison is honest.
#[allow(clippy::needless_range_loop)]
fn seed_gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const BLOCK: usize = 64;
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let a_row = &a[i * k..(i + 1) * k];
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for p in p0..p1 {
                        let av = a_row[p];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n..(p + 1) * n];
                        for j in j0..j1 {
                            c_row[j] += av * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

fn det_fill(len: usize, seed: u64) -> Vec<f64> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 2000) as f64 / 1000.0 - 1.0
        })
        .collect()
}

/// Table-I layer GEMM shapes `(label, m, k, n)` for a 64×64 subdomain.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("layer1-6x100x4096", 6, 100, 4096),
    ("layer2-16x150x4096", 16, 150, 4096),
    ("layer3-4x400x4096", 4, 400, 4096),
];

/// The SIMD flavor for the `simd-*` rows: the detected default, which is
/// the best supported path unless `PDEML_KERNEL` overrides it — so
/// `PDEML_KERNEL=avx2 cargo bench` measures the AVX2 rows on an AVX-512
/// machine.
fn best_simd() -> KernelPath {
    kernel_path()
}

fn bench_gemm(c: &mut Criterion) {
    let simd = best_simd();
    let cores = pool::available_cores();
    println!(
        "kernel paths: scalar + {} (detected default {}), {} core(s) for the -nt rows",
        simd.label(),
        kernel_path().label(),
        cores
    );
    let mut group = c.benchmark_group("gemm");
    for &(label, m, k, n) in SHAPES {
        let a = det_fill(m * k, 42);
        let b = det_fill(k * n, 7);
        let bt = det_fill(n * k, 7); // B stored n × k for the *Bᵀ path
        let mut out = vec![0.0; m * n];
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(BenchmarkId::new("seed", label), &(), |bencher, _| {
            bencher.iter(|| seed_gemm(m, k, n, &a, &b, &mut out));
        });
        // Single-threaded scalar: the portable floor every machine shares,
        // and the baseline the CI bench-smoke holds the SIMD rows against.
        pool::set_thread_budget(1);
        force_kernel_path(Some(KernelPath::Scalar));
        group.bench_with_input(BenchmarkId::new("scalar-1t", label), &(), |bencher, _| {
            bencher.iter(|| gemm::gemm(m, k, n, &a, &b, &mut out));
        });
        // Single-threaded SIMD: isolates the micro-kernel speedup.
        force_kernel_path(Some(simd));
        group.bench_with_input(BenchmarkId::new("simd-1t", label), &(), |bencher, _| {
            bencher.iter(|| gemm::gemm(m, k, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("tn-simd-1t", label), &(), |bencher, _| {
            // A stored k × m for the transposed-A path.
            bencher.iter(|| gemm::gemm_tn(m, k, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("nt-simd-1t", label), &(), |bencher, _| {
            bencher.iter(|| gemm::gemm_nt(m, k, n, &a, &bt, &mut out));
        });
        // SIMD with the full machine: the two levels composed.
        pool::set_thread_budget(cores);
        group.bench_with_input(BenchmarkId::new("simd-nt", label), &(), |bencher, _| {
            bencher.iter(|| gemm::gemm(m, k, n, &a, &b, &mut out));
        });
        pool::set_thread_budget(1);
        force_kernel_path(None);
    }
    group.finish();
}

/// Not a benchmark: prints GFLOP/s for every result and merges them into the
/// JSON baseline. Runs last in the group so it sees all records.
fn report(c: &mut Criterion) {
    let mut entries = Vec::new();
    println!("\n{:<38} {:>12} {:>10}", "benchmark", "s/iter", "GFLOP/s");
    for r in c.results() {
        // Recover the shape from the id suffix "...-MxKxN".
        let shape = r.id.rsplit('-').next().unwrap_or("");
        let dims: Vec<f64> = shape.split('x').filter_map(|t| t.parse().ok()).collect();
        let gflops = if dims.len() == 3 && r.mean_s > 0.0 {
            2.0 * dims.iter().product::<f64>() / r.mean_s / 1e9
        } else {
            0.0
        };
        println!("{:<38} {:>12.3e} {:>10.2}", r.id, r.mean_s, gflops);
        entries.push(pde_bench::KernelEntry {
            id: r.id.clone(),
            mean_s: r.mean_s,
            gflops,
        });
    }
    pde_bench::merge_kernel_baseline("gemm/", &entries);
}

criterion_group!(benches, bench_gemm, report);
criterion_main!(benches);
