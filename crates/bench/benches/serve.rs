//! Bench S1 — serving cost: one request through a warm [`InferEngine`]
//! (persistent world, resident models, reusable scratch) versus a cold
//! [`ParallelInference`] call that spawns threads and restores weights per
//! request, plus the batched entry point that amortizes job submission
//! over K independent initial conditions.
//!
//! The committed baseline numbers live in `BENCH_serve.json`, regenerated
//! with `pdeml serve-bench --quick --out BENCH_serve.json` (release build).

use criterion::{criterion_group, criterion_main, Criterion};
use pde_bench::{bench_dataset, BENCH_GRID, BENCH_SNAPSHOTS};
use pde_ml_core::prelude::*;
use pde_tensor::Tensor3;
use std::hint::black_box;

const STEPS: usize = 2;

fn trained_inference() -> (pde_euler::DataSet, ParallelInference) {
    let data = bench_dataset(BENCH_GRID, BENCH_SNAPSHOTS);
    let arch = ArchSpec::tiny();
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 1;
    let strategy = PaddingStrategy::ZeroPad;
    let outcome = ParallelTrainer::new(arch.clone(), strategy, cfg)
        .train(&data, 4)
        .expect("train");
    let inf = ParallelInference::from_outcome(arch, strategy, &outcome);
    (data, inf)
}

fn warm_vs_cold_request(c: &mut Criterion) {
    let (data, inf) = trained_inference();
    let initial = data.snapshot(0).clone();

    let mut group = c.benchmark_group("serve/request");
    group.sample_size(10);
    group.bench_function("cold_world", |b| {
        b.iter(|| black_box(inf.rollout(black_box(&initial), STEPS).unwrap()))
    });

    let mut engine = InferEngine::new(4);
    engine.register("serve", inf).unwrap();
    // Residency warm-up: first request pays thread-local buffer growth.
    engine.rollout("serve", &initial, STEPS).unwrap();
    group.bench_function("warm_engine", |b| {
        b.iter(|| black_box(engine.rollout("serve", black_box(&initial), STEPS).unwrap()))
    });
    group.finish();
}

fn batched_requests(c: &mut Criterion) {
    let (data, inf) = trained_inference();
    let initials: Vec<Tensor3> = (0..8).map(|k| data.snapshot(k).clone()).collect();
    let histories: Vec<&[Tensor3]> = initials.iter().map(std::slice::from_ref).collect();

    let mut engine = InferEngine::new(4);
    engine.register("serve", inf).unwrap();
    engine.rollout("serve", &initials[0], STEPS).unwrap();

    let mut group = c.benchmark_group("serve/eight_requests");
    group.sample_size(10);
    group.bench_function("sequential_warm", |b| {
        b.iter(|| {
            for initial in &initials {
                black_box(engine.rollout("serve", initial, STEPS).unwrap());
            }
        })
    });
    group.bench_function("one_batch", |b| {
        b.iter(|| black_box(engine.rollout_batch("serve", &histories, STEPS).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, warm_vs_cold_request, batched_requests);
criterion_main!(benches);
