//! Convolution kernel throughput on the Table-I layers.
//!
//! Times the im2col+GEMM forward pass and both backward passes for each of
//! the paper's three conv layers on a 64×64 subdomain, reporting sustained
//! GFLOP/s (2 · out_c · in_c·kh·kw · out_h·out_w FLOPs per sample per pass).
//! Results merge into the `BENCH_kernels.json` baseline next to the raw GEMM
//! numbers from `kernel_gemm`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pde_tensor::conv::ConvScratch;
use pde_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_im2col, Conv2dSpec, Tensor4,
};

/// Batch size for every timed pass.
const SAMPLES: usize = 4;
/// Subdomain edge (64×64 interior, "same" padding keeps it fixed).
const EDGE: usize = 64;

/// The paper's three conv layers: `(label, in_c, out_c)`, all 5×5 "same".
const LAYERS: &[(&str, usize, usize)] = &[
    ("layer1-4to6", 4, 6),
    ("layer2-6to16", 6, 16),
    ("layer3-16to4", 16, 4),
];

fn det_t4(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor4 {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let data = (0..n * c * h * w)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 2000) as f64 / 1000.0 - 1.0
        })
        .collect();
    Tensor4::from_vec(n, c, h, w, data)
}

/// FLOPs of one pass over the batch for a layer.
fn layer_flops(in_c: usize, out_c: usize) -> u64 {
    (2 * SAMPLES * out_c * in_c * 5 * 5 * EDGE * EDGE) as u64
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv");
    group.sample_size(50);
    for &(label, in_c, out_c) in LAYERS {
        let spec = Conv2dSpec::same(in_c, out_c, 5);
        let x = det_t4(SAMPLES, in_c, EDGE, EDGE, 11);
        let w = det_t4(out_c, in_c, 5, 5, 12);
        let bias = vec![0.01; out_c];
        let mut scratch = ConvScratch::new();
        let y = conv2d_im2col(&x, &w, &bias, &spec, &mut scratch);
        group.throughput(Throughput::Elements(layer_flops(in_c, out_c)));
        group.bench_with_input(BenchmarkId::new("forward", label), &(), |bencher, _| {
            bencher.iter(|| conv2d_im2col(&x, &w, &bias, &spec, &mut scratch));
        });
        group.bench_with_input(
            BenchmarkId::new("backward_input", label),
            &(),
            |bencher, _| {
                bencher.iter(|| conv2d_backward_input(&y, &w, &spec, EDGE, EDGE, &mut scratch));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("backward_weight", label),
            &(),
            |bencher, _| {
                let mut gw = Tensor4::zeros(out_c, in_c, 5, 5);
                let mut gb = vec![0.0; out_c];
                bencher
                    .iter(|| conv2d_backward_weight(&x, &y, &spec, &mut gw, &mut gb, &mut scratch));
            },
        );
    }
    group.finish();
}

/// Prints GFLOP/s per result and merges them into the JSON baseline.
fn report(c: &mut Criterion) {
    let mut entries = Vec::new();
    println!("\n{:<38} {:>12} {:>10}", "benchmark", "s/iter", "GFLOP/s");
    for r in c.results() {
        let flops = LAYERS
            .iter()
            .find(|(label, _, _)| r.id.ends_with(label))
            .map(|&(_, in_c, out_c)| layer_flops(in_c, out_c))
            .unwrap_or(0);
        let gflops = if r.mean_s > 0.0 {
            flops as f64 / r.mean_s / 1e9
        } else {
            0.0
        };
        println!("{:<38} {:>12.3e} {:>10.2}", r.id, r.mean_s, gflops);
        entries.push(pde_bench::KernelEntry {
            id: r.id.clone(),
            mean_s: r.mean_s,
            gflops,
        });
    }
    pde_bench::merge_kernel_baseline("conv/", &entries);
}

criterion_group!(benches, bench_conv, report);
criterion_main!(benches);
