//! Bench X4 — §II loss claim ("we have observed that the mean absolute
//! percentage error is better suited … the measured values have different
//! orders of magnitudes"): per-epoch time of each loss, plus a printed
//! comparison of per-field validation error after training with MAPE vs
//! MSE. The statistical assertion lives in `tests/ablations.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_bench::{bench_dataset, BENCH_GRID, BENCH_SNAPSHOTS};
use pde_ml_core::data::SubdomainDataset;
use pde_ml_core::metrics::field_errors;
use pde_ml_core::prelude::*;
use pde_ml_core::train::{train_network, LossKind};
use pde_nn::Layer;
use pde_tensor::Tensor4;
use std::hint::black_box;

fn loss_ablation(c: &mut Criterion) {
    let data = bench_dataset(BENCH_GRID, BENCH_SNAPSHOTS);
    let arch = ArchSpec::tiny();
    let strategy = PaddingStrategy::ZeroPad;
    let part = GridPartition::for_ranks(BENCH_GRID, BENCH_GRID, 4);
    let n_train = data.pair_count() - 2;
    let view = data.view(0, n_train);
    let ds = SubdomainDataset::build(
        &view,
        &part,
        0,
        arch.halo(),
        strategy,
        &pde_ml_core::norm::ChannelNorm::fit(&view),
    );

    // Convergence/accuracy comparison: train with each loss, evaluate
    // per-field errors on a held-out pair.
    println!("\nper-field validation MAPE after 10 epochs, by training loss:");
    let losses = [
        LossKind::Mape { floor: 1e-3 },
        LossKind::Mse,
        LossKind::Mae,
        LossKind::Huber { delta: 0.1 },
    ];
    let (vx, vy) = data.pair(n_train);
    let block = part.block_of_rank(0);
    let val_in = pde_ml_core::data::extract_input(vx, &block, 0, strategy.boundary_pad_mode());
    let val_tgt = pde_ml_core::data::extract_target(vy, &block, 0);
    for loss in losses {
        let mut cfg = TrainConfig::paper();
        cfg.epochs = 10;
        cfg.loss = loss;
        let mut net = arch.build_for(strategy, 0);
        let _ = train_network(&mut net, &ds, &cfg);
        let pred = net
            .forward(&Tensor4::from_sample(&val_in), false)
            .sample_tensor(0);
        let errs = field_errors(&pred, &val_tgt, 1e-3);
        let mean_mape = errs.iter().map(|e| e.mape).sum::<f64>() / errs.len() as f64;
        println!("  {:<8} mean MAPE {:8.2}%", loss.label(), mean_mape);
    }

    let mut group = c.benchmark_group("ablation_loss/one_epoch");
    group.sample_size(10);
    for loss in losses {
        let mut cfg = TrainConfig::quick_test();
        cfg.epochs = 1;
        cfg.loss = loss;
        group.bench_with_input(BenchmarkId::from_parameter(loss.label()), &loss, |b, _| {
            b.iter(|| {
                let mut net = arch.build_for(strategy, 0);
                black_box(train_network(&mut net, &ds, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, loss_ablation);
criterion_main!(benches);
