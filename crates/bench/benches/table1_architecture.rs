//! Bench T1 — Table I companion: cost of each of the paper's four conv
//! layers (forward, and forward+backward) at a fixed spatial size, plus the
//! full stack. Regenerates the per-layer numbers printed by
//! `examples/table1_architecture.rs` under criterion statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_ml_core::arch::ArchSpec;
use pde_nn::{Conv2d, Layer};
use pde_tensor::Tensor4;
use std::hint::black_box;

fn layer_benches(c: &mut Criterion) {
    let arch = ArchSpec::paper();
    let (h, w) = (32, 32);
    let mut group = c.benchmark_group("table1/layer_forward");
    group.sample_size(20);
    for row in arch.layer_rows() {
        let mut conv = Conv2d::same(row.in_channels, row.out_channels, arch.kernel);
        let x = Tensor4::from_fn(1, row.in_channels, h, w, |_, ch, i, j| {
            ((ch + i) as f64 * 0.1 + j as f64 * 0.01).sin()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("conv{}", row.layer)),
            &x,
            |b, x| b.iter(|| black_box(conv.forward(black_box(x), false))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("table1/layer_forward_backward");
    group.sample_size(20);
    for row in arch.layer_rows() {
        let mut conv = Conv2d::same(row.in_channels, row.out_channels, arch.kernel);
        let x = Tensor4::from_fn(1, row.in_channels, h, w, |_, ch, i, j| {
            ((ch + i) as f64 * 0.1 + j as f64 * 0.01).cos()
        });
        let g = conv.forward(&x, true);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("conv{}", row.layer)),
            &x,
            |b, x| {
                b.iter(|| {
                    conv.zero_grad();
                    let _ = conv.forward(black_box(x), true);
                    black_box(conv.backward(black_box(&g)))
                })
            },
        );
    }
    group.finish();
}

fn stack_bench(c: &mut Criterion) {
    let arch = ArchSpec::paper();
    let mut net = arch.build(true, 0);
    let x = Tensor4::from_fn(1, 4, 32, 32, |_, ch, i, j| {
        ((ch * 7 + i * 3 + j) as f64 * 0.01).sin()
    });
    c.bench_function("table1/full_stack_forward_32x32", |b| {
        b.iter(|| black_box(net.forward(black_box(&x), false)))
    });
}

criterion_group!(benches, layer_benches, stack_bench);
criterion_main!(benches);
