//! Bench F4 — Fig. 4: strong scaling of training time with rank count.
//!
//! Measures the real threaded trainer at P ∈ {1, 2, 4} on a fixed global
//! grid (criterion reports the wall time per P — the measured series), and
//! additionally benches per-rank work at the subdomain sizes P = 1, 4, 16,
//! 64 would produce. On a multi-core host the first series shows the Fig.-4
//! drop directly; on a single core the second series shows the per-rank
//! work shrinking by 1/P, which combined with the zero-communication
//! property (proved in tests) yields the paper's curve — see
//! `examples/fig4_scaling.rs` for the calibrated 64-core projection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_bench::bench_dataset;
use pde_euler::dataset::paper_dataset;
use pde_ml_core::data::SubdomainDataset;
use pde_ml_core::prelude::*;
use pde_ml_core::train::train_network;
use std::hint::black_box;

const GRID: usize = 32;

fn threaded_strong_scaling(c: &mut Criterion) {
    let data = bench_dataset(GRID, 10);
    let arch = ArchSpec::tiny();
    let strategy = PaddingStrategy::ZeroPad;
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 2;
    let mut group = c.benchmark_group("fig4/threaded_training");
    group.sample_size(10);
    for ranks in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &p| {
            let t = ParallelTrainer::new(arch.clone(), strategy, cfg.clone());
            b.iter(|| black_box(t.train(&data, p).expect("train")))
        });
    }
    group.finish();
}

fn per_rank_work_vs_subdomain(c: &mut Criterion) {
    // Subdomain sides a 32-grid decomposition would give each rank at
    // P = 1, 4, 16, 64 (side / √P). Per-rank training cost must scale ~1/P.
    let arch = ArchSpec::tiny();
    let strategy = PaddingStrategy::ZeroPad;
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 1;
    let mut group = c.benchmark_group("fig4/per_rank_epoch_by_P");
    group.sample_size(10);
    for (p, side) in [(1usize, 32usize), (4, 16), (16, 8), (64, 4)] {
        let data = paper_dataset(side, 10);
        let part = GridPartition::new(side, side, 1, 1);
        let view = data.view(0, data.pair_count());
        let ds = SubdomainDataset::build(
            &view,
            &part,
            0,
            arch.halo(),
            strategy,
            &pde_ml_core::norm::ChannelNorm::fit(&view),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("P{p}_side{side}")),
            &p,
            |b, _| {
                b.iter(|| {
                    let mut net = arch.build_for(strategy, 0);
                    black_box(train_network(&mut net, &ds, &cfg))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, threaded_strong_scaling, per_rank_work_vs_subdomain);
criterion_main!(benches);
