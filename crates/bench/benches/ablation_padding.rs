//! Bench X1 — §III padding-strategy ablation: time cost of one training
//! epoch and one inference step under each strategy.
//!
//! Zero padding and neighbor padding differ in input size (bare interior
//! vs. interior + halo) and in convolution geometry ("same" vs. valid), so
//! their per-epoch cost differs measurably; inner-crop trains on valid
//! convolutions with the smallest outputs. The accuracy side of the
//! ablation is produced by `examples/padding_ablation.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_bench::{bench_dataset, BENCH_GRID, BENCH_SNAPSHOTS};
use pde_ml_core::data::SubdomainDataset;
use pde_ml_core::prelude::*;
use pde_ml_core::train::train_network;
use std::hint::black_box;

fn epoch_cost_by_strategy(c: &mut Criterion) {
    let data = bench_dataset(BENCH_GRID, BENCH_SNAPSHOTS);
    let arch = ArchSpec::tiny();
    let part = GridPartition::for_ranks(BENCH_GRID, BENCH_GRID, 4);
    let view = data.view(0, data.pair_count());
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 1;

    let mut group = c.benchmark_group("ablation_padding/one_rank_epoch");
    group.sample_size(10);
    for strategy in PaddingStrategy::ALL {
        let ds = SubdomainDataset::build(
            &view,
            &part,
            0,
            arch.halo(),
            strategy,
            &pde_ml_core::norm::ChannelNorm::fit(&view),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &s| {
                b.iter(|| {
                    let mut net = arch.build_for(s, 0);
                    black_box(train_network(&mut net, &ds, &cfg))
                })
            },
        );
    }
    group.finish();
}

fn inference_cost_by_strategy(c: &mut Criterion) {
    let data = bench_dataset(BENCH_GRID, BENCH_SNAPSHOTS);
    let arch = ArchSpec::tiny();
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 1;
    let mut group = c.benchmark_group("ablation_padding/parallel_step");
    group.sample_size(10);
    for strategy in [PaddingStrategy::ZeroPad, PaddingStrategy::NeighborPad] {
        let outcome = ParallelTrainer::new(arch.clone(), strategy, cfg.clone())
            .train(&data, 4)
            .expect("train");
        let inf = ParallelInference::from_outcome(arch.clone(), strategy, &outcome);
        let initial = data.snapshot(0).clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, _| b.iter(|| black_box(inf.rollout(black_box(&initial), 1))),
        );
    }
    group.finish();
}

criterion_group!(benches, epoch_cost_by_strategy, inference_cost_by_strategy);
criterion_main!(benches);
