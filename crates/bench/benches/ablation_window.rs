//! Bench X6 — time-window ablation (extension toward the paper's §V
//! future work on temporal connectivity): cost of one training epoch and
//! one rollout step as the input window grows from 1 to 3 snapshots, plus
//! a printed rollout-quality comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_bench::{bench_dataset, BENCH_GRID, BENCH_SNAPSHOTS};
use pde_ml_core::metrics::rollout_error_curve;
use pde_ml_core::prelude::*;
use pde_ml_core::train::PredictionMode;
use std::hint::black_box;

fn windowed_arch(window: usize) -> ArchSpec {
    let mut arch = ArchSpec::tiny();
    arch.channels[0] = 4 * window;
    arch
}

fn window_ablation(c: &mut Criterion) {
    let data = bench_dataset(BENCH_GRID, BENCH_SNAPSHOTS + 12);
    let n_train = data.pair_count() - 8;
    let horizon = 6;

    // Quality comparison printed once: rollout error at the horizon.
    println!("\nrollout mean-RMSE at horizon {horizon} by window width (residual mode):");
    for window in [1usize, 2, 3] {
        let arch = windowed_arch(window);
        let mut cfg = TrainConfig::paper_residual();
        cfg.epochs = 10;
        cfg.batch_size = 8;
        cfg.window = window;
        let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
            .train_view(&data, n_train, 4)
            .expect("train");
        let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
        let history: Vec<_> = (n_train + 1 - window..=n_train)
            .map(|k| data.snapshot(k).clone())
            .collect();
        let roll = inf.rollout_from_history(&history, horizon).unwrap();
        let reference: Vec<_> = (0..=horizon)
            .map(|s| data.snapshot(n_train + s).clone())
            .collect();
        let curve = rollout_error_curve(&roll.states, &reference);
        println!("  window {window}: {:.4e}", curve[horizon]);
    }

    let mut group = c.benchmark_group("ablation_window/training_run");
    group.sample_size(10);
    for window in [1usize, 2, 3] {
        let arch = windowed_arch(window);
        let mut cfg = TrainConfig::paper_residual();
        cfg.epochs = 1;
        cfg.batch_size = 8;
        cfg.window = window;
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            let t = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg.clone());
            b.iter(|| black_box(t.train_view(&data, n_train, 4).expect("train")))
        });
    }
    group.finish();

    let _ = PredictionMode::Residual;
}

criterion_group!(benches, window_ablation);
criterion_main!(benches);
