//! Bench X2 — the paper's scheme vs. the Viviani-style allreduce baseline:
//! full training wall time at the same rank count and epoch budget.
//!
//! The scheme's per-rank work is 1/P of the domain with zero communication;
//! the baseline keeps the full domain per replica (1/P of the *batches*)
//! and pays an allreduce per batch. The bench exposes both the compute gap
//! and the messaging overhead of the thread-backed allreduce; the byte
//! counts are reported by `examples/baseline_comparison.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_bench::{bench_dataset, BENCH_GRID, BENCH_SNAPSHOTS};
use pde_ml_core::baseline::DataParallelTrainer;
use pde_ml_core::prelude::*;
use std::hint::black_box;

fn scheme_vs_baseline(c: &mut Criterion) {
    let data = bench_dataset(BENCH_GRID, BENCH_SNAPSHOTS);
    let arch = ArchSpec::tiny();
    let strategy = PaddingStrategy::ZeroPad;
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 2;
    let n_pairs = data.pair_count();
    let ranks = 4;

    let mut group = c.benchmark_group("ablation_baseline/full_training");
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::from_parameter("subdomain_scheme"),
        &ranks,
        |b, &p| {
            let t = ParallelTrainer::new(arch.clone(), strategy, cfg.clone());
            b.iter(|| black_box(t.train_view(&data, n_pairs, p).expect("scheme")))
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("allreduce_baseline"),
        &ranks,
        |b, &p| {
            let t = DataParallelTrainer::new(arch.clone(), strategy, cfg.clone());
            b.iter(|| black_box(t.train(&data, n_pairs, p).expect("baseline")))
        },
    );

    group.finish();
}

criterion_group!(benches, scheme_vs_baseline);
criterion_main!(benches);
