//! Bench X3 — §II optimizer claim ("we found the ADAM optimizer to have
//! the best performance"): per-epoch time cost of each optimizer on the
//! subdomain task. The convergence-quality side (loss after a fixed epoch
//! budget) is asserted by `tests/ablations.rs` and printed by this bench's
//! setup phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_bench::{bench_dataset, BENCH_GRID, BENCH_SNAPSHOTS};
use pde_ml_core::data::SubdomainDataset;
use pde_ml_core::prelude::*;
use pde_ml_core::train::{train_network, OptimizerKind};
use std::hint::black_box;

fn optimizer_epoch_cost(c: &mut Criterion) {
    let data = bench_dataset(BENCH_GRID, BENCH_SNAPSHOTS);
    let arch = ArchSpec::tiny();
    let strategy = PaddingStrategy::ZeroPad;
    let part = GridPartition::for_ranks(BENCH_GRID, BENCH_GRID, 4);
    let view = data.view(0, data.pair_count());
    let ds = SubdomainDataset::build(
        &view,
        &part,
        0,
        arch.halo(),
        strategy,
        &pde_ml_core::norm::ChannelNorm::fit(&view),
    );

    // Print the convergence comparison once (criterion benches are run
    // with --bench, so this lands in the bench log next to the timings).
    println!("\noptimizer convergence after 10 epochs (final mean MAPE per batch):");
    for opt in [
        OptimizerKind::Adam,
        OptimizerKind::Sgd,
        OptimizerKind::SgdMomentum(0.9),
        OptimizerKind::RmsProp,
    ] {
        let mut cfg = TrainConfig::paper();
        cfg.epochs = 10;
        cfg.optimizer = opt;
        let mut net = arch.build_for(strategy, 0);
        let losses = train_network(&mut net, &ds, &cfg);
        println!("  {:<14} {:8.3}", opt.label(), losses.last().unwrap());
    }

    let mut group = c.benchmark_group("ablation_optimizer/one_epoch");
    group.sample_size(10);
    for opt in [
        OptimizerKind::Adam,
        OptimizerKind::Sgd,
        OptimizerKind::SgdMomentum(0.9),
        OptimizerKind::RmsProp,
    ] {
        let mut cfg = TrainConfig::quick_test();
        cfg.epochs = 1;
        cfg.optimizer = opt;
        group.bench_with_input(BenchmarkId::from_parameter(opt.label()), &opt, |b, _| {
            b.iter(|| {
                let mut net = arch.build_for(strategy, 0);
                black_box(train_network(&mut net, &ds, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, optimizer_epoch_cost);
criterion_main!(benches);
