//! Rectangular index blocks and halo margins.

/// A rectangle of global grid cells: rows `i0..i0+h`, columns `j0..j0+w`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// First global row.
    pub i0: usize,
    /// First global column.
    pub j0: usize,
    /// Row count.
    pub h: usize,
    /// Column count.
    pub w: usize,
}

/// Per-side halo cell counts that could *not* be satisfied from inside the
/// global domain and therefore must be synthesized by padding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Margins {
    /// Missing cells above (smaller i).
    pub top: usize,
    /// Missing cells below.
    pub bottom: usize,
    /// Missing cells left of the block.
    pub left: usize,
    /// Missing cells right of the block.
    pub right: usize,
}

impl Margins {
    /// True when no padding is needed (fully interior block).
    pub fn is_zero(&self) -> bool {
        self.top == 0 && self.bottom == 0 && self.left == 0 && self.right == 0
    }
}

impl Block {
    /// Number of cells.
    pub fn area(&self) -> usize {
        self.h * self.w
    }

    /// Exclusive end row.
    pub fn i1(&self) -> usize {
        self.i0 + self.h
    }

    /// Exclusive end column.
    pub fn j1(&self) -> usize {
        self.j0 + self.w
    }

    /// True when `(i, j)` lies inside the block.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i >= self.i0 && i < self.i1() && j >= self.j0 && j < self.j1()
    }

    /// True when the blocks share at least one cell.
    pub fn intersects(&self, other: &Block) -> bool {
        self.i0 < other.i1() && other.i0 < self.i1() && self.j0 < other.j1() && other.j0 < self.j1()
    }

    /// Grows the block by `halo` cells on every side, clipped to the global
    /// `gh × gw` grid. Returns the clipped block plus the [`Margins`] that
    /// fell outside and must be padded.
    ///
    /// This is the paper's overlapping-input construction: "we increase the
    /// input dimension … input data for neighboring processes are
    /// overlapping" (§III).
    pub fn extended(&self, halo: usize, gh: usize, gw: usize) -> (Block, Margins) {
        assert!(
            self.i1() <= gh && self.j1() <= gw,
            "Block::extended: block outside global grid"
        );
        let i0 = self.i0.saturating_sub(halo);
        let j0 = self.j0.saturating_sub(halo);
        let i1 = (self.i1() + halo).min(gh);
        let j1 = (self.j1() + halo).min(gw);
        let clipped = Block {
            i0,
            j0,
            h: i1 - i0,
            w: j1 - j0,
        };
        let margins = Margins {
            top: halo - (self.i0 - i0),
            left: halo - (self.j0 - j0),
            bottom: halo - (i1 - self.i1()),
            right: halo - (j1 - self.j1()),
        };
        (clipped, margins)
    }

    /// Position of this (interior) block inside its own extended block:
    /// the local row/col offset where interior data starts.
    pub fn interior_offset_in_extended(&self, halo: usize) -> (usize, usize) {
        (halo.min(self.i0), halo.min(self.j0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_bounds() {
        let b = Block {
            i0: 2,
            j0: 3,
            h: 4,
            w: 5,
        };
        assert_eq!(b.area(), 20);
        assert_eq!(b.i1(), 6);
        assert_eq!(b.j1(), 8);
        assert!(b.contains(2, 3));
        assert!(b.contains(5, 7));
        assert!(!b.contains(6, 3));
        assert!(!b.contains(2, 8));
    }

    #[test]
    fn intersection_detection() {
        let a = Block {
            i0: 0,
            j0: 0,
            h: 4,
            w: 4,
        };
        let b = Block {
            i0: 3,
            j0: 3,
            h: 4,
            w: 4,
        };
        let c = Block {
            i0: 4,
            j0: 0,
            h: 2,
            w: 4,
        };
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn extended_interior_block_has_no_margins() {
        let b = Block {
            i0: 4,
            j0: 4,
            h: 4,
            w: 4,
        };
        let (e, m) = b.extended(2, 16, 16);
        assert_eq!(
            e,
            Block {
                i0: 2,
                j0: 2,
                h: 8,
                w: 8
            }
        );
        assert!(m.is_zero());
    }

    #[test]
    fn extended_corner_block_reports_margins() {
        let b = Block {
            i0: 0,
            j0: 0,
            h: 4,
            w: 4,
        };
        let (e, m) = b.extended(2, 16, 16);
        assert_eq!(
            e,
            Block {
                i0: 0,
                j0: 0,
                h: 6,
                w: 6
            }
        );
        assert_eq!(
            m,
            Margins {
                top: 2,
                left: 2,
                bottom: 0,
                right: 0
            }
        );
    }

    #[test]
    fn extended_full_grid_block_pads_everywhere() {
        let b = Block {
            i0: 0,
            j0: 0,
            h: 8,
            w: 8,
        };
        let (e, m) = b.extended(3, 8, 8);
        assert_eq!(e, b);
        assert_eq!(
            m,
            Margins {
                top: 3,
                left: 3,
                bottom: 3,
                right: 3
            }
        );
    }

    #[test]
    fn interior_offset_matches_margins() {
        let b = Block {
            i0: 0,
            j0: 4,
            h: 4,
            w: 4,
        };
        assert_eq!(b.interior_offset_in_extended(2), (0, 2));
        let c = Block {
            i0: 6,
            j0: 0,
            h: 2,
            w: 4,
        };
        assert_eq!(c.interior_offset_in_extended(2), (2, 0));
    }
}
