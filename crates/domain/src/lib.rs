//! # pde-domain
//!
//! 2-D Cartesian domain decomposition: the bookkeeping behind the paper's
//! core idea of "decompos\[ing\] each individual training data set into
//! smaller sections and feed\[ing\] each subsection into an independent
//! neural network" (§III).
//!
//! The crate is pure geometry — no communication. It answers:
//!
//! * which global cells belong to rank `r` ([`GridPartition`], [`Block`]);
//! * what the rank's *input* region is once the conv-stack halo is added
//!   ([`Block::extended`]), including how much of that halo falls outside
//!   the physical domain and must be synthesized by padding;
//! * how to slice a global snapshot into per-rank tensors and stitch them
//!   back ([`scatter`], [`gather`]);
//! * how to pack/unpack the boundary strips exchanged between neighbors
//!   during parallel inference ([`halo`]).
//!
//! `pde-ml-core` combines this with `pde-commsim` to realize the paper's
//! training (communication-free) and inference (p2p halo exchange) phases.

pub mod block;
pub mod halo;
pub mod partition;

pub use block::{Block, Margins};
pub use halo::{pack_cols, pack_rows, place_cols, place_rows};
pub use partition::GridPartition;

use pde_tensor::Tensor3;

/// Slices a global snapshot into per-rank interior tensors, rank order.
pub fn scatter(global: &Tensor3, part: &GridPartition) -> Vec<Tensor3> {
    part.blocks()
        .map(|b| global.window(b.i0, b.j0, b.h, b.w))
        .collect()
}

/// Reassembles per-rank interior tensors into a global snapshot — the
/// inverse of [`scatter`].
///
/// # Panics
/// If the tensor list does not match the partition (count, shapes,
/// channel counts).
pub fn gather(locals: &[Tensor3], part: &GridPartition) -> Tensor3 {
    assert_eq!(
        locals.len(),
        part.rank_count(),
        "gather: wrong number of local tensors"
    );
    assert!(!locals.is_empty(), "gather: empty input");
    let c = locals[0].c();
    let mut global = Tensor3::zeros(c, part.global_h(), part.global_w());
    for (local, b) in locals.iter().zip(part.blocks()) {
        assert_eq!(
            local.shape(),
            (c, b.h, b.w),
            "gather: rank tensor shape does not match its block"
        );
        global.set_window(b.i0, b.j0, local);
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gather_round_trip() {
        let part = GridPartition::new(10, 12, 2, 3);
        let global = Tensor3::from_fn(4, 10, 12, |c, i, j| (c * 1000 + i * 12 + j) as f64);
        let locals = scatter(&global, &part);
        assert_eq!(locals.len(), 6);
        assert_eq!(gather(&locals, &part), global);
    }

    #[test]
    fn scatter_respects_uneven_splits() {
        // 7 rows over 2 ranks: 4 + 3.
        let part = GridPartition::new(7, 7, 2, 1);
        let global = Tensor3::from_fn(1, 7, 7, |_, i, j| (i * 7 + j) as f64);
        let locals = scatter(&global, &part);
        assert_eq!(locals[0].shape(), (1, 4, 7));
        assert_eq!(locals[1].shape(), (1, 3, 7));
        assert_eq!(locals[1][(0, 0, 0)], 28.0); // row 4 starts at 4*7
    }

    #[test]
    #[should_panic(expected = "wrong number")]
    fn gather_rejects_wrong_count() {
        let part = GridPartition::new(8, 8, 2, 2);
        let _ = gather(&[Tensor3::zeros(1, 4, 4)], &part);
    }
}
