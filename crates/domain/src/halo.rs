//! Packing and placing of halo strips.
//!
//! During parallel inference each rank's network needs a `halo`-cell-wide
//! border of neighbor data around its own output before the next forward
//! pass (§III: "Extra data points must be received from the neighboring
//! processes"). These helpers turn multi-channel tensors into flat strip
//! buffers (what goes over the communicator) and back.
//!
//! Strips are packed channel-major, row-major within a channel — the same
//! layout as [`Tensor3`] itself — so a strip of `c` channels, `rows` rows
//! and `cols` columns occupies `c * rows * cols` values.

use pde_tensor::Tensor3;

/// Packs `count` rows starting at row `i0` (all channels, full width).
pub fn pack_rows(t: &Tensor3, i0: usize, count: usize) -> Vec<f64> {
    t.window(i0, 0, count, t.w()).into_vec()
}

/// Packs `count` columns starting at column `j0` (all channels, full
/// height).
pub fn pack_cols(t: &Tensor3, j0: usize, count: usize) -> Vec<f64> {
    t.window(0, j0, t.h(), count).into_vec()
}

/// Writes a strip produced by [`pack_rows`] into `dst` at row `i0`.
///
/// # Panics
/// If the buffer length is not `c * count * dst.w()`.
pub fn place_rows(dst: &mut Tensor3, i0: usize, count: usize, buf: &[f64]) {
    let strip = Tensor3::from_vec(dst.c(), count, dst.w(), buf.to_vec());
    dst.set_window(i0, 0, &strip);
}

/// Writes a strip produced by [`pack_cols`] into `dst` at column `j0`.
///
/// # Panics
/// If the buffer length is not `c * dst.h() * count`.
pub fn place_cols(dst: &mut Tensor3, j0: usize, count: usize, buf: &[f64]) {
    let strip = Tensor3::from_vec(dst.c(), dst.h(), count, buf.to_vec());
    dst.set_window(0, j0, &strip);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor3 {
        Tensor3::from_fn(2, 4, 5, |c, i, j| (c * 100 + i * 10 + j) as f64)
    }

    #[test]
    fn pack_rows_layout() {
        let t = sample();
        let top = pack_rows(&t, 0, 2);
        assert_eq!(top.len(), 2 * 2 * 5);
        // Channel 0, row 0: 0..4 ; row 1: 10..14 ; then channel 1.
        assert_eq!(&top[0..5], &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&top[5..10], &[10.0, 11.0, 12.0, 13.0, 14.0]);
        assert_eq!(top[10], 100.0);
    }

    #[test]
    fn pack_cols_layout() {
        let t = sample();
        let right = pack_cols(&t, 3, 2);
        assert_eq!(right.len(), 2 * 4 * 2);
        // Channel 0, rows 0..4, columns 3..5.
        assert_eq!(&right[0..2], &[3.0, 4.0]);
        assert_eq!(&right[2..4], &[13.0, 14.0]);
    }

    #[test]
    fn pack_place_rows_round_trip() {
        let t = sample();
        let strip = pack_rows(&t, 1, 2);
        let mut dst = Tensor3::zeros(2, 4, 5);
        place_rows(&mut dst, 1, 2, &strip);
        assert_eq!(dst.window(1, 0, 2, 5), t.window(1, 0, 2, 5));
        // Untouched rows stay zero.
        assert_eq!(dst[(0, 0, 0)], 0.0);
        assert_eq!(dst[(1, 3, 2)], 0.0);
    }

    #[test]
    fn pack_place_cols_round_trip() {
        let t = sample();
        let strip = pack_cols(&t, 0, 1);
        let mut dst = Tensor3::zeros(2, 4, 5);
        place_cols(&mut dst, 4, 1, &strip);
        for c in 0..2 {
            for i in 0..4 {
                assert_eq!(dst[(c, i, 4)], t[(c, i, 0)]);
            }
        }
    }

    #[test]
    fn neighbor_strip_transfer_simulates_halo() {
        // Two side-by-side 4×5 subdomains: right edge of A fills the left
        // halo of B's padded tensor.
        let a = sample();
        let halo = 2;
        let strip = pack_cols(&a, a.w() - halo, halo);
        let mut b_padded = Tensor3::zeros(2, 4, 5 + 2 * halo);
        place_cols(&mut b_padded, 0, halo, &strip);
        for c in 0..2 {
            for i in 0..4 {
                assert_eq!(b_padded[(c, i, 0)], a[(c, i, 3)]);
                assert_eq!(b_padded[(c, i, 1)], a[(c, i, 4)]);
            }
        }
    }
}
