//! Balanced block partitions of a global grid over a process grid.

use crate::block::Block;

/// A `py × px` balanced block partition of an `h × w` global grid.
///
/// Rows are split into `py` contiguous bands, columns into `px` contiguous
/// bands; band sizes differ by at most one cell (the first `h % py` bands
/// get the extra row). Rank `r` owns the block at process-grid coordinates
/// `(r / px, r % px)`, matching `pde-commsim`'s row-major `CartComm`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridPartition {
    h: usize,
    w: usize,
    py: usize,
    px: usize,
}

/// Start index of band `b` when splitting `n` cells into `k` bands.
#[inline]
fn band_start(n: usize, k: usize, b: usize) -> usize {
    // First (n % k) bands have ⌈n/k⌉ cells, the rest ⌊n/k⌋.
    let q = n / k;
    let r = n % k;
    b * q + b.min(r)
}

impl GridPartition {
    /// New partition.
    ///
    /// # Panics
    /// If the grid is smaller than the process grid in either direction.
    pub fn new(h: usize, w: usize, py: usize, px: usize) -> Self {
        assert!(py >= 1 && px >= 1, "GridPartition: empty process grid");
        assert!(
            h >= py && w >= px,
            "GridPartition: {h}x{w} grid cannot feed {py}x{px} processes"
        );
        Self { h, w, py, px }
    }

    /// Picks a near-square process grid for `n_ranks` and builds the
    /// partition. Prefers `py * px == n_ranks` with `py ≤ px` and the two
    /// as close as possible (4 → 2×2, 8 → 2×4, 64 → 8×8).
    pub fn for_ranks(h: usize, w: usize, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "GridPartition: need at least one rank");
        let mut py = (n_ranks as f64).sqrt() as usize;
        while py >= 1 {
            if n_ranks.is_multiple_of(py) {
                return Self::new(h, w, py, n_ranks / py);
            }
            py -= 1;
        }
        unreachable!("py = 1 always divides n_ranks");
    }

    /// Global grid height.
    pub fn global_h(&self) -> usize {
        self.h
    }

    /// Global grid width.
    pub fn global_w(&self) -> usize {
        self.w
    }

    /// Process-grid height.
    pub fn py(&self) -> usize {
        self.py
    }

    /// Process-grid width.
    pub fn px(&self) -> usize {
        self.px
    }

    /// Total rank count.
    pub fn rank_count(&self) -> usize {
        self.py * self.px
    }

    /// Block owned by process-grid position `(row, col)`.
    pub fn block_at(&self, row: usize, col: usize) -> Block {
        assert!(
            row < self.py && col < self.px,
            "block_at: ({row},{col}) outside process grid"
        );
        let i0 = band_start(self.h, self.py, row);
        let i1 = band_start(self.h, self.py, row + 1);
        let j0 = band_start(self.w, self.px, col);
        let j1 = band_start(self.w, self.px, col + 1);
        Block {
            i0,
            j0,
            h: i1 - i0,
            w: j1 - j0,
        }
    }

    /// Block owned by `rank` (row-major rank layout).
    pub fn block_of_rank(&self, rank: usize) -> Block {
        assert!(
            rank < self.rank_count(),
            "block_of_rank: rank {rank} out of range"
        );
        self.block_at(rank / self.px, rank % self.px)
    }

    /// Iterator over all blocks in rank order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        (0..self.rank_count()).map(|r| self.block_of_rank(r))
    }

    /// The rank owning global cell `(i, j)`.
    pub fn owner_of(&self, i: usize, j: usize) -> usize {
        assert!(i < self.h && j < self.w, "owner_of: cell outside grid");
        // Invert band_start by scanning (py, px ≤ 64 in practice; O(k) is fine
        // and obviously correct).
        let row = (0..self.py)
            .find(|&b| i < band_start(self.h, self.py, b + 1))
            .expect("row band");
        let col = (0..self.px)
            .find(|&b| j < band_start(self.w, self.px, b + 1))
            .expect("col band");
        row * self.px + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_tile_the_grid_exactly() {
        for &(h, w, py, px) in &[
            (8, 8, 2, 2),
            (7, 11, 3, 2),
            (256, 256, 8, 8),
            (10, 10, 1, 10),
        ] {
            let part = GridPartition::new(h, w, py, px);
            let mut covered = vec![0u8; h * w];
            for b in part.blocks() {
                for i in b.i0..b.i1() {
                    for j in b.j0..b.j1() {
                        covered[i * w + j] += 1;
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "({h},{w},{py},{px}): not an exact tiling"
            );
        }
    }

    #[test]
    fn block_sizes_are_balanced() {
        let part = GridPartition::new(10, 10, 3, 3);
        let areas: Vec<usize> = part.blocks().map(|b| b.area()).collect();
        let min = *areas.iter().min().unwrap();
        let max = *areas.iter().max().unwrap();
        // 10 = 4+3+3 per direction → areas between 9 and 16.
        assert!(max <= 16 && min >= 9, "areas {areas:?}");
        assert_eq!(areas.iter().sum::<usize>(), 100);
    }

    #[test]
    fn owner_of_agrees_with_blocks() {
        let part = GridPartition::new(9, 7, 2, 3);
        for (r, b) in part.blocks().enumerate() {
            for i in b.i0..b.i1() {
                for j in b.j0..b.j1() {
                    assert_eq!(part.owner_of(i, j), r);
                }
            }
        }
    }

    #[test]
    fn for_ranks_prefers_square_grids() {
        assert_eq!(GridPartition::for_ranks(64, 64, 4).py(), 2);
        assert_eq!(GridPartition::for_ranks(64, 64, 4).px(), 2);
        assert_eq!(GridPartition::for_ranks(64, 64, 64).py(), 8);
        let p8 = GridPartition::for_ranks(64, 64, 8);
        assert_eq!((p8.py(), p8.px()), (2, 4));
        let p1 = GridPartition::for_ranks(64, 64, 1);
        assert_eq!((p1.py(), p1.px()), (1, 1));
        // Primes fall back to 1×n.
        let p7 = GridPartition::for_ranks(64, 64, 7);
        assert_eq!((p7.py(), p7.px()), (1, 7));
    }

    #[test]
    fn rank_layout_is_row_major() {
        let part = GridPartition::new(8, 8, 2, 2);
        assert_eq!(part.block_of_rank(0), part.block_at(0, 0));
        assert_eq!(part.block_of_rank(1), part.block_at(0, 1));
        assert_eq!(part.block_of_rank(2), part.block_at(1, 0));
        assert_eq!(part.block_of_rank(3), part.block_at(1, 1));
    }

    #[test]
    #[should_panic(expected = "cannot feed")]
    fn rejects_oversubscribed_grid() {
        let _ = GridPartition::new(2, 8, 4, 1);
    }
}
