//! A small discrete-event simulator for scheduling rank tasks on a fixed
//! number of simulated cores.
//!
//! Used when the simulated machine has fewer cores than ranks
//! (oversubscription) — e.g. to predict what the paper's 64-rank run would
//! look like on a 16-core box. Tasks are scheduled greedily (longest
//! processing time first) on the earliest-free core, the classic LPT
//! heuristic; for the equal-sized tasks of a balanced decomposition this is
//! optimal.

/// One schedulable unit of rank work.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Task {
    /// Rank that owns the work (for reporting).
    pub rank: usize,
    /// Seconds of compute.
    pub seconds: f64,
}

/// A simulated homogeneous multi-core machine.
#[derive(Clone, Debug)]
pub struct ClusterSim {
    cores: usize,
}

impl ClusterSim {
    /// A machine with `cores` identical cores.
    pub fn new(cores: usize) -> Self {
        assert!(cores >= 1, "ClusterSim: need at least one core");
        Self { cores }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Schedules the tasks (LPT on earliest-free core) and returns the
    /// makespan in seconds.
    pub fn makespan(&self, tasks: &[Task]) -> f64 {
        let mut sorted: Vec<f64> = tasks.iter().map(|t| t.seconds).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("task times must be comparable"));
        let mut core_free = vec![0.0f64; self.cores];
        for t in sorted {
            // Earliest-free core: linear scan (core counts are small).
            let (idx, _) = core_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            core_free[idx] += t;
        }
        core_free.iter().fold(0.0f64, |m, &t| m.max(t))
    }

    /// Convenience: makespan of `p` equal tasks of `seconds` each.
    pub fn makespan_uniform(&self, p: usize, seconds: f64) -> f64 {
        let tasks: Vec<Task> = (0..p).map(|rank| Task { rank, seconds }).collect();
        self.makespan(&tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_core_serializes_everything() {
        let sim = ClusterSim::new(1);
        assert!((sim.makespan_uniform(8, 2.0) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn enough_cores_run_fully_parallel() {
        let sim = ClusterSim::new(8);
        assert!((sim.makespan_uniform(8, 2.0) - 2.0).abs() < 1e-12);
        assert!((sim.makespan_uniform(4, 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscription_rounds_up() {
        // 6 equal tasks on 4 cores: two cores take 2 tasks → makespan 2t.
        let sim = ClusterSim::new(4);
        assert!((sim.makespan_uniform(6, 1.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_packs_mixed_tasks_well() {
        let sim = ClusterSim::new(2);
        let tasks = [
            Task {
                rank: 0,
                seconds: 3.0,
            },
            Task {
                rank: 1,
                seconds: 3.0,
            },
            Task {
                rank: 2,
                seconds: 2.0,
            },
            Task {
                rank: 3,
                seconds: 2.0,
            },
            Task {
                rank: 4,
                seconds: 2.0,
            },
        ];
        // Optimal: {3,3} on one core? No — LPT: 3→c0, 3→c1, 2→c0(5), 2→c1(5),
        // 2→c0 or c1 (7). Optimal is 6 ({3,3},{2,2,2}); LPT gives 7 — a
        // known 7/6 worst case. Assert the LPT value (documented behaviour).
        assert!((sim.makespan(&tasks) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_task_list_has_zero_makespan() {
        assert_eq!(ClusterSim::new(4).makespan(&[]), 0.0);
    }
}
