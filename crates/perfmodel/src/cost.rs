//! Per-rank compute cost, calibrated from real measurements.

/// Linear cost model `T(cells) = overhead + rate · cells` per epoch.
///
/// The convolutional training step is O(cells · kernel² · channels); for a
/// fixed architecture that is linear in the cell count, which matches the
/// measured behaviour of `pde-ml-core::train` closely (see the calibration
/// test below and `examples/fig4_scaling.rs`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed per-epoch seconds (batching, allocation, bookkeeping).
    pub overhead_s: f64,
    /// Seconds per grid cell per epoch.
    pub rate_s_per_cell: f64,
}

impl CostModel {
    /// Builds a model from explicit coefficients.
    pub fn new(overhead_s: f64, rate_s_per_cell: f64) -> Self {
        assert!(
            overhead_s >= 0.0 && rate_s_per_cell > 0.0,
            "CostModel: nonphysical coefficients"
        );
        Self {
            overhead_s,
            rate_s_per_cell,
        }
    }

    /// Least-squares fit of `(cells, seconds_per_epoch)` samples.
    ///
    /// A negative fitted intercept is clamped to zero (a per-epoch cost
    /// cannot be negative; tiny negative fits arise from measurement noise).
    ///
    /// # Panics
    /// If fewer than 2 samples or all with the same cell count.
    pub fn calibrate(samples: &[(f64, f64)]) -> Self {
        assert!(
            samples.len() >= 2,
            "CostModel::calibrate: need >= 2 samples"
        );
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|s| s.0).sum();
        let sy: f64 = samples.iter().map(|s| s.1).sum();
        let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
        let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
        let det = n * sxx - sx * sx;
        assert!(
            det.abs() > 1e-12,
            "CostModel::calibrate: degenerate samples"
        );
        let rate = (n * sxy - sx * sy) / det;
        let overhead = ((sy - rate * sx) / n).max(0.0);
        assert!(
            rate > 0.0,
            "CostModel::calibrate: non-positive rate (bad samples?)"
        );
        Self {
            overhead_s: overhead,
            rate_s_per_cell: rate,
        }
    }

    /// Seconds one rank needs for one epoch over `cells` grid cells.
    pub fn epoch_seconds(&self, cells: usize) -> f64 {
        self.overhead_s + self.rate_s_per_cell * cells as f64
    }

    /// Seconds for a full training run.
    pub fn training_seconds(&self, cells: usize, epochs: usize) -> f64 {
        self.epoch_seconds(cells) * epochs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_linear_data() {
        let m = CostModel::calibrate(&[(100.0, 1.2), (200.0, 2.2), (400.0, 4.2)]);
        assert!((m.rate_s_per_cell - 0.01).abs() < 1e-12);
        assert!((m.overhead_s - 0.2).abs() < 1e-12);
        assert!((m.epoch_seconds(300) - 3.2).abs() < 1e-12);
    }

    #[test]
    fn negative_intercept_is_clamped() {
        let m = CostModel::calibrate(&[(100.0, 0.9), (200.0, 2.0)]);
        assert_eq!(m.overhead_s, 0.0);
    }

    #[test]
    fn training_scales_with_epochs() {
        let m = CostModel::new(0.0, 1e-6);
        assert!((m.training_seconds(1000, 50) - 50.0 * 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_constant_x() {
        let _ = CostModel::calibrate(&[(100.0, 1.0), (100.0, 2.0)]);
    }
}
