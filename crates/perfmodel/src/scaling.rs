//! Strong-scaling sweep drivers — the Fig.-4 series generator.

use crate::cluster::ClusterSim;
use crate::cost::CostModel;
use crate::network::NetworkModel;

/// One point of a scaling curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Rank count P.
    pub ranks: usize,
    /// Predicted training wall time.
    pub seconds: f64,
    /// Speedup relative to P = 1.
    pub speedup: f64,
    /// Parallel efficiency (speedup / P).
    pub efficiency: f64,
}

/// Strong scaling of the **paper's scheme**: a `cells`-cell global grid
/// split over P ranks, `epochs` epochs, zero training communication.
///
/// `cores` is the simulated machine size; when `cores ≥ P` every rank has
/// its own core (the paper's setting), otherwise ranks are time-shared.
///
/// The returned curve is exactly the paper's Fig. 4 shape: `T(P) ≈ T(1)/P`
/// until per-epoch overhead (the model's intercept) dominates.
pub fn strong_scaling(
    cost: &CostModel,
    cells: usize,
    epochs: usize,
    rank_counts: &[usize],
    cores: usize,
) -> Vec<ScalingPoint> {
    assert!(!rank_counts.is_empty(), "strong_scaling: no rank counts");
    let sim = ClusterSim::new(cores);
    let t1 = cost.training_seconds(cells, epochs).max(f64::MIN_POSITIVE);
    rank_counts
        .iter()
        .map(|&p| {
            assert!(p >= 1, "strong_scaling: P must be >= 1");
            let per_rank = cost.training_seconds(cells.div_ceil(p), epochs);
            let seconds = sim.makespan_uniform(p, per_rank);
            let speedup = t1 / seconds;
            ScalingPoint {
                ranks: p,
                seconds,
                speedup,
                efficiency: speedup / p as f64,
            }
        })
        .collect()
}

/// Strong scaling of the **allreduce baseline**: every rank trains a
/// full-domain replica on `1/P` of the time steps and averages weights
/// after every batch.
///
/// `steps_per_epoch(p)` is the number of allreduce rounds one epoch incurs
/// at P = p (i.e. the per-rank batch count); `weight_bytes` the model size.
#[allow(clippy::too_many_arguments)]
pub fn strong_scaling_baseline(
    cost: &CostModel,
    net: &NetworkModel,
    cells: usize,
    epochs: usize,
    weight_bytes: usize,
    batches_per_epoch: impl Fn(usize) -> usize,
    rank_counts: &[usize],
    cores: usize,
) -> Vec<ScalingPoint> {
    assert!(
        !rank_counts.is_empty(),
        "strong_scaling_baseline: no rank counts"
    );
    let sim = ClusterSim::new(cores);
    // P = 1 reference: full data, full domain, no communication.
    let t1 = cost.training_seconds(cells, epochs).max(f64::MIN_POSITIVE);
    rank_counts
        .iter()
        .map(|&p| {
            assert!(p >= 1, "strong_scaling_baseline: P must be >= 1");
            // Compute shrinks with the data chunking (1/P of the batches),
            // but every batch still runs the FULL-domain network.
            let compute = cost.training_seconds(cells, epochs) / p as f64;
            let comm = epochs as f64 * batches_per_epoch(p) as f64 * net.allreduce(weight_bytes, p);
            let seconds = sim.makespan_uniform(p, compute).max(compute) + comm;
            let speedup = t1 / seconds;
            ScalingPoint {
                ranks: p,
                seconds,
                speedup,
                efficiency: speedup / p as f64,
            }
        })
        .collect()
}

/// Renders a scaling curve as a fixed-width table (the Fig.-4 companion).
pub fn format_scaling_table(points: &[ScalingPoint]) -> String {
    let mut s = format!(
        "{:>6} {:>14} {:>10} {:>11}\n",
        "ranks", "time[s]", "speedup", "efficiency"
    );
    for p in points {
        s.push_str(&format!(
            "{:>6} {:>14.6} {:>10.2} {:>11.3}\n",
            p.ranks, p.seconds, p.speedup, p.efficiency
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::new(0.0, 1e-6)
    }

    #[test]
    fn ideal_scheme_scales_perfectly() {
        let pts = strong_scaling(&cost(), 65536, 10, &[1, 4, 16, 64], 64);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        for p in &pts {
            assert!(
                (p.efficiency - 1.0).abs() < 1e-9,
                "P={} efficiency {}",
                p.ranks,
                p.efficiency
            );
        }
        // T(64) == T(1)/64.
        assert!((pts[3].seconds * 64.0 - pts[0].seconds).abs() < 1e-9);
    }

    #[test]
    fn overhead_caps_the_speedup() {
        let m = CostModel::new(0.5, 1e-6); // big fixed per-epoch cost
        let pts = strong_scaling(&m, 65536, 10, &[1, 64], 64);
        assert!(pts[1].efficiency < 0.05, "overhead should dominate at P=64");
    }

    #[test]
    fn oversubscribed_cores_flatten_the_curve() {
        // 64 ranks on 4 cores: wall time can't drop below T(1)/4.
        let pts = strong_scaling(&cost(), 65536, 10, &[1, 4, 64], 4);
        let t1 = pts[0].seconds;
        assert!((pts[1].seconds - t1 / 4.0).abs() < 1e-9);
        assert!(
            (pts[2].seconds - t1 / 4.0).abs() < 1e-6,
            "64 ranks on 4 cores ≈ T(1)/4"
        );
    }

    #[test]
    fn baseline_pays_for_allreduce() {
        let net = NetworkModel::new(1e-4, 1e-9); // slow network
        let scheme = strong_scaling(&cost(), 65536, 10, &[64], 64);
        let base =
            strong_scaling_baseline(&cost(), &net, 65536, 10, 5 * 1024 * 8, |_| 16, &[64], 64);
        assert!(
            base[0].seconds > scheme[0].seconds,
            "baseline {} should be slower than scheme {}",
            base[0].seconds,
            scheme[0].seconds
        );
        assert!(base[0].efficiency < scheme[0].efficiency);
    }

    #[test]
    fn baseline_with_free_network_matches_data_chunking() {
        let base = strong_scaling_baseline(
            &cost(),
            &NetworkModel::ideal(),
            65536,
            10,
            1,
            |_| 1,
            &[1, 8],
            8,
        );
        assert!((base[1].speedup - 8.0).abs() < 1e-9);
    }

    #[test]
    fn table_lists_all_points() {
        let pts = strong_scaling(&cost(), 1000, 5, &[1, 2, 4], 4);
        let t = format_scaling_table(&pts);
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("efficiency"));
    }
}
