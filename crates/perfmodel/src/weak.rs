//! Weak-scaling analysis (extension beyond the paper's Fig. 4).
//!
//! Strong scaling fixes the global problem and grows P; weak scaling fixes
//! the *per-rank* problem (subdomain size) and grows the domain with P. For
//! the paper's communication-free training the weak-scaling efficiency is
//! exactly 1 by construction — each rank's work is constant — which is the
//! cleanest statement of why the scheme scales; the allreduce baseline's
//! weak efficiency decays like `1 / (1 + c·log₂P)`.

use crate::cluster::ClusterSim;
use crate::cost::CostModel;
use crate::network::NetworkModel;
use crate::scaling::ScalingPoint;

/// Weak scaling of the paper's scheme: every rank keeps `cells_per_rank`
/// cells; the global problem grows as `P · cells_per_rank`.
///
/// Returned `speedup` is the weak-scaling *scaleup* `T(1)/T(P) · P` clamped
/// to the usual convention: efficiency = `T(1)/T(P)`.
pub fn weak_scaling(
    cost: &CostModel,
    cells_per_rank: usize,
    epochs: usize,
    rank_counts: &[usize],
    cores: usize,
) -> Vec<ScalingPoint> {
    assert!(!rank_counts.is_empty(), "weak_scaling: no rank counts");
    let sim = ClusterSim::new(cores);
    let t1 = cost
        .training_seconds(cells_per_rank, epochs)
        .max(f64::MIN_POSITIVE);
    rank_counts
        .iter()
        .map(|&p| {
            assert!(p >= 1, "weak_scaling: P must be >= 1");
            let per_rank = cost.training_seconds(cells_per_rank, epochs);
            let seconds = sim.makespan_uniform(p, per_rank);
            let efficiency = t1 / seconds;
            ScalingPoint {
                ranks: p,
                seconds,
                speedup: efficiency * p as f64,
                efficiency,
            }
        })
        .collect()
}

/// Weak scaling of the allreduce baseline: every replica keeps a constant
/// per-epoch batch count over the grown dataset, paying one allreduce of
/// `weight_bytes` per batch.
#[allow(clippy::too_many_arguments)]
pub fn weak_scaling_baseline(
    cost: &CostModel,
    net: &NetworkModel,
    cells_per_rank: usize,
    epochs: usize,
    weight_bytes: usize,
    batches_per_epoch: usize,
    rank_counts: &[usize],
    cores: usize,
) -> Vec<ScalingPoint> {
    assert!(
        !rank_counts.is_empty(),
        "weak_scaling_baseline: no rank counts"
    );
    let sim = ClusterSim::new(cores);
    let t1 = cost
        .training_seconds(cells_per_rank, epochs)
        .max(f64::MIN_POSITIVE);
    rank_counts
        .iter()
        .map(|&p| {
            assert!(p >= 1, "weak_scaling_baseline: P must be >= 1");
            // The replica computes over the FULL (grown) domain.
            let compute = cost.training_seconds(cells_per_rank * p, epochs) / p as f64;
            let comm = epochs as f64 * batches_per_epoch as f64 * net.allreduce(weight_bytes, p);
            let seconds = sim.makespan_uniform(p, compute) + comm;
            let efficiency = t1 / seconds;
            ScalingPoint {
                ranks: p,
                seconds,
                speedup: efficiency * p as f64,
                efficiency,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::new(0.0, 1e-6)
    }

    #[test]
    fn scheme_weak_efficiency_is_one_with_enough_cores() {
        let pts = weak_scaling(&cost(), 4096, 10, &[1, 4, 16, 64], 64);
        for p in &pts {
            assert!(
                (p.efficiency - 1.0).abs() < 1e-12,
                "P={}: {}",
                p.ranks,
                p.efficiency
            );
            // Constant wall time — the flat weak-scaling line.
            assert!((p.seconds - pts[0].seconds).abs() < 1e-12);
        }
    }

    #[test]
    fn oversubscription_shows_up_as_linear_slowdown() {
        let pts = weak_scaling(&cost(), 4096, 10, &[1, 4], 1);
        assert!((pts[1].seconds / pts[0].seconds - 4.0).abs() < 1e-9);
        assert!((pts[1].efficiency - 0.25).abs() < 1e-9);
    }

    #[test]
    fn baseline_weak_efficiency_decays_with_log_p() {
        let net = NetworkModel::new(1e-3, 0.0); // latency-dominated
        let pts = weak_scaling_baseline(&cost(), &net, 4096, 10, 48 * 1024, 4, &[1, 4, 64], 64);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-9);
        assert!(pts[1].efficiency < 1.0);
        assert!(pts[2].efficiency < pts[1].efficiency);
    }

    #[test]
    fn baseline_with_ideal_network_still_pays_full_domain_compute() {
        // Even with free communication the baseline replica computes over
        // the whole grown domain (chunked 1/P of batches): compute per rank
        // is constant, so weak efficiency is 1 — the model separates the
        // two penalty sources cleanly.
        let pts = weak_scaling_baseline(
            &cost(),
            &NetworkModel::ideal(),
            4096,
            10,
            1,
            1,
            &[1, 16],
            16,
        );
        assert!((pts[1].efficiency - 1.0).abs() < 1e-9);
    }
}
