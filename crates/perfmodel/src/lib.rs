//! # pde-perfmodel
//!
//! A calibrated analytic + discrete-event performance model of the paper's
//! parallel training scheme — the substitute for the 64-core cluster used
//! for the Fig.-4 strong-scaling study (DESIGN.md §2).
//!
//! ## Why a model
//!
//! The reproduction machine exposes a single physical core, so measuring
//! wall-clock speedup at P = 64 directly is impossible. What *can* be
//! measured on one core is the ingredient the paper's argument rests on:
//! the per-rank training **work** as a function of subdomain size (the
//! scheme is communication-free, so work is the whole story). The model is
//! calibrated with such measurements ([`CostModel::calibrate`] takes
//! `(cells, seconds)` samples from the real trainer) and then evaluated at
//! any rank count, with a LogGP-style term available to price the
//! *baseline*'s allreduce traffic for contrast.
//!
//! ## Components
//!
//! * [`CostModel`] — per-rank compute cost: seconds per grid cell per epoch
//!   (fit by least squares on measured samples, with an optional fixed
//!   per-epoch overhead term);
//! * [`NetworkModel`] — LogGP-ish communication cost: latency + per-byte
//!   time, plus a simple tree/linear collective model;
//! * [`ClusterSim`] — a small discrete-event simulator that schedules rank
//!   tasks on simulated cores (used when ranks ≠ cores, i.e. oversubscribed
//!   runs);
//! * [`scaling`] — the strong/weak-scaling sweep drivers that produce the
//!   Fig.-4 series for (a) the paper's scheme and (b) the allreduce
//!   baseline.

pub mod cluster;
pub mod cost;
pub mod network;
pub mod scaling;
pub mod weak;

pub use cluster::{ClusterSim, Task};
pub use cost::CostModel;
pub use network::NetworkModel;
pub use scaling::{strong_scaling, strong_scaling_baseline, ScalingPoint};
pub use weak::{weak_scaling, weak_scaling_baseline};
