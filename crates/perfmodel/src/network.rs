//! LogGP-style communication cost model.

/// Point-to-point and collective communication costs.
///
/// `t(msg) = latency + bytes · per_byte` — the α–β model, the standard
/// first-order description of cluster interconnects. Collectives are priced
/// as binomial trees of point-to-point messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in seconds (α).
    pub latency_s: f64,
    /// Seconds per payload byte (β = 1/bandwidth).
    pub per_byte_s: f64,
}

impl NetworkModel {
    /// A model with the given α/β.
    pub fn new(latency_s: f64, per_byte_s: f64) -> Self {
        assert!(
            latency_s >= 0.0 && per_byte_s >= 0.0,
            "NetworkModel: negative costs"
        );
        Self {
            latency_s,
            per_byte_s,
        }
    }

    /// Typical commodity-cluster numbers: 1 µs latency, 10 GB/s links.
    pub fn cluster_default() -> Self {
        Self::new(1e-6, 1e-10)
    }

    /// An infinitely fast network (for isolating compute effects).
    pub fn ideal() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Time of one point-to-point message.
    pub fn p2p(&self, bytes: usize) -> f64 {
        self.latency_s + self.per_byte_s * bytes as f64
    }

    /// Time of a halo exchange round: the *critical path* of the two-phase
    /// protocol is two sequential p2p messages (x then y), independent of
    /// rank count (all edges proceed concurrently).
    pub fn halo_exchange(&self, x_bytes: usize, y_bytes: usize) -> f64 {
        self.p2p(x_bytes) + self.p2p(y_bytes)
    }

    /// Time of an allreduce of `bytes` over `p` ranks: binomial-tree reduce
    /// plus binomial-tree broadcast, `2·⌈log₂ p⌉` message steps on the
    /// critical path.
    pub fn allreduce(&self, bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        2.0 * rounds * self.p2p(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_affine() {
        let n = NetworkModel::new(1e-6, 1e-9);
        assert!((n.p2p(0) - 1e-6).abs() < 1e-18);
        assert!((n.p2p(1000) - (1e-6 + 1e-6)).abs() < 1e-15);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = NetworkModel::new(1e-6, 0.0);
        let t2 = n.allreduce(8, 2);
        let t4 = n.allreduce(8, 4);
        let t64 = n.allreduce(8, 64);
        assert!((t4 / t2 - 2.0).abs() < 1e-12);
        assert!((t64 / t2 - 6.0).abs() < 1e-12);
        assert_eq!(n.allreduce(8, 1), 0.0);
    }

    #[test]
    fn ideal_network_is_free() {
        let n = NetworkModel::ideal();
        assert_eq!(n.p2p(1 << 20), 0.0);
        assert_eq!(n.allreduce(1 << 20, 64), 0.0);
    }

    #[test]
    fn halo_critical_path_is_two_messages() {
        let n = NetworkModel::new(5e-6, 0.0);
        assert!((n.halo_exchange(100, 100) - 1e-5).abs() < 1e-15);
    }
}
