//! Layer composition.

use crate::layer::{Layer, ParamGroup};
use pde_tensor::Tensor4;

/// Ping-pong activation buffers owned by a [`Sequential`] stack.
///
/// `forward_into`/`backward_into` alternate between the two tensors as the
/// signal moves through the stack, so a whole pass allocates nothing once
/// the buffers have grown to the largest intermediate activation.
struct Workspace {
    ping: Tensor4,
    pong: Tensor4,
}

impl Workspace {
    fn new() -> Self {
        Self {
            ping: Tensor4::zeros(0, 0, 0, 0),
            pong: Tensor4::zeros(0, 0, 0, 0),
        }
    }
}

/// A straight-line stack of layers executed in order.
///
/// This is the only composition the paper's architecture needs. The struct
/// itself implements [`Layer`], so stacks nest. The stack owns a
/// [`Workspace`] of ping-pong activation buffers, making `forward_into` /
/// `backward_into` allocation-free after warm-up.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    ws: Workspace,
}

impl Sequential {
    /// Empty stack.
    pub fn new() -> Self {
        Self {
            layers: Vec::new(),
            ws: Workspace::new(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow of the layer list (for inspection).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable borrow of the layer list (for initialization).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Multi-line human-readable summary of the stack.
    pub fn summary(&self) -> String {
        let mut s = String::from("Sequential [\n");
        for l in &self.layers {
            s.push_str("  ");
            s.push_str(&l.describe());
            s.push('\n');
        }
        s.push_str(&format!("] total params: {}\n", self.param_count()));
        s
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor4, train: bool) -> Tensor4 {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(input, train, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mut grad_in = Tensor4::zeros(0, 0, 0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor4, train: bool, out: &mut Tensor4) {
        let n = self.layers.len();
        if n == 0 {
            out.copy_from(input);
            return;
        }
        let (ping, pong) = (&mut self.ws.ping, &mut self.ws.pong);
        for (i, l) in self.layers.iter_mut().enumerate() {
            // One span per layer; a0 is the layer index (names allocate, and
            // this path must stay allocation-free).
            let _span =
                pde_trace::span_args(pde_trace::Category::Nn, pde_trace::names::FWD, i as u64, 0);
            let src: &Tensor4 = if i == 0 { input } else { ping };
            if i == n - 1 {
                l.forward_into(src, train, out);
            } else {
                l.forward_into(src, train, pong);
                std::mem::swap(ping, pong);
            }
        }
    }

    fn backward_into(&mut self, grad_out: &Tensor4, grad_in: &mut Tensor4) {
        let n = self.layers.len();
        if n == 0 {
            grad_in.copy_from(grad_out);
            return;
        }
        let (ping, pong) = (&mut self.ws.ping, &mut self.ws.pong);
        for (i, l) in self.layers.iter_mut().rev().enumerate() {
            let _span = pde_trace::span_args(
                pde_trace::Category::Nn,
                pde_trace::names::BWD,
                (n - 1 - i) as u64,
                0,
            );
            let src: &Tensor4 = if i == 0 { grad_out } else { ping };
            if i == n - 1 {
                l.backward_into(src, grad_in);
            } else {
                l.backward_into(src, pong);
                std::mem::swap(ping, pong);
            }
        }
    }

    fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    fn scale_gradients(&mut self, factor: f64) {
        for l in &mut self.layers {
            l.scale_gradients(factor);
        }
    }

    fn param_groups(&mut self) -> Vec<ParamGroup<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.param_groups())
            .collect()
    }

    fn visit_param_groups(&mut self, f: &mut dyn FnMut(ParamGroup<'_>)) {
        for l in &mut self.layers {
            l.visit_param_groups(f);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        self.layers
            .iter()
            .fold((h, w), |(h, w), l| l.out_dims(h, w))
    }

    fn describe(&self) -> String {
        format!(
            "Sequential({} layers, {} params)",
            self.layers.len(),
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::LeakyReLu;
    use crate::conv::Conv2d;

    fn tiny_net() -> Sequential {
        Sequential::new()
            .push(Conv2d::same(1, 2, 3).named("c1"))
            .push(LeakyReLu::paper_default())
            .push(Conv2d::same(2, 1, 3).named("c2"))
    }

    #[test]
    fn forward_through_stack_preserves_same_dims() {
        let mut net = tiny_net();
        let x = Tensor4::zeros(2, 1, 6, 6);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), (2, 1, 6, 6));
        assert_eq!(net.out_dims(6, 6), (6, 6));
    }

    #[test]
    fn param_groups_cover_all_layers() {
        let mut net = tiny_net();
        let count = net.param_count();
        let total: usize = net.param_groups().iter().map(|g| g.param.len()).sum();
        assert_eq!(total, count);
        assert_eq!(net.param_groups().len(), 4); // two convs × (weight, bias)
    }

    #[test]
    fn unpadded_stack_shrinks_dims() {
        let net = Sequential::new()
            .push(Conv2d::new(pde_tensor::Conv2dSpec::square(1, 1, 3, 0)))
            .push(Conv2d::new(pde_tensor::Conv2dSpec::square(1, 1, 3, 0)));
        // Two unpadded 3×3 convs: each removes k-1 = 2 rows/cols.
        assert_eq!(net.out_dims(10, 10), (6, 6));
    }

    #[test]
    fn summary_mentions_layers() {
        let net = tiny_net();
        let s = net.summary();
        assert!(s.contains("c1"));
        assert!(s.contains("LeakyReLU"));
        assert!(s.contains("total params"));
    }
}
