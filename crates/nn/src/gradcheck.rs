//! Finite-difference gradient verification.
//!
//! [`check_network_gradients`] perturbs every learnable parameter of a
//! network, evaluates the loss by central differences and compares against
//! the analytic gradient produced by one backward pass. This is the
//! crate-wide correctness oracle: if it passes for a layer/loss pair, that
//! pair's backprop is right.

use crate::layer::Layer;
use crate::loss::Loss;
use pde_tensor::Tensor4;

/// Result of one gradient check.
#[derive(Clone, Debug)]
pub struct GradCheckReport {
    /// Number of parameters checked.
    pub checked: usize,
    /// Largest relative error observed.
    pub max_rel_err: f64,
    /// Index (in flattened group order) of the worst parameter.
    pub worst_index: usize,
    /// Analytic gradient at the worst parameter.
    pub worst_analytic: f64,
    /// Finite-difference gradient at the worst parameter.
    pub worst_numeric: f64,
}

impl GradCheckReport {
    /// True when the largest relative error is under `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err < tol
    }
}

/// Verifies `dL/dθ` for every parameter of `net` against central finite
/// differences of `loss` on `(input, target)`.
///
/// `stride` > 1 checks every `stride`-th parameter (full check is O(P)
/// forward passes, expensive for big nets). `eps` is the perturbation size.
///
/// Returns a report; callers assert on [`GradCheckReport::passes`].
pub fn check_network_gradients(
    net: &mut dyn Layer,
    loss: &dyn Loss,
    input: &Tensor4,
    target: &Tensor4,
    eps: f64,
    stride: usize,
) -> GradCheckReport {
    assert!(stride >= 1, "gradcheck: stride must be >= 1");
    // Analytic pass.
    net.zero_grad();
    let pred = net.forward(input, true);
    let (_, dl_dpred) = loss.value_and_grad(&pred, target);
    let _ = net.backward(&dl_dpred);
    let analytic: Vec<f64> = net
        .param_groups()
        .iter()
        .flat_map(|g| g.grad.to_vec())
        .collect();

    let mut report = GradCheckReport {
        checked: 0,
        max_rel_err: 0.0,
        worst_index: 0,
        worst_analytic: 0.0,
        worst_numeric: 0.0,
    };

    let total = analytic.len();
    let mut k = 0;
    while k < total {
        let numeric = {
            perturb(net, k, eps);
            let lp = loss.value(&net.forward(input, false), target);
            perturb(net, k, -2.0 * eps);
            let lm = loss.value(&net.forward(input, false), target);
            perturb(net, k, eps); // restore
            (lp - lm) / (2.0 * eps)
        };
        let a = analytic[k];
        let rel = (a - numeric).abs() / (1.0 + a.abs().max(numeric.abs()));
        report.checked += 1;
        if rel > report.max_rel_err {
            report.max_rel_err = rel;
            report.worst_index = k;
            report.worst_analytic = a;
            report.worst_numeric = numeric;
        }
        k += stride;
    }
    report
}

/// Adds `delta` to the `k`-th parameter in flattened group order.
fn perturb(net: &mut dyn Layer, k: usize, delta: f64) {
    let mut offset = 0;
    for g in net.param_groups() {
        if k < offset + g.param.len() {
            g.param[k - offset] += delta;
            return;
        }
        offset += g.param.len();
    }
    panic!("gradcheck: parameter index {k} out of range ({offset} params)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{LeakyReLu, Tanh};
    use crate::conv::Conv2d;
    use crate::deconv::ConvTranspose2d;
    use crate::init::{init_conv, Init};
    use crate::loss::{Huber, Mae, Mape, Mse};
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seeded_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c1 = Conv2d::same(2, 3, 3);
        let mut c2 = Conv2d::same(3, 2, 3);
        init_conv(&mut c1, Init::KaimingUniform { neg_slope: 0.01 }, &mut rng);
        init_conv(&mut c2, Init::KaimingUniform { neg_slope: 0.01 }, &mut rng);
        Sequential::new()
            .push(c1)
            .push(LeakyReLu::paper_default())
            .push(c2)
    }

    fn data(seed: u64) -> (Tensor4, Tensor4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor4::from_fn(2, 2, 5, 5, |_, _, _, _| rng.gen_range(-1.0..1.0));
        // Keep targets away from pred to avoid |p-t|=0 kinks in MAE/MAPE.
        let t = Tensor4::from_fn(2, 2, 5, 5, |_, _, _, _| rng.gen_range(1.5..2.5));
        (x, t)
    }

    #[test]
    fn conv_stack_gradients_pass_for_all_losses() {
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(Mse),
            Box::new(Mae),
            Box::new(Mape::default()),
            Box::new(Huber::new(0.37)),
        ];
        let (x, t) = data(11);
        for loss in &losses {
            let mut net = seeded_net(5);
            let r = check_network_gradients(&mut net, loss.as_ref(), &x, &t, 1e-5, 17);
            assert!(
                r.passes(1e-5),
                "{}: max rel err {} at {} (analytic {}, numeric {})",
                loss.name(),
                r.max_rel_err,
                r.worst_index,
                r.worst_analytic,
                r.worst_numeric
            );
        }
    }

    #[test]
    fn tanh_stack_gradients_pass() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c1 = Conv2d::same(1, 2, 3);
        init_conv(&mut c1, Init::XavierUniform, &mut rng);
        let mut net = Sequential::new().push(c1).push(Tanh::new());
        let x = Tensor4::from_fn(1, 1, 4, 4, |_, _, i, j| ((i * 4 + j) as f64).sin());
        let t = Tensor4::full(1, 2, 4, 4, 0.7);
        let r = check_network_gradients(&mut net, &Mse, &x, &t, 1e-5, 3);
        assert!(r.passes(1e-6), "max rel err {}", r.max_rel_err);
    }

    /// A transpose conv with seeded random weights/bias (the zero default
    /// would make every gradient trivially zero).
    fn seeded_deconv(in_c: usize, out_c: usize, k: usize, rng: &mut StdRng) -> ConvTranspose2d {
        let mut d = ConvTranspose2d::new(in_c, out_c, k);
        for v in d.weight_mut().as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        for b in d.bias_mut() {
            *b = rng.gen_range(-0.1..0.1);
        }
        d
    }

    #[test]
    fn deconv_stack_gradients_pass_for_all_losses() {
        // End-to-end §III approach-4 shape: unpadded conv shrinks 6→4, the
        // transpose conv restores 4→6 — so the deconv backward is checked
        // *through* upstream layers, not just in isolation.
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(Mse),
            Box::new(Mae),
            Box::new(Mape::default()),
            Box::new(Huber::new(0.37)),
        ];
        for loss in &losses {
            let mut rng = StdRng::seed_from_u64(21);
            let mut c1 = Conv2d::new(pde_tensor::Conv2dSpec::square(2, 3, 3, 0));
            init_conv(&mut c1, Init::KaimingUniform { neg_slope: 0.2 }, &mut rng);
            let mut net = Sequential::new()
                .push(c1)
                .push(LeakyReLu::new(0.2))
                .push(seeded_deconv(3, 2, 3, &mut rng));
            let mut rng = StdRng::seed_from_u64(22);
            let x = Tensor4::from_fn(2, 2, 6, 6, |_, _, _, _| rng.gen_range(-1.0..1.0));
            let t = Tensor4::from_fn(2, 2, 6, 6, |_, _, _, _| rng.gen_range(1.5..2.5));
            let r = check_network_gradients(&mut net, loss.as_ref(), &x, &t, 1e-5, 13);
            assert!(
                r.passes(1e-5),
                "{} through deconv: max rel err {} at {} (analytic {}, numeric {})",
                loss.name(),
                r.max_rel_err,
                r.worst_index,
                r.worst_analytic,
                r.worst_numeric
            );
        }
    }

    #[test]
    fn leaky_relu_slope_extremes_pass_gradcheck() {
        // Slope edge cases: 0.0 (exact ReLU — negative branch gradient must
        // be exactly zero, not a stale epsilon) and 0.99 (nearly linear —
        // any double-application of the slope would show up here).
        for slope in [0.0, 0.5, 0.99] {
            let mut rng = StdRng::seed_from_u64(31);
            let mut c1 = Conv2d::same(2, 3, 3);
            let mut c2 = Conv2d::same(3, 2, 3);
            init_conv(&mut c1, Init::KaimingUniform { neg_slope: slope }, &mut rng);
            init_conv(&mut c2, Init::KaimingUniform { neg_slope: slope }, &mut rng);
            let mut net = Sequential::new()
                .push(c1)
                .push(LeakyReLu::new(slope))
                .push(c2);
            let (x, t) = data(32);
            let r = check_network_gradients(&mut net, &Mse, &x, &t, 1e-5, 11);
            assert!(
                r.passes(1e-5),
                "slope {slope}: max rel err {} (analytic {}, numeric {})",
                r.max_rel_err,
                r.worst_analytic,
                r.worst_numeric
            );
        }
    }

    #[test]
    fn leaky_relu_strictly_negative_preactivations_pass_gradcheck() {
        // Forces EVERY preactivation through the negative branch (conv bias
        // −10 dwarfs the bounded conv output), so the slope path — not the
        // identity path — carries the whole gradient. A wrong negative-branch
        // derivative cannot hide behind mostly-positive activations here.
        let mut rng = StdRng::seed_from_u64(41);
        let mut c1 = Conv2d::same(2, 3, 3);
        init_conv(&mut c1, Init::KaimingUniform { neg_slope: 0.3 }, &mut rng);
        for b in c1.bias_mut() {
            *b = -10.0;
        }
        let mut net = Sequential::new().push(c1).push(LeakyReLu::new(0.3));
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor4::from_fn(1, 2, 5, 5, |_, _, _, _| rng.gen_range(-1.0..1.0));
        let t = Tensor4::zeros(1, 3, 5, 5);
        let r = check_network_gradients(&mut net, &Mse, &x, &t, 1e-5, 7);
        assert!(
            r.passes(1e-6),
            "negative branch: max rel err {} (analytic {}, numeric {})",
            r.max_rel_err,
            r.worst_analytic,
            r.worst_numeric
        );
    }

    #[test]
    fn report_counts_strided_parameters() {
        let mut net = seeded_net(1);
        let (x, t) = data(2);
        let total = net.param_count();
        let r = check_network_gradients(&mut net, &Mse, &x, &t, 1e-5, 10);
        assert_eq!(r.checked, total.div_ceil(10));
    }

    #[test]
    fn detects_broken_gradient() {
        // A deliberately wrong "layer": forward is conv, but we corrupt the
        // weight gradient after backward. The checker must flag it.
        let mut net = seeded_net(8);
        let (x, t) = data(9);
        net.zero_grad();
        let pred = net.forward(&x, true);
        let (_, g) = Mse.value_and_grad(&pred, &t);
        let _ = net.backward(&g);
        // Instead of corrupting internals (no API for that — by design),
        // emulate a broken analytic gradient by comparing against a shifted
        // loss: gradcheck against MAE while backprop ran with MSE.
        let analytic: Vec<f64> = net
            .param_groups()
            .iter()
            .flat_map(|gr| gr.grad.to_vec())
            .collect();
        let r = check_network_gradients(&mut net, &Mae, &x, &t, 1e-5, 29);
        // The MAE check passes internally (it redoes its own backward), so
        // instead verify the two gradients genuinely differ — guarding the
        // premise of the main tests.
        let mae_analytic: Vec<f64> = net
            .param_groups()
            .iter()
            .flat_map(|gr| gr.grad.to_vec())
            .collect();
        assert!(r.passes(1e-5));
        let diff: f64 = analytic
            .iter()
            .zip(&mae_analytic)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "MSE and MAE gradients should differ");
    }
}
