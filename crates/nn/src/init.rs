//! Weight initialization.
//!
//! Kaiming initialization (He et al.) is the correct scheme for
//! (leaky-)ReLU networks like the paper's; Xavier/Glorot is included for
//! tanh stacks and ablations. All initializers are deterministic given a
//! seed, which is what makes the "parallel == sequential per-subdomain"
//! equivalence tests of `pde-ml-core` possible.

use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::sequential::Sequential;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Initialization scheme for convolution weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// He-uniform with gain for leaky ReLU slope `a`:
    /// `U(-b, b)` with `b = gain * sqrt(3 / fan_in)`, `gain = sqrt(2/(1+a²))`.
    KaimingUniform {
        /// Negative-side slope of the following activation.
        neg_slope: f64,
    },
    /// He-normal, `N(0, gain² / fan_in)`.
    KaimingNormal {
        /// Negative-side slope of the following activation.
        neg_slope: f64,
    },
    /// Glorot-uniform, `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Glorot-normal, `N(0, 2 / (fan_in + fan_out))`.
    XavierNormal,
}

impl Init {
    fn bound_or_std(&self, fan_in: usize, fan_out: usize) -> (bool, f64) {
        match *self {
            Init::KaimingUniform { neg_slope } => {
                let gain = (2.0 / (1.0 + neg_slope * neg_slope)).sqrt();
                (true, gain * (3.0 / fan_in as f64).sqrt())
            }
            Init::KaimingNormal { neg_slope } => {
                let gain = (2.0 / (1.0 + neg_slope * neg_slope)).sqrt();
                (false, gain / (fan_in as f64).sqrt())
            }
            Init::XavierUniform => (true, (6.0 / (fan_in + fan_out) as f64).sqrt()),
            Init::XavierNormal => (false, (2.0 / (fan_in + fan_out) as f64).sqrt()),
        }
    }
}

/// Standard normal via Box–Muller (keeps us off `rand_distr`).
fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Initializes one convolution layer in place. Biases are zeroed.
pub fn init_conv(layer: &mut Conv2d, scheme: Init, rng: &mut StdRng) {
    let spec = *layer.spec();
    let fan_in = spec.in_c * spec.kh * spec.kw;
    let fan_out = spec.out_c * spec.kh * spec.kw;
    let (uniform, scale) = scheme.bound_or_std(fan_in, fan_out);
    for w in layer.weight_mut().as_mut_slice() {
        *w = if uniform {
            rng.gen_range(-scale..scale)
        } else {
            scale * normal(rng)
        };
    }
    layer.bias_mut().fill(0.0);
}

/// Initializes every [`Conv2d`] found in a network built by
/// [`crate::sequential::Sequential`] by re-seeding a fresh RNG from `seed`.
///
/// Non-conv layers are skipped. This is the entry point used by
/// `pde-ml-core` so that rank `r` can deterministically derive its network
/// from `(global_seed, r)`.
pub fn init_sequential_convs(net: &mut Sequential, scheme: Init, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    // We cannot downcast Box<dyn Layer>, so Sequential construction for
    // conv nets goes through `build_conv_stack` below, or callers init
    // layers before pushing. To still offer whole-net init we regenerate
    // weights through the param-group interface, applying the conv fan-in
    // heuristic per group: weight groups get the scheme, bias groups zero.
    // Fan-in is recovered from the group length and the following
    // convention: weight groups of a Conv2d have length out_c*in_c*kh*kw
    // and are always followed by their bias group of length out_c.
    let mut groups = net.param_groups();
    let mut i = 0;
    while i < groups.len() {
        if groups[i].name == "weight" && i + 1 < groups.len() && groups[i + 1].name == "bias" {
            let out_c = groups[i + 1].param.len();
            let w_len = groups[i].param.len();
            assert!(
                w_len.is_multiple_of(out_c),
                "init: inconsistent conv group lengths"
            );
            let fan_in = w_len / out_c;
            // The kernel area is not recoverable from group lengths, so the
            // Xavier fan_out is approximated by fan_in here. Kaiming (the
            // default for this crate's leaky-ReLU nets) only uses fan_in and
            // is exact. Callers needing exact Xavier should init each Conv2d
            // with `init_conv` before pushing it into the stack.
            let (uniform, scale) = scheme.bound_or_std(fan_in, fan_in);
            for w in groups[i].param.iter_mut() {
                *w = if uniform {
                    rng.gen_range(-scale..scale)
                } else {
                    scale * normal(&mut rng)
                };
            }
            groups[i + 1].param.fill(0.0);
            i += 2;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::LeakyReLu;
    use pde_tensor::stats;

    fn seeded() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn kaiming_uniform_respects_bound() {
        let mut l = Conv2d::same(4, 6, 5);
        init_conv(
            &mut l,
            Init::KaimingUniform { neg_slope: 0.01 },
            &mut seeded(),
        );
        let fan_in = 4 * 5 * 5;
        let gain = (2.0f64 / (1.0 + 0.0001)).sqrt();
        let bound = gain * (3.0 / fan_in as f64).sqrt();
        for &w in l.weight().as_slice() {
            assert!(w.abs() <= bound, "weight {w} exceeds bound {bound}");
        }
        assert!(l.bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn kaiming_normal_std_is_plausible() {
        let mut l = Conv2d::same(8, 16, 5);
        init_conv(
            &mut l,
            Init::KaimingNormal { neg_slope: 0.0 },
            &mut seeded(),
        );
        let fan_in = (8 * 5 * 5) as f64;
        let expect = (2.0 / fan_in).sqrt();
        let measured = stats::std_dev(l.weight().as_slice());
        assert!(
            (measured - expect).abs() < 0.2 * expect,
            "std {measured} far from expected {expect}"
        );
        assert!(stats::mean(l.weight().as_slice()).abs() < 0.05 * expect * 10.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Conv2d::same(2, 3, 3);
        let mut b = Conv2d::same(2, 3, 3);
        init_conv(&mut a, Init::XavierUniform, &mut seeded());
        init_conv(&mut b, Init::XavierUniform, &mut seeded());
        assert_eq!(a.weight(), b.weight());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Conv2d::same(2, 3, 3);
        let mut b = Conv2d::same(2, 3, 3);
        init_conv(&mut a, Init::XavierUniform, &mut StdRng::seed_from_u64(1));
        init_conv(&mut b, Init::XavierUniform, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.weight(), b.weight());
    }

    #[test]
    fn sequential_init_fills_all_convs() {
        let mut net = Sequential::new()
            .push(Conv2d::same(1, 2, 3))
            .push(LeakyReLu::paper_default())
            .push(Conv2d::same(2, 1, 3));
        init_sequential_convs(&mut net, Init::KaimingUniform { neg_slope: 0.01 }, 7);
        let groups = net.param_groups();
        // Both weight groups non-zero, both bias groups zero.
        assert!(groups[0].param.iter().any(|&w| w != 0.0));
        assert!(groups[2].param.iter().any(|&w| w != 0.0));
        assert!(groups[1].param.iter().all(|&b| b == 0.0));
        assert!(groups[3].param.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn sequential_init_deterministic() {
        let build = || {
            Sequential::new()
                .push(Conv2d::same(2, 4, 3))
                .push(LeakyReLu::paper_default())
                .push(Conv2d::same(4, 2, 3))
        };
        let mut a = build();
        let mut b = build();
        init_sequential_convs(&mut a, Init::KaimingNormal { neg_slope: 0.01 }, 99);
        init_sequential_convs(&mut b, Init::KaimingNormal { neg_slope: 0.01 }, 99);
        let ga = a
            .param_groups()
            .iter()
            .flat_map(|g| g.param.to_vec())
            .collect::<Vec<_>>();
        let gb = b
            .param_groups()
            .iter()
            .flat_map(|g| g.param.to_vec())
            .collect::<Vec<_>>();
        assert_eq!(ga, gb);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = seeded();
        let xs: Vec<f64> = (0..20000).map(|_| normal(&mut rng)).collect();
        assert!(stats::mean(&xs).abs() < 0.03);
        assert!((stats::std_dev(&xs) - 1.0).abs() < 0.03);
    }
}
