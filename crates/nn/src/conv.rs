//! The 2-D convolution layer (cross-correlation + bias), the paper's only
//! parameterized layer type (Table I uses four of them).

use crate::layer::{Layer, ParamGroup};
use pde_tensor::conv::{
    conv2d_backward_input_into, conv2d_backward_weight, conv2d_im2col_into, ConvScratch,
};
use pde_tensor::{Conv2dSpec, Tensor4};

/// A learnable 2-D convolution with per-output-channel bias.
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Tensor4,
    bias: Vec<f64>,
    grad_weight: Tensor4,
    grad_bias: Vec<f64>,
    cached_input: Option<Tensor4>,
    scratch: ConvScratch,
    name: String,
}

impl Conv2d {
    /// Creates the layer with all weights zero (callers normally follow up
    /// with [`crate::init`]).
    pub fn new(spec: Conv2dSpec) -> Self {
        let (oc, ic, kh, kw) = spec.weight_shape();
        Self {
            spec,
            weight: Tensor4::zeros(oc, ic, kh, kw),
            bias: vec![0.0; oc],
            grad_weight: Tensor4::zeros(oc, ic, kh, kw),
            grad_bias: vec![0.0; oc],
            cached_input: None,
            scratch: ConvScratch::new(),
            name: "conv".to_string(),
        }
    }

    /// Creates a "same" (shape-preserving) convolution, the Table-I setup.
    pub fn same(in_c: usize, out_c: usize, k: usize) -> Self {
        Self::new(Conv2dSpec::same(in_c, out_c, k))
    }

    /// Sets the diagnostic name (e.g. `"conv1"`); returns `self` for chaining.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// The layer's convolution spec.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Immutable weight view, shape `(out_c, in_c, kh, kw)`.
    pub fn weight(&self) -> &Tensor4 {
        &self.weight
    }

    /// Mutable weight view (used by initializers and tests).
    pub fn weight_mut(&mut self) -> &mut Tensor4 {
        &mut self.weight
    }

    /// Immutable bias view.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable bias view.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }

    /// Accumulated weight gradient (for inspection in tests).
    pub fn grad_weight(&self) -> &Tensor4 {
        &self.grad_weight
    }

    /// Accumulated bias gradient.
    pub fn grad_bias(&self) -> &[f64] {
        &self.grad_bias
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor4, train: bool) -> Tensor4 {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(input, train, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mut grad_in = Tensor4::zeros(0, 0, 0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor4, train: bool, out: &mut Tensor4) {
        if train {
            // Copy into the persistent cache instead of re-cloning: after
            // the first batch this never touches the heap.
            match &mut self.cached_input {
                Some(t) => t.copy_from(input),
                None => self.cached_input = Some(input.clone()),
            }
        }
        conv2d_im2col_into(
            input,
            &self.weight,
            &self.bias,
            &self.spec,
            &mut self.scratch,
            out,
        );
    }

    fn backward_into(&mut self, grad_out: &Tensor4, grad_in: &mut Tensor4) {
        let input = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward before forward (or forward with train=false)");
        conv2d_backward_weight(
            input,
            grad_out,
            &self.spec,
            &mut self.grad_weight,
            &mut self.grad_bias,
            &mut self.scratch,
        );
        conv2d_backward_input_into(
            grad_out,
            &self.weight,
            &self.spec,
            input.h(),
            input.w(),
            &mut self.scratch,
            grad_in,
        );
    }

    fn zero_grad(&mut self) {
        self.grad_weight.as_mut_slice().fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn scale_gradients(&mut self, factor: f64) {
        self.grad_weight.scale(factor);
        for g in &mut self.grad_bias {
            *g *= factor;
        }
    }

    fn param_groups(&mut self) -> Vec<ParamGroup<'_>> {
        vec![
            ParamGroup {
                param: self.weight.as_mut_slice(),
                grad: self.grad_weight.as_slice(),
                name: "weight",
            },
            ParamGroup {
                param: &mut self.bias,
                grad: &self.grad_bias,
                name: "bias",
            },
        ]
    }

    fn visit_param_groups(&mut self, f: &mut dyn FnMut(ParamGroup<'_>)) {
        f(ParamGroup {
            param: self.weight.as_mut_slice(),
            grad: self.grad_weight.as_slice(),
            name: "weight",
        });
        f(ParamGroup {
            param: &mut self.bias,
            grad: &self.grad_bias,
            name: "bias",
        });
    }

    fn param_count(&self) -> usize {
        self.spec.weight_count() + self.bias.len()
    }

    fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        self.spec.out_dims(h, w)
    }

    fn describe(&self) -> String {
        format!(
            "{}: Conv2d({}→{}, {}x{}, stride={}, pad={}) [{} params]",
            self.name,
            self.spec.in_c,
            self.spec.out_c,
            self.spec.kh,
            self.spec.kw,
            self.spec.stride,
            self.spec.pad,
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_fill(t: &mut Tensor4, seed: u64) {
        let mut x = seed | 1;
        for v in t.as_mut_slice() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % 1000) as f64 / 500.0 - 1.0;
        }
    }

    #[test]
    fn param_count_matches_table1_layer1() {
        // Table I layer 1: 4→6 channels, 5×5 kernel → 600 weights + 6 biases.
        let l = Conv2d::same(4, 6, 5);
        assert_eq!(l.param_count(), 606);
    }

    #[test]
    fn same_conv_preserves_dims() {
        let mut l = Conv2d::same(2, 3, 5);
        let x = Tensor4::zeros(2, 2, 10, 12);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), (2, 3, 10, 12));
        assert_eq!(l.out_dims(10, 12), (10, 12));
    }

    #[test]
    fn backward_accumulates_until_zero_grad() {
        let mut l = Conv2d::same(1, 1, 3);
        let mut x = Tensor4::zeros(1, 1, 4, 4);
        det_fill(&mut x, 5);
        det_fill(l.weight_mut(), 9);
        let y = l.forward(&x, true);
        let _ = l.backward(&y);
        let g1 = l.grad_weight().clone();
        let _ = l.forward(&x, true);
        let _ = l.backward(&y);
        // Second backward doubled the accumulation.
        for (a, b) in l.grad_weight().as_slice().iter().zip(g1.as_slice()) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
        l.zero_grad();
        assert_eq!(l.grad_weight().max_abs(), 0.0);
        assert!(l.grad_bias().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn param_groups_expose_weight_and_bias() {
        let mut l = Conv2d::same(2, 2, 3).named("c1");
        let groups = l.param_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].param.len(), 2 * 2 * 3 * 3);
        assert_eq!(groups[1].param.len(), 2);
        assert_eq!(groups[0].name, "weight");
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward_cache() {
        let mut l = Conv2d::same(1, 1, 3);
        let x = Tensor4::zeros(1, 1, 4, 4);
        let y = l.forward(&x, false); // train=false → no cache
        let _ = l.backward(&y);
    }
}
