//! Learning-rate schedules.
//!
//! The paper uses a constant rate; step decay and cosine annealing are
//! provided because they materially stabilize MAPE training on the Euler
//! fields at longer epoch budgets (used by some benches).

/// A learning-rate schedule: maps an epoch index to a rate.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Fixed rate forever.
    Constant(f64),
    /// `base * gamma^(epoch / step_every)` (integer division).
    StepDecay {
        /// Initial rate.
        base: f64,
        /// Multiplier applied every `step_every` epochs.
        gamma: f64,
        /// Epoch interval between decays.
        step_every: usize,
    },
    /// Cosine annealing from `base` down to `min` over `total_epochs`.
    Cosine {
        /// Initial rate.
        base: f64,
        /// Final rate.
        min: f64,
        /// Annealing horizon; epochs beyond it stay at `min`.
        total_epochs: usize,
    },
    /// Linear warmup over `warmup` epochs, then constant `base`.
    Warmup {
        /// Rate after warmup.
        base: f64,
        /// Number of warmup epochs.
        warmup: usize,
    },
}

impl LrSchedule {
    /// Rate for the given (0-based) epoch.
    pub fn rate(&self, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Constant(r) => r,
            LrSchedule::StepDecay {
                base,
                gamma,
                step_every,
            } => {
                assert!(
                    step_every > 0,
                    "LrSchedule::StepDecay: step_every must be > 0"
                );
                base * gamma.powi((epoch / step_every) as i32)
            }
            LrSchedule::Cosine {
                base,
                min,
                total_epochs,
            } => {
                if total_epochs == 0 || epoch >= total_epochs {
                    return min;
                }
                let t = epoch as f64 / total_epochs as f64;
                min + 0.5 * (base - min) * (1.0 + (std::f64::consts::PI * t).cos())
            }
            LrSchedule::Warmup { base, warmup } => {
                if warmup == 0 || epoch >= warmup {
                    base
                } else {
                    base * (epoch + 1) as f64 / warmup as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.01);
        assert_eq!(s.rate(0), 0.01);
        assert_eq!(s.rate(999), 0.01);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            gamma: 0.5,
            step_every: 10,
        };
        assert_eq!(s.rate(0), 1.0);
        assert_eq!(s.rate(9), 1.0);
        assert_eq!(s.rate(10), 0.5);
        assert_eq!(s.rate(25), 0.25);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine {
            base: 1.0,
            min: 0.1,
            total_epochs: 100,
        };
        assert!((s.rate(0) - 1.0).abs() < 1e-12);
        assert!((s.rate(50) - 0.55).abs() < 1e-12);
        assert_eq!(s.rate(100), 0.1);
        assert_eq!(s.rate(1000), 0.1);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = LrSchedule::Cosine {
            base: 1.0,
            min: 0.0,
            total_epochs: 50,
        };
        let mut prev = f64::INFINITY;
        for e in 0..60 {
            let r = s.rate(e);
            assert!(r <= prev + 1e-15, "not decreasing at epoch {e}");
            prev = r;
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup {
            base: 1.0,
            warmup: 4,
        };
        assert_eq!(s.rate(0), 0.25);
        assert_eq!(s.rate(1), 0.5);
        assert_eq!(s.rate(3), 1.0);
        assert_eq!(s.rate(10), 1.0);
    }
}
