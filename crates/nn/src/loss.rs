//! Loss functions with analytic gradients.
//!
//! The paper trains with MAPE (its Eq. (7)) and argues it beats MSE when
//! field magnitudes differ by orders of magnitude; both are here, plus MAE
//! and Huber for the loss ablation (experiment X4 in DESIGN.md).

use pde_tensor::Tensor4;

/// A scalar loss over `(prediction, target)` batches with an analytic
/// gradient w.r.t. the prediction.
pub trait Loss: Send + Sync {
    /// Loss value alone (no gradient allocation).
    fn value(&self, pred: &Tensor4, target: &Tensor4) -> f64;

    /// Loss value and `dL/d(pred)` in one pass.
    fn value_and_grad(&self, pred: &Tensor4, target: &Tensor4) -> (f64, Tensor4);

    /// [`Loss::value_and_grad`] writing the gradient into a caller-owned
    /// tensor (resized in place) — the allocation-free path used by the
    /// training loop. The default falls back to the allocating variant.
    fn value_and_grad_into(&self, pred: &Tensor4, target: &Tensor4, grad: &mut Tensor4) -> f64 {
        let (v, g) = self.value_and_grad(pred, target);
        grad.copy_from(&g);
        v
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

fn check(pred: &Tensor4, target: &Tensor4, what: &str) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "{what}: prediction/target shape mismatch"
    );
    assert!(!pred.is_empty(), "{what}: empty tensors");
}

/// Mean squared error `1/m Σ (p-t)²`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mse;

impl Loss for Mse {
    fn value(&self, pred: &Tensor4, target: &Tensor4) -> f64 {
        check(pred, target, "Mse");
        let m = pred.len() as f64;
        pred.as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / m
    }

    fn value_and_grad(&self, pred: &Tensor4, target: &Tensor4) -> (f64, Tensor4) {
        let mut grad = Tensor4::zeros(0, 0, 0, 0);
        let v = self.value_and_grad_into(pred, target, &mut grad);
        (v, grad)
    }

    fn value_and_grad_into(&self, pred: &Tensor4, target: &Tensor4, grad: &mut Tensor4) -> f64 {
        check(pred, target, "Mse");
        let m = pred.len() as f64;
        let (n, c, h, w) = pred.shape();
        grad.resize(n, c, h, w);
        let mut loss = 0.0;
        for ((g, &p), &t) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            let d = p - t;
            loss += d * d;
            *g = 2.0 * d / m;
        }
        loss / m
    }

    fn name(&self) -> &'static str {
        "MSE"
    }
}

/// Mean absolute error `1/m Σ |p-t|`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mae;

impl Loss for Mae {
    fn value(&self, pred: &Tensor4, target: &Tensor4) -> f64 {
        check(pred, target, "Mae");
        let m = pred.len() as f64;
        pred.as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| (p - t).abs())
            .sum::<f64>()
            / m
    }

    fn value_and_grad(&self, pred: &Tensor4, target: &Tensor4) -> (f64, Tensor4) {
        let mut grad = Tensor4::zeros(0, 0, 0, 0);
        let v = self.value_and_grad_into(pred, target, &mut grad);
        (v, grad)
    }

    fn value_and_grad_into(&self, pred: &Tensor4, target: &Tensor4, grad: &mut Tensor4) -> f64 {
        check(pred, target, "Mae");
        let m = pred.len() as f64;
        let (n, c, h, w) = pred.shape();
        grad.resize(n, c, h, w);
        let mut loss = 0.0;
        for ((g, &p), &t) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            let d = p - t;
            loss += d.abs();
            *g = d.signum() / m;
        }
        loss / m
    }

    fn name(&self) -> &'static str {
        "MAE"
    }
}

/// Mean absolute percentage error (paper Eq. (7)), in percent:
/// `100/m Σ |p-t| / max(|t|, floor)`.
///
/// The `floor` guards against division by (near-)zero targets; the paper's
/// pressure-perturbation fields pass through zero at the outflow boundary,
/// so a raw MAPE would be unbounded. `floor = 1e-3` relative to O(1) fields
/// is the default.
#[derive(Clone, Copy, Debug)]
pub struct Mape {
    /// Minimum magnitude used for the denominator.
    pub floor: f64,
}

impl Mape {
    /// MAPE with the given denominator floor.
    ///
    /// # Panics
    /// If `floor` is not strictly positive.
    pub fn new(floor: f64) -> Self {
        assert!(floor > 0.0, "Mape: floor must be > 0");
        Self { floor }
    }
}

impl Default for Mape {
    fn default() -> Self {
        Self::new(1e-3)
    }
}

impl Loss for Mape {
    fn value(&self, pred: &Tensor4, target: &Tensor4) -> f64 {
        check(pred, target, "Mape");
        let m = pred.len() as f64;
        let s: f64 = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| (p - t).abs() / t.abs().max(self.floor))
            .sum();
        100.0 * s / m
    }

    fn value_and_grad(&self, pred: &Tensor4, target: &Tensor4) -> (f64, Tensor4) {
        let mut grad = Tensor4::zeros(0, 0, 0, 0);
        let v = self.value_and_grad_into(pred, target, &mut grad);
        (v, grad)
    }

    fn value_and_grad_into(&self, pred: &Tensor4, target: &Tensor4, grad: &mut Tensor4) -> f64 {
        check(pred, target, "Mape");
        let m = pred.len() as f64;
        let (n, c, h, w) = pred.shape();
        grad.resize(n, c, h, w);
        let mut loss = 0.0;
        for ((g, &p), &t) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            let denom = t.abs().max(self.floor);
            let d = p - t;
            loss += d.abs() / denom;
            *g = 100.0 * d.signum() / (denom * m);
        }
        100.0 * loss / m
    }

    fn name(&self) -> &'static str {
        "MAPE"
    }
}

/// Huber loss: quadratic inside `|p-t| ≤ delta`, linear outside.
#[derive(Clone, Copy, Debug)]
pub struct Huber {
    /// Transition point between the quadratic and linear regimes.
    pub delta: f64,
}

impl Huber {
    /// Huber loss with the given transition point.
    ///
    /// # Panics
    /// If `delta` is not strictly positive.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0, "Huber: delta must be > 0");
        Self { delta }
    }
}

impl Default for Huber {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Loss for Huber {
    fn value(&self, pred: &Tensor4, target: &Tensor4) -> f64 {
        check(pred, target, "Huber");
        let m = pred.len() as f64;
        let d = self.delta;
        pred.as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| {
                let e = (p - t).abs();
                if e <= d {
                    0.5 * e * e
                } else {
                    d * (e - 0.5 * d)
                }
            })
            .sum::<f64>()
            / m
    }

    fn value_and_grad(&self, pred: &Tensor4, target: &Tensor4) -> (f64, Tensor4) {
        let mut grad = Tensor4::zeros(0, 0, 0, 0);
        let v = self.value_and_grad_into(pred, target, &mut grad);
        (v, grad)
    }

    fn value_and_grad_into(&self, pred: &Tensor4, target: &Tensor4, grad: &mut Tensor4) -> f64 {
        check(pred, target, "Huber");
        let m = pred.len() as f64;
        let d = self.delta;
        let (n, c, h, w) = pred.shape();
        grad.resize(n, c, h, w);
        let mut loss = 0.0;
        for ((g, &p), &t) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            let e = p - t;
            if e.abs() <= d {
                loss += 0.5 * e * e;
                *g = e / m;
            } else {
                loss += d * (e.abs() - 0.5 * d);
                *g = d * e.signum() / m;
            }
        }
        loss / m
    }

    fn name(&self) -> &'static str {
        "Huber"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f64]) -> Tensor4 {
        Tensor4::from_vec(1, 1, 1, vals.len(), vals.to_vec())
    }

    fn fd_check(loss: &dyn Loss, pred: &Tensor4, target: &Tensor4, tol: f64) {
        let (_, grad) = loss.value_and_grad(pred, target);
        let eps = 1e-7;
        for k in 0..pred.len() {
            let mut pp = pred.clone();
            pp.as_mut_slice()[k] += eps;
            let mut pm = pred.clone();
            pm.as_mut_slice()[k] -= eps;
            let fd = (loss.value(&pp, target) - loss.value(&pm, target)) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[k]).abs() < tol * (1.0 + fd.abs()),
                "{}: grad mismatch at {k}: fd={fd} analytic={}",
                loss.name(),
                grad.as_slice()[k]
            );
        }
    }

    #[test]
    fn mse_known_value() {
        let l = Mse;
        assert!((l.value(&t(&[1.0, 3.0]), &t(&[0.0, 1.0])) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mape_known_value() {
        let l = Mape::new(1e-3);
        // |1.1-1|/1 = 0.1, |1.8-2|/2 = 0.1 → 10 %.
        let v = l.value(&t(&[1.1, 1.8]), &t(&[1.0, 2.0]));
        assert!((v - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_floor_prevents_blowup() {
        let l = Mape::new(0.5);
        let v = l.value(&t(&[1.0]), &t(&[0.0]));
        assert!((v - 200.0).abs() < 1e-9);
        assert!(v.is_finite());
    }

    #[test]
    fn all_losses_zero_at_target() {
        let x = t(&[0.3, -1.0, 2.0]);
        for l in losses() {
            assert_eq!(l.value(&x, &x), 0.0, "{}", l.name());
            let (v, g) = l.value_and_grad(&x, &x);
            assert_eq!(v, 0.0);
            // Gradient at the minimum may be a subgradient (MAE/MAPE) but
            // must be finite.
            assert!(g.as_slice().iter().all(|x| x.is_finite()));
        }
    }

    fn losses() -> Vec<Box<dyn Loss>> {
        vec![
            Box::new(Mse),
            Box::new(Mae),
            Box::new(Mape::default()),
            Box::new(Huber::default()),
        ]
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Keep predictions away from the |p-t|=0 and |p-t|=delta kinks.
        let pred = t(&[1.4, -0.7, 2.4, 0.9]);
        let target = t(&[1.0, -1.0, 0.5, 1.2]);
        for l in losses() {
            fd_check(l.as_ref(), &pred, &target, 1e-5);
        }
    }

    #[test]
    fn huber_transitions_to_linear() {
        let l = Huber::new(1.0);
        // |e| = 3 > delta → delta*(|e| - delta/2) = 1*(3-0.5) = 2.5.
        assert!((l.value(&t(&[3.0]), &t(&[0.0])) - 2.5).abs() < 1e-12);
        // |e| = 0.5 ≤ delta → 0.5*e² = 0.125.
        assert!((l.value(&t(&[0.5]), &t(&[0.0])) - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_shape_mismatch() {
        let _ = Mse.value(&t(&[1.0]), &t(&[1.0, 2.0]));
    }
}
