//! Transposed convolution ("de-convolution") — the paper's §III approach 4,
//! listed as "currently under investigation"; implemented here as a
//! first-class layer so the `Deconv` padding strategy can restore the
//! spatial extent an unpadded conv stack removed.
//!
//! A transposed convolution is *literally* the adjoint of a convolution:
//! if a conv with weight `W` maps `u → v = A·u`, the transpose maps
//! `x → y = Aᵀ·x`. That lets this layer reuse the three convolution kernels
//! of `pde-tensor` with their roles swapped:
//!
//! | transpose-conv pass | implemented by |
//! |---|---|
//! | forward             | `conv2d_backward_input` |
//! | input gradient      | `conv2d` (forward) |
//! | weight gradient     | `conv2d_backward_weight` with input/grad swapped |
//!
//! With stride 1 and no padding, a `k × k` transpose conv *grows* the
//! spatial extent by `k − 1` in each direction.

use crate::layer::{Layer, ParamGroup};
use pde_tensor::conv::{
    conv2d_backward_input_into, conv2d_backward_weight, conv2d_im2col_into, ConvScratch,
};
use pde_tensor::{Conv2dSpec, Tensor4};

/// A learnable stride-1, unpadded 2-D transposed convolution with
/// per-output-channel bias.
pub struct ConvTranspose2d {
    /// The convolution this layer is the transpose of: its `in_c` is this
    /// layer's *output* channel count and vice versa.
    conv_spec: Conv2dSpec,
    /// Weight in the conv convention `(t_in, t_out, k, k)` — i.e. the
    /// forward-conv layout of the adjoint pair.
    weight: Tensor4,
    bias: Vec<f64>,
    grad_weight: Tensor4,
    grad_bias: Vec<f64>,
    cached_input: Option<Tensor4>,
    scratch: ConvScratch,
    name: String,
}

impl ConvTranspose2d {
    /// New transpose conv mapping `in_c → out_c` channels with a square
    /// `k × k` kernel, weights zeroed (initialize via [`crate::init`] by
    /// treating it as a conv with fan-in `in_c · k²`).
    pub fn new(in_c: usize, out_c: usize, k: usize) -> Self {
        // The adjoint conv maps out_c → in_c.
        let conv_spec = Conv2dSpec::square(out_c, in_c, k, 0);
        let (oc, ic, kh, kw) = conv_spec.weight_shape();
        Self {
            conv_spec,
            weight: Tensor4::zeros(oc, ic, kh, kw),
            bias: vec![0.0; out_c],
            grad_weight: Tensor4::zeros(oc, ic, kh, kw),
            grad_bias: vec![0.0; out_c],
            cached_input: None,
            scratch: ConvScratch::new(),
            name: "deconv".to_string(),
        }
    }

    /// Sets the diagnostic name; returns `self` for chaining.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// This layer's input channel count.
    pub fn in_channels(&self) -> usize {
        self.conv_spec.out_c
    }

    /// This layer's output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv_spec.in_c
    }

    /// Kernel edge.
    pub fn kernel(&self) -> usize {
        self.conv_spec.kh
    }

    /// Mutable weight view (for initializers/tests), conv layout
    /// `(in_c, out_c, k, k)`.
    pub fn weight_mut(&mut self) -> &mut Tensor4 {
        &mut self.weight
    }

    /// Immutable weight view.
    pub fn weight(&self) -> &Tensor4 {
        &self.weight
    }

    /// Mutable bias view.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, input: &Tensor4, train: bool) -> Tensor4 {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(input, train, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mut grad_in = Tensor4::zeros(0, 0, 0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor4, train: bool, out: &mut Tensor4) {
        assert_eq!(
            input.c(),
            self.in_channels(),
            "ConvTranspose2d: input has {} channels, expected {}",
            input.c(),
            self.in_channels()
        );
        if train {
            match &mut self.cached_input {
                Some(t) => t.copy_from(input),
                None => self.cached_input = Some(input.clone()),
            }
        }
        let (oh, ow) = self.out_dims(input.h(), input.w());
        // y = Aᵀ x: the conv's input-gradient pass with x in the grad slot.
        conv2d_backward_input_into(
            input,
            &self.weight,
            &self.conv_spec,
            oh,
            ow,
            &mut self.scratch,
            out,
        );
        if self.bias.iter().any(|&b| b != 0.0) {
            let (n, c, h, w) = out.shape();
            for s in 0..n {
                let sample = out.sample_mut(s);
                for ch in 0..c {
                    let b = self.bias[ch];
                    for v in &mut sample[ch * h * w..(ch + 1) * h * w] {
                        *v += b;
                    }
                }
            }
        }
    }

    fn backward_into(&mut self, grad_out: &Tensor4, grad_in: &mut Tensor4) {
        let input = self
            .cached_input
            .as_ref()
            .expect("ConvTranspose2d::backward before forward (or forward with train=false)");
        // Weight gradient: the adjoint conv's weight pass with roles
        // swapped — "input" = grad_out (C_out planes), "grad_out" = x.
        conv2d_backward_weight(
            grad_out,
            input,
            &self.conv_spec,
            &mut self.grad_weight,
            &mut [],
            &mut self.scratch,
        );
        // Bias gradient: plain per-channel sum of grad_out.
        let (n, c, h, w) = grad_out.shape();
        for s in 0..n {
            let sample = grad_out.sample(s);
            for ch in 0..c {
                self.grad_bias[ch] += sample[ch * h * w..(ch + 1) * h * w].iter().sum::<f64>();
            }
        }
        // Input gradient: d(Aᵀx)/dx pairs with A — a forward conv.
        conv2d_im2col_into(
            grad_out,
            &self.weight,
            &[],
            &self.conv_spec,
            &mut self.scratch,
            grad_in,
        );
    }

    fn zero_grad(&mut self) {
        self.grad_weight.as_mut_slice().fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn scale_gradients(&mut self, factor: f64) {
        self.grad_weight.scale(factor);
        for g in &mut self.grad_bias {
            *g *= factor;
        }
    }

    fn param_groups(&mut self) -> Vec<ParamGroup<'_>> {
        vec![
            ParamGroup {
                param: self.weight.as_mut_slice(),
                grad: self.grad_weight.as_slice(),
                name: "weight",
            },
            ParamGroup {
                param: &mut self.bias,
                grad: &self.grad_bias,
                name: "bias",
            },
        ]
    }

    fn visit_param_groups(&mut self, f: &mut dyn FnMut(ParamGroup<'_>)) {
        f(ParamGroup {
            param: self.weight.as_mut_slice(),
            grad: self.grad_weight.as_slice(),
            name: "weight",
        });
        f(ParamGroup {
            param: &mut self.bias,
            grad: &self.grad_bias,
            name: "bias",
        });
    }

    fn param_count(&self) -> usize {
        self.conv_spec.weight_count() + self.bias.len()
    }

    fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        (h + self.conv_spec.kh - 1, w + self.conv_spec.kw - 1)
    }

    fn describe(&self) -> String {
        format!(
            "{}: ConvTranspose2d({}→{}, {}x{}) [{} params]",
            self.name,
            self.in_channels(),
            self.out_channels(),
            self.conv_spec.kh,
            self.conv_spec.kw,
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::gradcheck::check_network_gradients;
    use crate::loss::Mse;
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn det_fill(t: &mut Tensor4, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for v in t.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
    }

    #[test]
    fn output_grows_by_kernel_minus_one() {
        let mut l = ConvTranspose2d::new(3, 2, 5);
        let x = Tensor4::zeros(2, 3, 8, 6);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), (2, 2, 12, 10));
        assert_eq!(l.out_dims(8, 6), (12, 10));
        assert_eq!(l.param_count(), 3 * 2 * 25 + 2);
    }

    #[test]
    fn forward_is_adjoint_of_conv() {
        // <conv(u), x> == <u, convT(x)> for shared weights.
        let k = 3;
        let (c1, c2) = (2, 3);
        let (h, w) = (6, 5);
        let mut conv = Conv2d::new(Conv2dSpec::square(c1, c2, k, 0));
        det_fill(conv.weight_mut(), 11);
        let mut tconv = ConvTranspose2d::new(c2, c1, k);
        tconv
            .weight_mut()
            .as_mut_slice()
            .copy_from_slice(conv.weight().as_slice());

        let mut u = Tensor4::zeros(1, c1, h, w);
        det_fill(&mut u, 5);
        let (oh, ow) = (h - k + 1, w - k + 1);
        let mut x = Tensor4::zeros(1, c2, oh, ow);
        det_fill(&mut x, 6);

        let v = conv.forward(&u, false);
        let y = tconv.forward(&x, false);
        let lhs: f64 = v
            .as_slice()
            .iter()
            .zip(x.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f64 = u
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-10,
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn known_values_single_tap() {
        // 1→1 channels, 2×2 kernel of ones, 1×1 input of value 3:
        // output is a 2×2 block of 3s (plus bias).
        let mut l = ConvTranspose2d::new(1, 1, 2);
        l.weight_mut().as_mut_slice().fill(1.0);
        l.bias_mut()[0] = 0.5;
        let x = Tensor4::full(1, 1, 1, 1, 3.0);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), (1, 1, 2, 2));
        for &v in y.as_slice() {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut tconv = ConvTranspose2d::new(2, 3, 3);
        for v in tconv.weight_mut().as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        for b in tconv.bias_mut() {
            *b = rng.gen_range(-0.1..0.1);
        }
        let mut net = Sequential::new().push(tconv);
        let x = Tensor4::from_fn(1, 2, 4, 4, |_, c, i, j| {
            ((c + i * 4 + j) as f64 * 0.37).sin()
        });
        let t = Tensor4::full(1, 3, 6, 6, 0.25);
        let r = check_network_gradients(&mut net, &Mse, &x, &t, 1e-5, 5);
        assert!(
            r.passes(1e-6),
            "max rel err {} at {}",
            r.max_rel_err,
            r.worst_index
        );
    }

    #[test]
    fn conv_then_deconv_restores_dims() {
        // The §III approach-4 pipeline: unpadded convs shrink, one transpose
        // conv restores.
        let mut net = Sequential::new()
            .push(Conv2d::new(Conv2dSpec::square(4, 6, 3, 0)))
            .push(crate::activation::LeakyReLu::paper_default())
            .push(Conv2d::new(Conv2dSpec::square(6, 4, 3, 0)))
            .push(ConvTranspose2d::new(4, 4, 5));
        let x = Tensor4::zeros(1, 4, 16, 16);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), (1, 4, 16, 16));
        assert_eq!(net.out_dims(16, 16), (16, 16));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_cache() {
        let mut l = ConvTranspose2d::new(1, 1, 3);
        let x = Tensor4::zeros(1, 1, 3, 3);
        let y = l.forward(&x, false);
        let _ = l.backward(&y);
    }
}
