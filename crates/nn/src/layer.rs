//! The [`Layer`] trait: forward/backward building blocks.

use pde_tensor::Tensor4;

/// One learnable parameter group of a layer, paired with its gradient.
///
/// Optimizers receive the groups of a whole network in a stable order and
/// keep their per-parameter state (momenta etc.) keyed by that order.
pub struct ParamGroup<'a> {
    /// Flat view of the parameter values.
    pub param: &'a mut [f64],
    /// Flat view of the accumulated gradient (same length).
    pub grad: &'a [f64],
    /// Human-readable name, e.g. `"conv1.weight"` (used in diagnostics and
    /// the serialization format).
    pub name: &'a str,
}

/// A differentiable network building block with explicit backprop.
///
/// The contract:
/// * `forward` consumes a batch, caches whatever `backward` will need, and
///   returns the output batch;
/// * `backward` consumes `dL/d(output)` for the *most recent* forward call
///   and returns `dL/d(input)`, accumulating parameter gradients internally;
/// * `zero_grad` clears the accumulated parameter gradients.
///
/// Calling `backward` without a preceding `forward` panics.
pub trait Layer: Send {
    /// Forward pass. `train` enables gradient caching; inference-only calls
    /// may pass `false` to skip it.
    fn forward(&mut self, input: &Tensor4, train: bool) -> Tensor4;

    /// Backward pass; returns the gradient w.r.t. the layer input.
    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4;

    /// [`Layer::forward`] writing into a caller-owned output tensor, which is
    /// resized in place — the allocation-free path used by the training
    /// loop. `out` must not alias `input`. The default falls back to the
    /// allocating `forward`; layers on the hot path override it.
    fn forward_into(&mut self, input: &Tensor4, train: bool, out: &mut Tensor4) {
        *out = self.forward(input, train);
    }

    /// [`Layer::backward`] writing into a caller-owned gradient tensor,
    /// resized in place. `grad_in` must not alias `grad_out`. The default
    /// falls back to the allocating `backward`.
    fn backward_into(&mut self, grad_out: &Tensor4, grad_in: &mut Tensor4) {
        *grad_in = self.backward(grad_out);
    }

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self);

    /// Multiplies every accumulated parameter gradient by `factor` — the
    /// primitive behind global-norm gradient clipping. Stateless layers
    /// keep the default no-op.
    fn scale_gradients(&mut self, factor: f64) {
        let _ = factor;
    }

    /// Parameter/gradient groups in a stable order (empty for stateless
    /// layers such as activations).
    fn param_groups(&mut self) -> Vec<ParamGroup<'_>>;

    /// Visits every parameter group in the same stable order as
    /// [`Layer::param_groups`], without allocating the intermediate `Vec` —
    /// the optimizer's per-step path. The default delegates to
    /// `param_groups`; layers with parameters override it.
    fn visit_param_groups(&mut self, f: &mut dyn FnMut(ParamGroup<'_>)) {
        for g in self.param_groups() {
            f(g);
        }
    }

    /// Total number of learnable scalars.
    fn param_count(&self) -> usize;

    /// Output spatial dims for a given input spatial size (identity for
    /// shape-preserving layers).
    fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        (h, w)
    }

    /// Short human-readable description used in model summaries.
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::LeakyReLu;

    #[test]
    fn stateless_layer_has_no_params() {
        let mut l = LeakyReLu::new(0.01);
        assert_eq!(l.param_count(), 0);
        assert!(l.param_groups().is_empty());
    }
}
