//! First-order optimizers.
//!
//! ADAM (the paper's choice, §II with Eqs. (3)–(6)) plus SGD (with optional
//! momentum/Nesterov), RMSProp and AdamW for the optimizer ablation
//! (experiment X3 in DESIGN.md).
//!
//! An optimizer is driven with the parameter groups of a network:
//!
//! ```
//! use pde_nn::{Adam, Optimizer, Layer, Conv2d};
//! let mut net = Conv2d::same(1, 1, 3);
//! let mut opt = Adam::new(1e-3);
//! // ... forward / loss / backward ...
//! opt.step(&mut net.param_groups());
//! ```
//!
//! Per-group state (momenta, second moments) is keyed by group *order*,
//! which is stable for a fixed network structure.

use crate::layer::{Layer, ParamGroup};

/// Global L2 norm of all gradients in the groups.
pub fn gradient_norm(groups: &[ParamGroup<'_>]) -> f64 {
    groups
        .iter()
        .flat_map(|g| g.grad.iter())
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
}

/// Global L2 norm of all gradients of a network, computed through the
/// allocation-free [`Layer::visit_param_groups`] visitor.
pub fn gradient_norm_of(net: &mut dyn Layer) -> f64 {
    let mut sq = 0.0;
    net.visit_param_groups(&mut |g| {
        sq += g.grad.iter().map(|v| v * v).sum::<f64>();
    });
    sq.sqrt()
}

/// A portable snapshot of an optimizer's internal state, used by
/// checkpointing (`serialize::write_checkpoint`) so a resumed run continues
/// bitwise-identically to an uninterrupted one.
///
/// Slots are keyed by a per-optimizer name (e.g. ADAM's `"m"`/`"v"`); each
/// slot holds one buffer per parameter group, in group order — the same
/// order [`Optimizer::step`] keys its state by.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptimizerState {
    /// Update steps taken so far (drives ADAM's bias correction; 0 for
    /// optimizers without a step counter).
    pub steps: u64,
    /// Named state slots in a fixed per-optimizer order.
    pub slots: Vec<(String, Vec<Vec<f64>>)>,
}

/// Pulls `N` named slots out of a state snapshot, insisting on the exact
/// names and order the optimizer exports.
fn take_slots<const N: usize>(
    st: OptimizerState,
    expect: [&str; N],
) -> Result<[Vec<Vec<f64>>; N], String> {
    let got: Vec<&str> = st.slots.iter().map(|(n, _)| n.as_str()).collect();
    if got != expect {
        return Err(format!(
            "optimizer state slots {got:?} do not match expected {expect:?}"
        ));
    }
    let mut iter = st.slots.into_iter().map(|(_, v)| v);
    Ok(std::array::from_fn(|_| iter.next().unwrap()))
}

/// A first-order optimizer over flat parameter groups.
pub trait Optimizer: Send {
    /// Applies one update step using the gradients currently stored in the
    /// groups. Must be called with the same group structure every time.
    fn step(&mut self, groups: &mut [ParamGroup<'_>]);

    /// Applies one update step directly over a network's parameter groups
    /// via [`Layer::visit_param_groups`] — same arithmetic and group order
    /// as [`Optimizer::step`], but without materializing the group `Vec`.
    /// After per-group state has been created on the first call, this path
    /// performs no heap allocation.
    fn step_visit(&mut self, net: &mut dyn Layer);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Snapshots the internal state (momenta, second moments, step counter)
    /// so it can be checkpointed alongside the parameters.
    fn export_state(&self) -> OptimizerState;

    /// Restores a snapshot taken from the same optimizer kind driving an
    /// identically structured network. Buffer lengths are re-validated
    /// against the groups on the next step.
    fn import_state(&mut self, state: OptimizerState) -> Result<(), String>;
}

fn ensure_state(state: &mut Vec<Vec<f64>>, groups: &[ParamGroup<'_>]) {
    if state.len() < groups.len() {
        for g in &groups[state.len()..] {
            state.push(vec![0.0; g.param.len()]);
        }
    }
    for (s, g) in state.iter().zip(groups) {
        assert_eq!(
            s.len(),
            g.param.len(),
            "optimizer: group structure changed between steps (group '{}')",
            g.name
        );
    }
}

/// Per-group variant of [`ensure_state`] for the visitor path: lazily grows
/// the state list on first visit, then insists the structure is unchanged.
fn ensure_group_state(state: &mut Vec<Vec<f64>>, idx: usize, g: &ParamGroup<'_>) {
    if state.len() == idx {
        state.push(vec![0.0; g.param.len()]);
    }
    assert!(
        idx < state.len(),
        "optimizer: group structure changed between steps (group '{}')",
        g.name
    );
    assert_eq!(
        state[idx].len(),
        g.param.len(),
        "optimizer: group structure changed between steps (group '{}')",
        g.name
    );
}

/// Stochastic gradient descent, optionally with (Nesterov) momentum.
pub struct Sgd {
    lr: f64,
    momentum: f64,
    nesterov: bool,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            momentum: 0.0,
            nesterov: false,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum `mu` (paper Eq. (3) family).
    pub fn with_momentum(lr: f64, mu: f64) -> Self {
        assert!((0.0..1.0).contains(&mu), "Sgd: momentum must be in [0, 1)");
        Self {
            lr,
            momentum: mu,
            nesterov: false,
            velocity: Vec::new(),
        }
    }

    /// SGD with Nesterov momentum.
    pub fn with_nesterov(lr: f64, mu: f64) -> Self {
        let mut s = Self::with_momentum(lr, mu);
        s.nesterov = true;
        s
    }
}

/// The SGD per-group update shared by both step paths.
fn sgd_update(g: &mut ParamGroup<'_>, vel: &mut [f64], lr: f64, momentum: f64, nesterov: bool) {
    if momentum == 0.0 {
        for (p, &dg) in g.param.iter_mut().zip(g.grad) {
            *p -= lr * dg;
        }
    } else {
        for ((p, &dg), v) in g.param.iter_mut().zip(g.grad).zip(vel.iter_mut()) {
            *v = momentum * *v + dg;
            let upd = if nesterov { dg + momentum * *v } else { *v };
            *p -= lr * upd;
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, groups: &mut [ParamGroup<'_>]) {
        ensure_state(&mut self.velocity, groups);
        for (g, vel) in groups.iter_mut().zip(&mut self.velocity) {
            sgd_update(g, vel, self.lr, self.momentum, self.nesterov);
        }
    }

    fn step_visit(&mut self, net: &mut dyn Layer) {
        let (lr, momentum, nesterov) = (self.lr, self.momentum, self.nesterov);
        let velocity = &mut self.velocity;
        let mut idx = 0;
        net.visit_param_groups(&mut |mut g| {
            ensure_group_state(velocity, idx, &g);
            sgd_update(&mut g, &mut velocity[idx], lr, momentum, nesterov);
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        if self.momentum == 0.0 {
            "SGD"
        } else if self.nesterov {
            "SGD+Nesterov"
        } else {
            "SGD+momentum"
        }
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            steps: 0,
            slots: vec![("velocity".into(), self.velocity.clone())],
        }
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<(), String> {
        let [velocity] = take_slots(state, ["velocity"])?;
        self.velocity = velocity;
        Ok(())
    }
}

/// ADAM (Kingma & Ba), exactly the update of the paper's Eqs. (3)–(6) with
/// bias-corrected first and second moments.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// ADAM with default moments (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        Self::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Fully parameterized ADAM.
    ///
    /// # Panics
    /// If the betas are outside `[0, 1)` or `eps ≤ 0`.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "Adam: betas in [0,1)"
        );
        assert!(eps > 0.0, "Adam: eps must be > 0");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// The ADAM per-group update shared by both step paths.
#[allow(clippy::too_many_arguments)]
fn adam_update(
    g: &mut ParamGroup<'_>,
    m: &mut [f64],
    v: &mut [f64],
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    bc1: f64,
    bc2: f64,
) {
    for (((p, &dg), mi), vi) in g
        .param
        .iter_mut()
        .zip(g.grad)
        .zip(m.iter_mut())
        .zip(v.iter_mut())
    {
        *mi = beta1 * *mi + (1.0 - beta1) * dg;
        *vi = beta2 * *vi + (1.0 - beta2) * dg * dg;
        let mhat = *mi / bc1;
        let vhat = *vi / bc2;
        *p -= lr * mhat / (vhat.sqrt() + eps);
    }
}

impl Optimizer for Adam {
    fn step(&mut self, groups: &mut [ParamGroup<'_>]) {
        ensure_state(&mut self.m, groups);
        ensure_state(&mut self.v, groups);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((g, m), v) in groups.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            adam_update(g, m, v, self.lr, self.beta1, self.beta2, self.eps, bc1, bc2);
        }
    }

    fn step_visit(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m_state, v_state) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        net.visit_param_groups(&mut |mut g| {
            ensure_group_state(m_state, idx, &g);
            ensure_group_state(v_state, idx, &g);
            adam_update(
                &mut g,
                &mut m_state[idx],
                &mut v_state[idx],
                lr,
                beta1,
                beta2,
                eps,
                bc1,
                bc2,
            );
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "Adam"
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            steps: self.t,
            slots: vec![("m".into(), self.m.clone()), ("v".into(), self.v.clone())],
        }
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<(), String> {
        let steps = state.steps;
        let [m, v] = take_slots(state, ["m", "v"])?;
        self.t = steps;
        self.m = m;
        self.v = v;
        Ok(())
    }
}

/// AdamW: ADAM with decoupled weight decay.
pub struct AdamW {
    inner: Adam,
    weight_decay: f64,
}

impl AdamW {
    /// AdamW with default moments and the given decoupled decay.
    pub fn new(lr: f64, weight_decay: f64) -> Self {
        assert!(weight_decay >= 0.0, "AdamW: weight_decay must be >= 0");
        Self {
            inner: Adam::new(lr),
            weight_decay,
        }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, groups: &mut [ParamGroup<'_>]) {
        // Decoupled decay: shrink parameters before the ADAM update.
        let decay = self.inner.lr * self.weight_decay;
        for g in groups.iter_mut() {
            for p in g.param.iter_mut() {
                *p -= decay * *p;
            }
        }
        self.inner.step(groups);
    }

    fn step_visit(&mut self, net: &mut dyn Layer) {
        // Decoupled decay in a first sweep, then the ADAM update — the same
        // order as `step`, which decays every group before updating any.
        let decay = self.inner.lr * self.weight_decay;
        net.visit_param_groups(&mut |g| {
            for p in g.param.iter_mut() {
                *p -= decay * *p;
            }
        });
        self.inner.step_visit(net);
    }

    fn learning_rate(&self) -> f64 {
        self.inner.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.inner.lr = lr;
    }

    fn name(&self) -> &'static str {
        "AdamW"
    }

    fn export_state(&self) -> OptimizerState {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<(), String> {
        self.inner.import_state(state)
    }
}

/// RMSProp with the standard exponentially weighted squared-gradient scale.
pub struct RmsProp {
    lr: f64,
    rho: f64,
    eps: f64,
    sq: Vec<Vec<f64>>,
}

impl RmsProp {
    /// RMSProp with decay `rho = 0.9`, `eps = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Self::with_params(lr, 0.9, 1e-8)
    }

    /// Fully parameterized RMSProp.
    pub fn with_params(lr: f64, rho: f64, eps: f64) -> Self {
        assert!((0.0..1.0).contains(&rho), "RmsProp: rho in [0,1)");
        assert!(eps > 0.0, "RmsProp: eps must be > 0");
        Self {
            lr,
            rho,
            eps,
            sq: Vec::new(),
        }
    }
}

/// The RMSProp per-group update shared by both step paths.
fn rmsprop_update(g: &mut ParamGroup<'_>, sq: &mut [f64], lr: f64, rho: f64, eps: f64) {
    for ((p, &dg), s) in g.param.iter_mut().zip(g.grad).zip(sq.iter_mut()) {
        *s = rho * *s + (1.0 - rho) * dg * dg;
        *p -= lr * dg / (s.sqrt() + eps);
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, groups: &mut [ParamGroup<'_>]) {
        ensure_state(&mut self.sq, groups);
        for (g, sq) in groups.iter_mut().zip(&mut self.sq) {
            rmsprop_update(g, sq, self.lr, self.rho, self.eps);
        }
    }

    fn step_visit(&mut self, net: &mut dyn Layer) {
        let (lr, rho, eps) = (self.lr, self.rho, self.eps);
        let sq_state = &mut self.sq;
        let mut idx = 0;
        net.visit_param_groups(&mut |mut g| {
            ensure_group_state(sq_state, idx, &g);
            rmsprop_update(&mut g, &mut sq_state[idx], lr, rho, eps);
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "RMSProp"
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            steps: 0,
            slots: vec![("sq".into(), self.sq.clone())],
        }
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<(), String> {
        let [sq] = take_slots(state, ["sq"])?;
        self.sq = sq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal quadratic test harness: minimize 0.5‖x − x*‖².
    struct Quad {
        x: Vec<f64>,
        g: Vec<f64>,
        target: Vec<f64>,
    }

    impl Quad {
        fn new(start: &[f64], target: &[f64]) -> Self {
            Self {
                x: start.to_vec(),
                g: vec![0.0; start.len()],
                target: target.to_vec(),
            }
        }

        fn compute_grad(&mut self) {
            for i in 0..self.x.len() {
                self.g[i] = self.x[i] - self.target[i];
            }
        }

        fn groups(&mut self) -> Vec<ParamGroup<'_>> {
            vec![ParamGroup {
                param: &mut self.x,
                grad: &self.g,
                name: "x",
            }]
        }

        fn dist(&self) -> f64 {
            self.x
                .iter()
                .zip(&self.target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        }
    }

    fn optimizers() -> Vec<Box<dyn Optimizer>> {
        vec![
            Box::new(Sgd::new(0.2)),
            Box::new(Sgd::with_momentum(0.1, 0.9)),
            Box::new(Sgd::with_nesterov(0.1, 0.9)),
            Box::new(Adam::new(0.3)),
            Box::new(AdamW::new(0.3, 1e-4)),
            Box::new(RmsProp::new(0.1)),
        ]
    }

    #[test]
    fn all_optimizers_converge_on_quadratic() {
        for mut opt in optimizers() {
            let mut q = Quad::new(&[5.0, -3.0, 0.5], &[1.0, 2.0, -1.0]);
            for _ in 0..500 {
                q.compute_grad();
                opt.step(&mut q.groups());
            }
            assert!(
                q.dist() < 1e-2,
                "{} did not converge: dist={}",
                opt.name(),
                q.dist()
            );
        }
    }

    #[test]
    fn sgd_step_is_exact() {
        let mut q = Quad::new(&[2.0], &[0.0]);
        let mut opt = Sgd::new(0.5);
        q.compute_grad();
        opt.step(&mut q.groups());
        assert!((q.x[0] - 1.0).abs() < 1e-12); // 2 - 0.5*2
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first ADAM step is ≈ lr * sign(g).
        let mut q = Quad::new(&[10.0], &[0.0]);
        let mut opt = Adam::new(0.01);
        q.compute_grad();
        opt.step(&mut q.groups());
        assert!((q.x[0] - (10.0 - 0.01)).abs() < 1e-6);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn adamw_decays_weights_without_gradient() {
        let mut x = vec![1.0];
        let g = vec![0.0];
        let mut opt = AdamW::new(0.1, 0.5);
        let mut groups = vec![ParamGroup {
            param: &mut x,
            grad: &g,
            name: "x",
        }];
        opt.step(&mut groups);
        // Pure decay (gradient is zero): x *= (1 - lr*wd) = 0.95.
        assert!((x[0] - 0.95).abs() < 1e-9);
    }

    #[test]
    fn learning_rate_is_settable() {
        for mut opt in optimizers() {
            opt.set_learning_rate(0.123);
            assert_eq!(opt.learning_rate(), 0.123);
        }
    }

    #[test]
    #[should_panic(expected = "group structure changed")]
    fn rejects_changing_group_structure() {
        let mut opt = Adam::new(0.1);
        let mut a = vec![0.0; 3];
        let ga = vec![0.0; 3];
        opt.step(&mut [ParamGroup {
            param: &mut a,
            grad: &ga,
            name: "a",
        }]);
        let mut b = vec![0.0; 5];
        let gb = vec![0.0; 5];
        opt.step(&mut [ParamGroup {
            param: &mut b,
            grad: &gb,
            name: "b",
        }]);
    }

    /// A two-group [`Layer`] over [`Quad`] states, for exercising the
    /// visitor-based optimizer path.
    struct QuadLayer {
        a: Quad,
        b: Quad,
    }

    impl Layer for QuadLayer {
        fn forward(&mut self, input: &pde_tensor::Tensor4, _train: bool) -> pde_tensor::Tensor4 {
            input.clone()
        }
        fn backward(&mut self, grad_out: &pde_tensor::Tensor4) -> pde_tensor::Tensor4 {
            grad_out.clone()
        }
        fn zero_grad(&mut self) {}
        fn param_groups(&mut self) -> Vec<ParamGroup<'_>> {
            vec![
                ParamGroup {
                    param: &mut self.a.x,
                    grad: &self.a.g,
                    name: "a",
                },
                ParamGroup {
                    param: &mut self.b.x,
                    grad: &self.b.g,
                    name: "b",
                },
            ]
        }
        fn param_count(&self) -> usize {
            self.a.x.len() + self.b.x.len()
        }
        fn describe(&self) -> String {
            "QuadLayer".into()
        }
    }

    #[test]
    fn export_import_state_resumes_bitwise() {
        // Run N steps, snapshot state, keep stepping the original; a fresh
        // optimizer fed the snapshot must produce bitwise-identical
        // parameters — the invariant checkpoint/resume relies on. Catches
        // any state field missing from export (e.g. ADAM's step counter,
        // whose bias correction differs at t=6 vs t=1).
        for (mut orig, mut resumed) in optimizers().into_iter().zip(optimizers()) {
            let mut q = Quad::new(&[5.0, -3.0, 0.5], &[1.0, 2.0, -1.0]);
            for _ in 0..5 {
                q.compute_grad();
                orig.step(&mut q.groups());
            }
            let mut q2 = Quad::new(&q.x, &q.target);
            resumed.import_state(orig.export_state()).unwrap();
            for _ in 0..5 {
                q.compute_grad();
                orig.step(&mut q.groups());
                q2.compute_grad();
                resumed.step(&mut q2.groups());
            }
            assert_eq!(q.x, q2.x, "{}: resumed run diverged", orig.name());
            assert_eq!(
                orig.export_state(),
                resumed.export_state(),
                "{}: states diverged after resume",
                orig.name()
            );
        }
    }

    #[test]
    fn import_state_rejects_wrong_slots() {
        let mut adam = Adam::new(0.1);
        let sgd_state = Sgd::new(0.1).export_state();
        assert!(adam.import_state(sgd_state).is_err());
    }

    #[test]
    fn step_visit_matches_step_bitwise() {
        for (mut by_slice, mut by_visit) in optimizers().into_iter().zip(optimizers()) {
            let fresh = || QuadLayer {
                a: Quad::new(&[5.0, -3.0, 0.5], &[1.0, 2.0, -1.0]),
                b: Quad::new(&[0.25, 8.0], &[-2.0, 0.0]),
            };
            let mut net_s = fresh();
            let mut net_v = fresh();
            for _ in 0..25 {
                net_s.a.compute_grad();
                net_s.b.compute_grad();
                by_slice.step(&mut net_s.param_groups());
                net_v.a.compute_grad();
                net_v.b.compute_grad();
                by_visit.step_visit(&mut net_v);
            }
            assert_eq!(
                net_s.a.x,
                net_v.a.x,
                "{}: group a diverged",
                by_slice.name()
            );
            assert_eq!(
                net_s.b.x,
                net_v.b.x,
                "{}: group b diverged",
                by_slice.name()
            );
        }
    }
}
