//! Model parameter serialization.
//!
//! A deliberately tiny, versioned, self-describing binary format (magic +
//! version + named parameter groups as little-endian `f64`), so trained
//! subdomain networks can be checkpointed to disk and reloaded for
//! inference-only runs. No external dependencies.
//!
//! Format v1:
//! ```text
//! magic   : 8 bytes  b"PDENN\0\0\x01"
//! ngroups : u64 LE
//! repeat ngroups times:
//!   name_len : u64 LE
//!   name     : name_len bytes UTF-8
//!   data_len : u64 LE        (number of f64 values)
//!   data     : data_len × f64 LE
//! ```

//! Checkpoint format v1 (`write_checkpoint`) wraps a params section in an
//! outer envelope and appends the optimizer state, so a resumed run
//! continues bitwise-identically:
//! ```text
//! magic   : 8 bytes  b"PDECK\0\0\x01"
//! params  : one PDENN v1 stream (as above)
//! steps   : u64 LE              (optimizer step counter)
//! nslots  : u64 LE
//! repeat nslots times:
//!   name_len : u64 LE
//!   name     : name_len bytes UTF-8   (slot name, e.g. "m", "v")
//!   ngroups  : u64 LE
//!   repeat ngroups times:
//!     data_len : u64 LE
//!     data     : data_len × f64 LE
//! ```

use crate::layer::Layer;
use crate::optim::{Optimizer, OptimizerState};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PDENN\0\0\x01";
const CKPT_MAGIC: &[u8; 8] = b"PDECK\0\0\x01";

/// Errors produced by [`load_params`] / [`read_params`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic / truncated stream / malformed counts.
    Format(String),
    /// Parameter groups do not line up with the target network.
    Mismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(s) => write!(f, "format error: {s}"),
            LoadError::Mismatch(s) => write!(f, "model mismatch: {s}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Serializes the network's parameter groups into `w`.
pub fn write_params(net: &mut dyn Layer, w: &mut dyn Write) -> io::Result<()> {
    let groups = net.param_groups();
    w.write_all(MAGIC)?;
    w.write_all(&(groups.len() as u64).to_le_bytes())?;
    for g in &groups {
        let name = g.name.as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(g.param.len() as u64).to_le_bytes())?;
        for &v in g.param.iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u64(r: &mut dyn Read) -> Result<u64, LoadError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|e| LoadError::Format(format!("truncated: {e}")))?;
    Ok(u64::from_le_bytes(b))
}

/// Deserializes parameter groups from `r` into the network, verifying that
/// names and lengths match group-for-group.
pub fn read_params(net: &mut dyn Layer, r: &mut dyn Read) -> Result<(), LoadError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| LoadError::Format(format!("no magic: {e}")))?;
    if &magic != MAGIC {
        return Err(LoadError::Format("bad magic (not a PDENN v1 file)".into()));
    }
    let ngroups = read_u64(r)? as usize;
    let mut groups = net.param_groups();
    if ngroups != groups.len() {
        return Err(LoadError::Mismatch(format!(
            "file has {ngroups} groups, network has {}",
            groups.len()
        )));
    }
    for g in groups.iter_mut() {
        let name_len = read_u64(r)? as usize;
        if name_len > 4096 {
            return Err(LoadError::Format(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)
            .map_err(|e| LoadError::Format(format!("truncated name: {e}")))?;
        let name =
            String::from_utf8(name).map_err(|_| LoadError::Format("non-UTF-8 name".into()))?;
        if name != g.name {
            return Err(LoadError::Mismatch(format!(
                "group name '{name}' vs expected '{}'",
                g.name
            )));
        }
        let data_len = read_u64(r)? as usize;
        if data_len != g.param.len() {
            return Err(LoadError::Mismatch(format!(
                "group '{name}': file has {data_len} values, network expects {}",
                g.param.len()
            )));
        }
        let mut buf = [0u8; 8];
        for v in g.param.iter_mut() {
            r.read_exact(&mut buf)
                .map_err(|e| LoadError::Format(format!("truncated data: {e}")))?;
            *v = f64::from_le_bytes(buf);
        }
    }
    Ok(())
}

fn write_str(w: &mut dyn Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u64).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut dyn Read) -> Result<String, LoadError> {
    let len = read_u64(r)? as usize;
    if len > 4096 {
        return Err(LoadError::Format(format!("implausible name length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|e| LoadError::Format(format!("truncated name: {e}")))?;
    String::from_utf8(buf).map_err(|_| LoadError::Format("non-UTF-8 name".into()))
}

fn read_f64_vec(r: &mut dyn Read, len: usize) -> Result<Vec<f64>, LoadError> {
    let mut out = Vec::with_capacity(len);
    let mut b = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut b)
            .map_err(|e| LoadError::Format(format!("truncated data: {e}")))?;
        out.push(f64::from_le_bytes(b));
    }
    Ok(out)
}

/// Serializes the network's parameters *and* the optimizer's state into `w`
/// (checkpoint format v1).
pub fn write_checkpoint(
    net: &mut dyn Layer,
    opt: &dyn Optimizer,
    w: &mut dyn Write,
) -> io::Result<()> {
    w.write_all(CKPT_MAGIC)?;
    write_params(net, w)?;
    let state = opt.export_state();
    w.write_all(&state.steps.to_le_bytes())?;
    w.write_all(&(state.slots.len() as u64).to_le_bytes())?;
    for (name, buffers) in &state.slots {
        write_str(w, name)?;
        w.write_all(&(buffers.len() as u64).to_le_bytes())?;
        for buf in buffers {
            w.write_all(&(buf.len() as u64).to_le_bytes())?;
            for &v in buf {
                w.write_all(&v.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserializes a checkpoint into an identically structured network and the
/// same kind of optimizer. Slot names are validated by the optimizer's
/// `import_state`; group counts/lengths by `read_params` and the
/// optimizer's own structure checks on the next step.
pub fn read_checkpoint(
    net: &mut dyn Layer,
    opt: &mut dyn Optimizer,
    r: &mut dyn Read,
) -> Result<(), LoadError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| LoadError::Format(format!("no magic: {e}")))?;
    if &magic != CKPT_MAGIC {
        return Err(LoadError::Format("bad magic (not a PDECK v1 file)".into()));
    }
    read_params(net, r)?;
    let steps = read_u64(r)?;
    let nslots = read_u64(r)? as usize;
    if nslots > 16 {
        return Err(LoadError::Format(format!(
            "implausible slot count {nslots}"
        )));
    }
    let mut slots = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        let name = read_str(r)?;
        let ngroups = read_u64(r)? as usize;
        let mut buffers = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let len = read_u64(r)? as usize;
            buffers.push(read_f64_vec(r, len)?);
        }
        slots.push((name, buffers));
    }
    opt.import_state(OptimizerState { steps, slots })
        .map_err(LoadError::Mismatch)
}

/// Saves a checkpoint (parameters + optimizer state) to a file.
pub fn save_checkpoint(net: &mut dyn Layer, opt: &dyn Optimizer, path: &Path) -> io::Result<()> {
    let mut buf = Vec::new();
    write_checkpoint(net, opt, &mut buf)?;
    fs::write(path, buf)
}

/// Loads a checkpoint from a file. See [`read_checkpoint`].
pub fn load_checkpoint(
    net: &mut dyn Layer,
    opt: &mut dyn Optimizer,
    path: &Path,
) -> Result<(), LoadError> {
    let data = fs::read(path)?;
    read_checkpoint(net, opt, &mut data.as_slice())
}

/// Saves the network's parameters to a file.
pub fn save_params(net: &mut dyn Layer, path: &Path) -> io::Result<()> {
    let mut buf = Vec::new();
    write_params(net, &mut buf)?;
    fs::write(path, buf)
}

/// Loads parameters from a file into an already-constructed network of
/// identical structure.
pub fn load_params(net: &mut dyn Layer, path: &Path) -> Result<(), LoadError> {
    let data = fs::read(path)?;
    read_params(net, &mut data.as_slice())
}

/// Snapshots all parameters into one flat vector (group order).
pub fn snapshot(net: &mut dyn Layer) -> Vec<f64> {
    net.param_groups()
        .iter()
        .flat_map(|g| g.param.to_vec())
        .collect()
}

/// Restores a [`snapshot`] taken from an identically structured network.
///
/// # Panics
/// If the snapshot length does not match the parameter count.
pub fn restore(net: &mut dyn Layer, snap: &[f64]) {
    assert_eq!(
        net.param_count(),
        snap.len(),
        "restore: snapshot length mismatch"
    );
    let mut offset = 0;
    for g in net.param_groups() {
        g.param
            .copy_from_slice(&snap[offset..offset + g.param.len()]);
        offset += g.param.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::LeakyReLu;
    use crate::conv::Conv2d;
    use crate::init::{init_conv, Init};
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c1 = Conv2d::same(2, 4, 3);
        let mut c2 = Conv2d::same(4, 2, 3);
        init_conv(&mut c1, Init::KaimingUniform { neg_slope: 0.01 }, &mut rng);
        init_conv(&mut c2, Init::KaimingUniform { neg_slope: 0.01 }, &mut rng);
        Sequential::new()
            .push(c1)
            .push(LeakyReLu::paper_default())
            .push(c2)
    }

    #[test]
    fn round_trip_through_memory() {
        let mut a = net(10);
        let mut buf = Vec::new();
        write_params(&mut a, &mut buf).unwrap();
        let mut b = net(20); // different weights
        read_params(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(snapshot(&mut a), snapshot(&mut b));
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("pde_nn_serialize_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.pdenn");
        let mut a = net(1);
        save_params(&mut a, &path).unwrap();
        let mut b = net(2);
        load_params(&mut b, &path).unwrap();
        assert_eq!(snapshot(&mut a), snapshot(&mut b));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_round_trip_restores_params_and_optimizer_state() {
        use crate::loss::{Loss, Mse};
        use crate::optim::{Adam, Optimizer};
        use pde_tensor::Tensor4;

        // Train a few steps so ADAM has nonzero moments and t > 0.
        let mut a = net(11);
        let mut opt_a = Adam::new(1e-2);
        let x = Tensor4::from_fn(2, 2, 5, 5, |b, c, i, j| {
            (b + 2 * c + 3 * i + 5 * j) as f64 * 0.1 - 1.0
        });
        let target = Tensor4::zeros(2, 2, 5, 5);
        let loss = Mse;
        let step = |net: &mut Sequential, opt: &mut Adam| {
            net.zero_grad();
            let y = net.forward(&x, true);
            let (_, grad) = loss.value_and_grad(&y, &target);
            net.backward(&grad);
            opt.step(&mut net.param_groups());
        };
        for _ in 0..3 {
            step(&mut a, &mut opt_a);
        }

        let mut buf = Vec::new();
        write_checkpoint(&mut a, &opt_a, &mut buf).unwrap();
        let mut b = net(12);
        let mut opt_b = Adam::new(1e-2);
        read_checkpoint(&mut b, &mut opt_b, &mut buf.as_slice()).unwrap();
        assert_eq!(snapshot(&mut a), snapshot(&mut b));
        assert_eq!(opt_a.export_state(), opt_b.export_state());

        // The real invariant: resumed training is bitwise identical.
        step(&mut a, &mut opt_a);
        step(&mut b, &mut opt_b);
        assert_eq!(snapshot(&mut a), snapshot(&mut b));
    }

    #[test]
    fn checkpoint_rejects_params_only_file_and_vice_versa() {
        use crate::optim::Adam;
        let mut a = net(13);
        let mut params_only = Vec::new();
        write_params(&mut a, &mut params_only).unwrap();
        let mut b = net(14);
        let mut opt = Adam::new(1e-3);
        let err = read_checkpoint(&mut b, &mut opt, &mut params_only.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");

        let mut ckpt = Vec::new();
        write_checkpoint(&mut a, &opt, &mut ckpt).unwrap();
        let err = read_params(&mut b, &mut ckpt.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn checkpoint_rejects_optimizer_kind_mismatch() {
        use crate::optim::{Adam, Sgd};
        let mut a = net(15);
        let opt_a = Adam::new(1e-3);
        let mut buf = Vec::new();
        write_checkpoint(&mut a, &opt_a, &mut buf).unwrap();
        let mut b = net(16);
        let mut sgd = Sgd::new(1e-3);
        let err = read_checkpoint(&mut b, &mut sgd, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = net(3);
        let garbage = vec![0u8; 64];
        let err = read_params(&mut b, &mut garbage.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_structure_mismatch() {
        let mut small = Sequential::new().push(Conv2d::same(1, 1, 3));
        let mut buf = Vec::new();
        write_params(&mut small, &mut buf).unwrap();
        let mut big = net(4);
        let err = read_params(&mut big, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut a = net(5);
        let mut buf = Vec::new();
        write_params(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = net(6);
        let err = read_params(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut a = net(7);
        let snap = snapshot(&mut a);
        let mut b = net(8);
        restore(&mut b, &snap);
        assert_eq!(snapshot(&mut b), snap);
    }

    #[test]
    #[should_panic(expected = "snapshot length mismatch")]
    fn restore_rejects_short_snapshot() {
        let mut a = net(9);
        let snap = vec![0.0; 3];
        restore(&mut a, &snap);
    }
}
