//! Model parameter serialization.
//!
//! A deliberately tiny, versioned, self-describing binary format (magic +
//! version + named parameter groups as little-endian `f64`), so trained
//! subdomain networks can be checkpointed to disk and reloaded for
//! inference-only runs. No external dependencies.
//!
//! Format v1:
//! ```text
//! magic   : 8 bytes  b"PDENN\0\0\x01"
//! ngroups : u64 LE
//! repeat ngroups times:
//!   name_len : u64 LE
//!   name     : name_len bytes UTF-8
//!   data_len : u64 LE        (number of f64 values)
//!   data     : data_len × f64 LE
//! ```

use crate::layer::Layer;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PDENN\0\0\x01";

/// Errors produced by [`load_params`] / [`read_params`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic / truncated stream / malformed counts.
    Format(String),
    /// Parameter groups do not line up with the target network.
    Mismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(s) => write!(f, "format error: {s}"),
            LoadError::Mismatch(s) => write!(f, "model mismatch: {s}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Serializes the network's parameter groups into `w`.
pub fn write_params(net: &mut dyn Layer, w: &mut dyn Write) -> io::Result<()> {
    let groups = net.param_groups();
    w.write_all(MAGIC)?;
    w.write_all(&(groups.len() as u64).to_le_bytes())?;
    for g in &groups {
        let name = g.name.as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(g.param.len() as u64).to_le_bytes())?;
        for &v in g.param.iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u64(r: &mut dyn Read) -> Result<u64, LoadError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|e| LoadError::Format(format!("truncated: {e}")))?;
    Ok(u64::from_le_bytes(b))
}

/// Deserializes parameter groups from `r` into the network, verifying that
/// names and lengths match group-for-group.
pub fn read_params(net: &mut dyn Layer, r: &mut dyn Read) -> Result<(), LoadError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| LoadError::Format(format!("no magic: {e}")))?;
    if &magic != MAGIC {
        return Err(LoadError::Format("bad magic (not a PDENN v1 file)".into()));
    }
    let ngroups = read_u64(r)? as usize;
    let mut groups = net.param_groups();
    if ngroups != groups.len() {
        return Err(LoadError::Mismatch(format!(
            "file has {ngroups} groups, network has {}",
            groups.len()
        )));
    }
    for g in groups.iter_mut() {
        let name_len = read_u64(r)? as usize;
        if name_len > 4096 {
            return Err(LoadError::Format(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)
            .map_err(|e| LoadError::Format(format!("truncated name: {e}")))?;
        let name =
            String::from_utf8(name).map_err(|_| LoadError::Format("non-UTF-8 name".into()))?;
        if name != g.name {
            return Err(LoadError::Mismatch(format!(
                "group name '{name}' vs expected '{}'",
                g.name
            )));
        }
        let data_len = read_u64(r)? as usize;
        if data_len != g.param.len() {
            return Err(LoadError::Mismatch(format!(
                "group '{name}': file has {data_len} values, network expects {}",
                g.param.len()
            )));
        }
        let mut buf = [0u8; 8];
        for v in g.param.iter_mut() {
            r.read_exact(&mut buf)
                .map_err(|e| LoadError::Format(format!("truncated data: {e}")))?;
            *v = f64::from_le_bytes(buf);
        }
    }
    Ok(())
}

/// Saves the network's parameters to a file.
pub fn save_params(net: &mut dyn Layer, path: &Path) -> io::Result<()> {
    let mut buf = Vec::new();
    write_params(net, &mut buf)?;
    fs::write(path, buf)
}

/// Loads parameters from a file into an already-constructed network of
/// identical structure.
pub fn load_params(net: &mut dyn Layer, path: &Path) -> Result<(), LoadError> {
    let data = fs::read(path)?;
    read_params(net, &mut data.as_slice())
}

/// Snapshots all parameters into one flat vector (group order).
pub fn snapshot(net: &mut dyn Layer) -> Vec<f64> {
    net.param_groups()
        .iter()
        .flat_map(|g| g.param.to_vec())
        .collect()
}

/// Restores a [`snapshot`] taken from an identically structured network.
///
/// # Panics
/// If the snapshot length does not match the parameter count.
pub fn restore(net: &mut dyn Layer, snap: &[f64]) {
    assert_eq!(
        net.param_count(),
        snap.len(),
        "restore: snapshot length mismatch"
    );
    let mut offset = 0;
    for g in net.param_groups() {
        g.param
            .copy_from_slice(&snap[offset..offset + g.param.len()]);
        offset += g.param.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::LeakyReLu;
    use crate::conv::Conv2d;
    use crate::init::{init_conv, Init};
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c1 = Conv2d::same(2, 4, 3);
        let mut c2 = Conv2d::same(4, 2, 3);
        init_conv(&mut c1, Init::KaimingUniform { neg_slope: 0.01 }, &mut rng);
        init_conv(&mut c2, Init::KaimingUniform { neg_slope: 0.01 }, &mut rng);
        Sequential::new()
            .push(c1)
            .push(LeakyReLu::paper_default())
            .push(c2)
    }

    #[test]
    fn round_trip_through_memory() {
        let mut a = net(10);
        let mut buf = Vec::new();
        write_params(&mut a, &mut buf).unwrap();
        let mut b = net(20); // different weights
        read_params(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(snapshot(&mut a), snapshot(&mut b));
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("pde_nn_serialize_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.pdenn");
        let mut a = net(1);
        save_params(&mut a, &path).unwrap();
        let mut b = net(2);
        load_params(&mut b, &path).unwrap();
        assert_eq!(snapshot(&mut a), snapshot(&mut b));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = net(3);
        let garbage = vec![0u8; 64];
        let err = read_params(&mut b, &mut garbage.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_structure_mismatch() {
        let mut small = Sequential::new().push(Conv2d::same(1, 1, 3));
        let mut buf = Vec::new();
        write_params(&mut small, &mut buf).unwrap();
        let mut big = net(4);
        let err = read_params(&mut big, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut a = net(5);
        let mut buf = Vec::new();
        write_params(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = net(6);
        let err = read_params(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut a = net(7);
        let snap = snapshot(&mut a);
        let mut b = net(8);
        restore(&mut b, &snap);
        assert_eq!(snapshot(&mut b), snap);
    }

    #[test]
    #[should_panic(expected = "snapshot length mismatch")]
    fn restore_rejects_short_snapshot() {
        let mut a = net(9);
        let snap = vec![0.0; 3];
        restore(&mut a, &snap);
    }
}
