//! Elementwise activation layers.
//!
//! The paper uses leaky ReLU with ε = 0.01 (its Eq. (2)); plain ReLU and
//! tanh are provided for the activation ablation.

use crate::layer::{Layer, ParamGroup};
use pde_tensor::Tensor4;

/// Leaky rectified linear unit: `x` for `x ≥ 0`, `ε·x` otherwise.
pub struct LeakyReLu {
    epsilon: f64,
    cached_input: Option<Tensor4>,
}

impl LeakyReLu {
    /// New leaky ReLU with negative-side slope `epsilon`.
    ///
    /// # Panics
    /// If `epsilon` is negative or ≥ 1 (that would not be a *leaky* ReLU).
    pub fn new(epsilon: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&epsilon),
            "LeakyReLu: epsilon must be in [0, 1)"
        );
        Self {
            epsilon,
            cached_input: None,
        }
    }

    /// The paper's default (ε = 0.01).
    pub fn paper_default() -> Self {
        Self::new(0.01)
    }

    /// The configured negative-side slope.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Layer for LeakyReLu {
    fn forward(&mut self, input: &Tensor4, train: bool) -> Tensor4 {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(input, train, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mut grad_in = Tensor4::zeros(0, 0, 0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor4, train: bool, out: &mut Tensor4) {
        if train {
            match &mut self.cached_input {
                Some(t) => t.copy_from(input),
                None => self.cached_input = Some(input.clone()),
            }
        }
        let eps = self.epsilon;
        let (n, c, h, w) = input.shape();
        out.resize(n, c, h, w);
        for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = if x >= 0.0 { x } else { eps * x };
        }
    }

    fn backward_into(&mut self, grad_out: &Tensor4, grad_in: &mut Tensor4) {
        let input = self
            .cached_input
            .as_ref()
            .expect("LeakyReLu::backward before forward");
        assert_eq!(
            input.shape(),
            grad_out.shape(),
            "LeakyReLu::backward: shape mismatch"
        );
        let eps = self.epsilon;
        let (n, c, h, w) = grad_out.shape();
        grad_in.resize(n, c, h, w);
        for ((gi, &go), &xv) in grad_in
            .as_mut_slice()
            .iter_mut()
            .zip(grad_out.as_slice())
            .zip(input.as_slice())
        {
            // The subgradient at exactly 0 is taken from the positive side,
            // matching the forward convention x >= 0 → identity.
            *gi = if xv < 0.0 { eps * go } else { go };
        }
    }

    fn zero_grad(&mut self) {}

    fn param_groups(&mut self) -> Vec<ParamGroup<'_>> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }

    fn describe(&self) -> String {
        format!("LeakyReLU(eps={})", self.epsilon)
    }
}

/// Plain rectified linear unit (ε = 0 special case).
pub struct ReLu(LeakyReLu);

impl ReLu {
    /// New ReLU.
    pub fn new() -> Self {
        Self(LeakyReLu {
            epsilon: 0.0,
            cached_input: None,
        })
    }
}

impl Default for ReLu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ReLu {
    fn forward(&mut self, input: &Tensor4, train: bool) -> Tensor4 {
        self.0.forward(input, train)
    }
    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        self.0.backward(grad_out)
    }
    fn forward_into(&mut self, input: &Tensor4, train: bool, out: &mut Tensor4) {
        self.0.forward_into(input, train, out);
    }
    fn backward_into(&mut self, grad_out: &Tensor4, grad_in: &mut Tensor4) {
        self.0.backward_into(grad_out, grad_in);
    }
    fn zero_grad(&mut self) {}
    fn param_groups(&mut self) -> Vec<ParamGroup<'_>> {
        Vec::new()
    }
    fn param_count(&self) -> usize {
        0
    }
    fn describe(&self) -> String {
        "ReLU".into()
    }
}

/// Hyperbolic tangent activation.
pub struct Tanh {
    cached_output: Option<Tensor4>,
}

impl Tanh {
    /// New tanh layer.
    pub fn new() -> Self {
        Self {
            cached_output: None,
        }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor4, train: bool) -> Tensor4 {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(input, train, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mut grad_in = Tensor4::zeros(0, 0, 0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor4, train: bool, out: &mut Tensor4) {
        let (n, c, h, w) = input.shape();
        out.resize(n, c, h, w);
        for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = x.tanh();
        }
        if train {
            match &mut self.cached_output {
                Some(t) => t.copy_from(out),
                None => self.cached_output = Some(out.clone()),
            }
        }
    }

    fn backward_into(&mut self, grad_out: &Tensor4, grad_in: &mut Tensor4) {
        let out = self
            .cached_output
            .as_ref()
            .expect("Tanh::backward before forward");
        assert_eq!(
            out.shape(),
            grad_out.shape(),
            "Tanh::backward: shape mismatch"
        );
        let (n, c, h, w) = grad_out.shape();
        grad_in.resize(n, c, h, w);
        for ((gi, &go), &yv) in grad_in
            .as_mut_slice()
            .iter_mut()
            .zip(grad_out.as_slice())
            .zip(out.as_slice())
        {
            *gi = go * (1.0 - yv * yv);
        }
    }

    fn zero_grad(&mut self) {}
    fn param_groups(&mut self) -> Vec<ParamGroup<'_>> {
        Vec::new()
    }
    fn param_count(&self) -> usize {
        0
    }
    fn describe(&self) -> String {
        "Tanh".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f64]) -> Tensor4 {
        Tensor4::from_vec(1, 1, 1, vals.len(), vals.to_vec())
    }

    #[test]
    fn leaky_relu_forward_values() {
        let mut l = LeakyReLu::new(0.1);
        let y = l.forward(&t(&[-2.0, -0.5, 0.0, 0.5, 2.0]), false);
        assert_eq!(y.as_slice(), &[-0.2, -0.05, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn leaky_relu_backward_mask() {
        let mut l = LeakyReLu::new(0.01);
        let _ = l.forward(&t(&[-1.0, 0.0, 3.0]), true);
        let g = l.backward(&t(&[1.0, 1.0, 1.0]));
        assert_eq!(g.as_slice(), &[0.01, 1.0, 1.0]);
    }

    #[test]
    fn relu_zeros_negatives() {
        let mut l = ReLu::new();
        let y = l.forward(&t(&[-3.0, 4.0]), true);
        assert_eq!(y.as_slice(), &[0.0, 4.0]);
        let g = l.backward(&t(&[5.0, 5.0]));
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut l = Tanh::new();
        let x = t(&[-0.7, 0.0, 0.3, 1.2]);
        let _ = l.forward(&x, true);
        let g = l.backward(&t(&[1.0, 1.0, 1.0, 1.0]));
        let eps = 1e-6;
        for k in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[k] -= eps;
            let fd = (xp.as_slice()[k].tanh() - xm.as_slice()[k].tanh()) / (2.0 * eps);
            assert!((fd - g.as_slice()[k]).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut l = LeakyReLu::paper_default();
        let _ = l.backward(&t(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn rejects_bad_epsilon() {
        let _ = LeakyReLu::new(1.5);
    }
}
