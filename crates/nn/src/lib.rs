//! # pde-nn
//!
//! A small, explicit-backprop neural-network library: the PyTorch substitute
//! used by the paper reproduction.
//!
//! Layers implement [`Layer`] with hand-written forward/backward passes (the
//! network in the paper is four convolution layers — see
//! `pde-ml-core::arch`), losses implement [`loss::Loss`], optimizers
//! implement [`optim::Optimizer`]. Gradient correctness is enforced by the
//! finite-difference checker in [`gradcheck`], which the test suites of this
//! crate and of `pde-ml-core` run over every layer/loss combination.
//!
//! Design notes:
//! * All parameters and gradients are exposed as flat `&mut [f64]` groups via
//!   [`Layer::param_groups`]; optimizers keep per-group state keyed by the
//!   (stable) group order.
//! * `forward` caches whatever the layer needs for `backward`; a training
//!   step is `forward → loss → backward → optimizer.step`.
//! * Nothing here is thread-aware: parallelism happens one level up, where
//!   each MPI-like rank owns one whole network (the paper's scheme).

pub mod activation;
pub mod conv;
pub mod deconv;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod lr;
pub mod optim;
pub mod sequential;
pub mod serialize;

pub use activation::{LeakyReLu, ReLu, Tanh};
pub use conv::Conv2d;
pub use deconv::ConvTranspose2d;
pub use layer::{Layer, ParamGroup};
pub use loss::{Huber, Loss, Mae, Mape, Mse};
pub use lr::LrSchedule;
pub use optim::{Adam, AdamW, Optimizer, OptimizerState, RmsProp, Sgd};
pub use sequential::Sequential;
