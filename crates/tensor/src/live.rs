//! Kernel-layer live telemetry: per-rank throughput and thread-budget
//! gauges in the shared [`pde_telemetry`] registry (scraped at `/metrics`).
//!
//! Attribution follows the rank tag each worker thread carries in
//! [`pde_trace`] (`set_thread_rank`), falling back to the driver shard on
//! untagged threads. Updates are one sharded atomic store per GEMM driver
//! call — cheap enough to leave on unconditionally, matching the policy of
//! the other `live` modules in the workspace.

use pde_telemetry::{Counter, Gauge};
use std::sync::OnceLock;

/// Telemetry shard for the current thread's rank tag.
fn rank() -> usize {
    let r = pde_trace::thread_rank();
    if r == pde_trace::DRIVER_RANK {
        pde_telemetry::DRIVER
    } else {
        r as usize
    }
}

fn gflops_gauge() -> &'static Gauge {
    static G: OnceLock<&'static Gauge> = OnceLock::new();
    G.get_or_init(|| {
        pde_telemetry::gauge(
            "pdeml_kernel_gflops",
            "Most recent GEMM driver throughput per rank (GFLOP/s)",
        )
    })
}

fn threads_gauge() -> &'static Gauge {
    static G: OnceLock<&'static Gauge> = OnceLock::new();
    G.get_or_init(|| {
        pde_telemetry::gauge(
            "pdeml_kernel_threads_active",
            "Configured intra-rank kernel thread budget per rank",
        )
    })
}

fn flops_total() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| {
        pde_telemetry::counter(
            "pdeml_kernel_flops_total",
            "Floating-point operations issued by the GEMM kernels",
        )
    })
}

fn time_ns_total() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| {
        pde_telemetry::counter(
            "pdeml_kernel_time_ns_total",
            "Wall-clock nanoseconds spent inside the GEMM driver",
        )
    })
}

/// Publishes one GEMM driver invocation. The gauge stores whole GFLOP/s:
/// `flops / ns` is exact in those units (1e9 cancels).
pub(crate) fn record_kernel(flops: u64, ns: u64) {
    let r = rank();
    flops_total().add(r, flops);
    time_ns_total().add(r, ns);
    if let Some(gflops) = flops.checked_div(ns) {
        gflops_gauge().set(r, gflops as i64);
    }
}

/// Publishes the kernel thread budget installed on this rank.
pub(crate) fn set_threads_active(n: usize) {
    threads_gauge().set(rank(), n as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_gauges_register_and_accumulate() {
        record_kernel(2_000_000_000, 1_000_000_000);
        set_threads_active(3);
        let text = pde_telemetry::render_prometheus();
        assert!(
            text.contains("pdeml_kernel_gflops"),
            "gauge missing:\n{text}"
        );
        assert!(
            text.contains("pdeml_kernel_threads_active"),
            "thread gauge missing:\n{text}"
        );
        assert!(flops_total().total() >= 2_000_000_000);
        assert!(time_ns_total().total() >= 1_000_000_000);
    }
}
