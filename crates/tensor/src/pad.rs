//! Spatial padding and cropping.
//!
//! §III of the paper discusses four ways to reconcile the conv-layer output
//! size with the target size; two are padding-based (zeros, neighbour data).
//! The kernels here implement the spatial-extension mechanics for grids and
//! tensors; the *strategy* choice lives in `pde-ml-core`.

use crate::{Grid2, Tensor3, Tensor4};

/// How out-of-domain values are synthesized when padding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PadMode {
    /// Pad with zeros (the paper's approach 1).
    Zeros,
    /// Pad by replicating the edge value (a homogeneous-Neumann-like
    /// extension, appropriate for the density/velocity boundary conditions).
    Replicate,
    /// Pad by mirroring interior values about the edge (excluding the edge
    /// itself), i.e. `p[-1] = p[1]`.
    Reflect,
}

#[inline]
fn src_index(i: isize, n: usize, mode: PadMode) -> Option<usize> {
    if i >= 0 && (i as usize) < n {
        return Some(i as usize);
    }
    match mode {
        PadMode::Zeros => None,
        PadMode::Replicate => Some(i.clamp(0, n as isize - 1) as usize),
        PadMode::Reflect => {
            debug_assert!(n > 1, "reflect padding needs extent > 1");
            let period = 2 * (n as isize - 1);
            let mut k = i.rem_euclid(period);
            if k >= n as isize {
                k = period - k;
            }
            Some(k as usize)
        }
    }
}

/// Pads a grid by `top`, `bottom`, `left`, `right` cells.
pub fn pad_grid(
    g: &Grid2,
    top: usize,
    bottom: usize,
    left: usize,
    right: usize,
    mode: PadMode,
) -> Grid2 {
    let (h, w) = g.shape();
    Grid2::from_fn(h + top + bottom, w + left + right, |i, j| {
        let si = src_index(i as isize - top as isize, h, mode);
        let sj = src_index(j as isize - left as isize, w, mode);
        match (si, sj) {
            (Some(a), Some(b)) => g[(a, b)],
            _ => 0.0,
        }
    })
}

/// Pads every channel of a sample by the same margins.
pub fn pad_tensor3(
    t: &Tensor3,
    top: usize,
    bottom: usize,
    left: usize,
    right: usize,
    mode: PadMode,
) -> Tensor3 {
    let (c, h, w) = t.shape();
    let (oh, ow) = (h + top + bottom, w + left + right);
    let mut out = Tensor3::zeros(c, oh, ow);
    for ch in 0..c {
        let src = t.channel(ch);
        let dst = out.channel_mut(ch);
        for i in 0..oh {
            let si = src_index(i as isize - top as isize, h, mode);
            for j in 0..ow {
                let sj = src_index(j as isize - left as isize, w, mode);
                dst[i * ow + j] = match (si, sj) {
                    (Some(a), Some(b)) => src[a * w + b],
                    _ => 0.0,
                };
            }
        }
    }
    out
}

/// Pads every sample of a batch symmetrically by `p` cells on each side.
pub fn pad_tensor4(t: &Tensor4, p: usize, mode: PadMode) -> Tensor4 {
    pad_tensor4_asym(t, p, p, p, p, mode)
}

/// Pads every sample of a batch by independent margins per side.
pub fn pad_tensor4_asym(
    t: &Tensor4,
    top: usize,
    bottom: usize,
    left: usize,
    right: usize,
    mode: PadMode,
) -> Tensor4 {
    let (n, c, h, w) = t.shape();
    let (oh, ow) = (h + top + bottom, w + left + right);
    let mut out = Tensor4::zeros(n, c, oh, ow);
    for s in 0..n {
        for ch in 0..c {
            let src = &t.sample(s)[ch * h * w..(ch + 1) * h * w];
            let dst = &mut out.sample_mut(s)[ch * oh * ow..(ch + 1) * oh * ow];
            for i in 0..oh {
                let si = src_index(i as isize - top as isize, h, mode);
                for j in 0..ow {
                    let sj = src_index(j as isize - left as isize, w, mode);
                    dst[i * ow + j] = match (si, sj) {
                        (Some(a), Some(b)) => src[a * w + b],
                        _ => 0.0,
                    };
                }
            }
        }
    }
    out
}

/// Removes `top`, `bottom`, `left`, `right` cells from every sample — the
/// inverse of [`pad_tensor4_asym`] on the interior.
///
/// # Panics
/// If the crop would remove everything.
pub fn crop_tensor4(t: &Tensor4, top: usize, bottom: usize, left: usize, right: usize) -> Tensor4 {
    let (n, c, h, w) = t.shape();
    assert!(
        top + bottom < h && left + right < w,
        "crop_tensor4: margins consume the tensor"
    );
    let (oh, ow) = (h - top - bottom, w - left - right);
    let mut out = Tensor4::zeros(n, c, oh, ow);
    for s in 0..n {
        for ch in 0..c {
            let src = &t.sample(s)[ch * h * w..(ch + 1) * h * w];
            let dst = &mut out.sample_mut(s)[ch * oh * ow..(ch + 1) * oh * ow];
            for i in 0..oh {
                let s0 = (top + i) * w + left;
                dst[i * ow..(i + 1) * ow].copy_from_slice(&src[s0..s0 + ow]);
            }
        }
    }
    out
}

/// Accumulates the gradient of a padding op: adds each padded-position
/// gradient back onto the interior source position it was read from.
///
/// This is the exact adjoint of [`pad_tensor4_asym`]: zero-padding drops
/// halo gradients, replicate/reflect route them to the border cells they
/// replicated.
pub fn pad_backward_tensor4(
    grad_padded: &Tensor4,
    top: usize,
    bottom: usize,
    left: usize,
    right: usize,
    mode: PadMode,
) -> Tensor4 {
    let (n, c, oh, ow) = grad_padded.shape();
    assert!(
        oh > top + bottom && ow > left + right,
        "pad_backward: inconsistent margins"
    );
    let (h, w) = (oh - top - bottom, ow - left - right);
    let mut out = Tensor4::zeros(n, c, h, w);
    for s in 0..n {
        for ch in 0..c {
            let src = &grad_padded.sample(s)[ch * oh * ow..(ch + 1) * oh * ow];
            let dst = &mut out.sample_mut(s)[ch * h * w..(ch + 1) * h * w];
            for i in 0..oh {
                let si = src_index(i as isize - top as isize, h, mode);
                for j in 0..ow {
                    let sj = src_index(j as isize - left as isize, w, mode);
                    if let (Some(a), Some(b)) = (si, sj) {
                        dst[a * w + b] += src[i * ow + j];
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> Grid2 {
        Grid2::from_fn(3, 3, |i, j| (i * 3 + j) as f64 + 1.0)
    }

    #[test]
    fn zero_pad_grid() {
        let p = pad_grid(&sample_grid(), 1, 1, 1, 1, PadMode::Zeros);
        assert_eq!(p.shape(), (5, 5));
        assert_eq!(p[(0, 0)], 0.0);
        assert_eq!(p[(1, 1)], 1.0);
        assert_eq!(p[(3, 3)], 9.0);
        assert_eq!(p[(4, 4)], 0.0);
        assert_eq!(p.sum(), sample_grid().sum());
    }

    #[test]
    fn replicate_pad_grid() {
        let p = pad_grid(&sample_grid(), 1, 0, 0, 2, PadMode::Replicate);
        assert_eq!(p.shape(), (4, 5));
        assert_eq!(p[(0, 0)], 1.0); // replicated top-left
        assert_eq!(p[(1, 3)], 3.0); // replicated right edge of row 0
        assert_eq!(p[(1, 4)], 3.0);
    }

    #[test]
    fn reflect_pad_grid() {
        let p = pad_grid(&sample_grid(), 1, 1, 1, 1, PadMode::Reflect);
        // p[-1] mirrors p[1]: row -1 == row 1 of source.
        assert_eq!(p[(0, 1)], 4.0);
        assert_eq!(p[(0, 0)], 5.0); // (i=-1,j=-1) -> (1,1)
        assert_eq!(p[(4, 4)], 5.0); // (3,3) -> (1,1)
    }

    #[test]
    fn crop_inverts_pad() {
        let t = Tensor4::from_fn(2, 3, 4, 5, |s, c, i, j| {
            (s * 1000 + c * 100 + i * 10 + j) as f64
        });
        for mode in [PadMode::Zeros, PadMode::Replicate, PadMode::Reflect] {
            let p = pad_tensor4_asym(&t, 1, 2, 2, 1, mode);
            assert_eq!(p.shape(), (2, 3, 7, 8));
            assert_eq!(crop_tensor4(&p, 1, 2, 2, 1), t);
        }
    }

    #[test]
    fn pad_tensor3_matches_grid_padding() {
        let t = Tensor3::from_fn(2, 3, 3, |c, i, j| (c * 9 + i * 3 + j) as f64);
        for mode in [PadMode::Zeros, PadMode::Replicate, PadMode::Reflect] {
            let p = pad_tensor3(&t, 1, 1, 2, 0, mode);
            for c in 0..2 {
                assert_eq!(
                    p.channel_grid(c),
                    pad_grid(&t.channel_grid(c), 1, 1, 2, 0, mode)
                );
            }
        }
    }

    #[test]
    fn pad_backward_is_adjoint_of_pad() {
        // <pad(x), y> == <x, pad_backward(y)> for all x, y — checked on a basis.
        let (n, c, h, w) = (1, 1, 3, 3);
        let (t_, b_, l_, r_) = (2, 1, 1, 2);
        for mode in [PadMode::Zeros, PadMode::Replicate, PadMode::Reflect] {
            for k in 0..h * w {
                let mut x = Tensor4::zeros(n, c, h, w);
                x.as_mut_slice()[k] = 1.0;
                let px = pad_tensor4_asym(&x, t_, b_, l_, r_, mode);
                let y = Tensor4::from_fn(n, c, h + t_ + b_, w + l_ + r_, |_, _, i, j| {
                    ((i * 31 + j * 7) % 13) as f64 - 6.0
                });
                let lhs: f64 = px
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                let by = pad_backward_tensor4(&y, t_, b_, l_, r_, mode);
                let rhs = by.as_slice()[k];
                assert!(
                    (lhs - rhs).abs() < 1e-12,
                    "adjoint mismatch mode={mode:?} k={k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "margins consume the tensor")]
    fn crop_rejects_total_crop() {
        let t = Tensor4::zeros(1, 1, 2, 2);
        let _ = crop_tensor4(&t, 1, 1, 0, 0);
    }
}
